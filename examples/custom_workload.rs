//! Building your own workload analog and taking it through the whole
//! stack: declarative spec → trace capture/replay → limit analysis →
//! online controller.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```
//!
//! The six shipped benchmarks are instances of the same vocabulary this
//! example uses: phases of tiered code plus weighted data streams. Here
//! we sketch a little "key-value server": a request-parsing hot loop, a
//! hash-probe stream, a value-log sweep, and an idle housekeeping phase.

use cache_leakage_limits::core::policy::{OptHybrid, PolicyBank, PrefetchGuided, PrefetchScheme};
use cache_leakage_limits::core::{CircuitParams, EnergyContext, RefetchAccounting};
use cache_leakage_limits::energy::TechnologyNode;
use cache_leakage_limits::experiments::profile_benchmark_with;
use cache_leakage_limits::online::{Controller, OnlineSink};
use cache_leakage_limits::trace::io::{read_trace, TraceWriter};
use cache_leakage_limits::trace::TraceSource;
use cache_leakage_limits::workloads::{CodeTier, Phase, Spec, StreamSpec};
use leakage_cachesim::HierarchyConfig;

const KB: u64 = 1024;

fn kv_server_spec() -> Spec {
    Spec {
        name: "kv-server",
        seed: 0xCAFE,
        phases: vec![
            // Serving: parse requests, probe the index, append values.
            Phase {
                duration: 300_000,
                code: vec![
                    CodeTier { base: 0x0100_0000, bytes: 3 * KB, every: 1 },
                    CodeTier { base: 0x0110_0000, bytes: 8 * KB, every: 12 },
                    CodeTier { base: 0x0120_0000, bytes: 12 * KB, every: 150 },
                ],
                streams: vec![
                    (
                        StreamSpec::HotCold {
                            base: 0x4000_0000,
                            hot_bytes: KB,
                            cold_bytes: 3 * KB,
                            p_hot: 0.75,
                        },
                        2.4,
                    ),
                    (
                        StreamSpec::Chase {
                            base: 0x5000_0000,
                            nodes: 8192,
                            node_bytes: 128,
                            reads_per_node: 6,
                        },
                        0.5,
                    ),
                    (
                        StreamSpec::Seq {
                            base: 0x6000_0000,
                            bytes: 256 * KB,
                            stride: 8,
                            store_frac: 0.6,
                        },
                        0.4,
                    ),
                ],
                data_density: 0.32,
                branchiness: 0.06,
                segment_shuffle: 12,
            },
            // Housekeeping: compaction bookkeeping over small metadata.
            Phase {
                duration: 350_000,
                code: vec![
                    CodeTier { base: 0x0130_0000, bytes: 2 * KB, every: 1 },
                    CodeTier { base: 0x0140_0000, bytes: 5 * KB, every: 10 },
                ],
                streams: vec![(
                    StreamSpec::HotCold {
                        base: 0x7000_0000,
                        hot_bytes: KB,
                        cold_bytes: 3 * KB,
                        p_hot: 0.8,
                    },
                    1.0,
                )],
                data_density: 0.10,
                branchiness: 0.03,
                segment_shuffle: 12,
            },
        ],
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = kv_server_spec();
    spec.validate().expect("structurally valid workload");
    let mut workload = cache_leakage_limits::workloads::Benchmark::from_spec(
        spec,
        cache_leakage_limits::workloads::Scale::Small,
    );

    // Capture the trace to the binary format and replay it — the same
    // bytes could feed an external simulator.
    let mut bytes = Vec::new();
    let records = {
        let mut writer = TraceWriter::new(&mut bytes)?;
        workload.run(&mut writer);
        writer.flush()?;
        writer.records()
    };
    println!(
        "captured {records} accesses ({:.1} MB)",
        bytes.len() as f64 / 1e6
    );
    let trace = read_trace(&bytes[..])?;
    println!("replayed: {}", trace.stats());

    // Limit analysis at 70 nm.
    let profile = profile_benchmark_with(&mut workload, HierarchyConfig::alpha_like());
    let ctx = EnergyContext::new(
        CircuitParams::for_node(TechnologyNode::N70),
        RefetchAccounting::PaperStrict,
    );
    let mut bank = PolicyBank::new();
    bank.push(OptHybrid::new());
    bank.push(PrefetchGuided::new(PrefetchScheme::B));
    println!("\nD-cache limits for the kv-server analog:");
    for (name, eval) in bank.evaluate(&ctx, &profile.dcache.dist) {
        println!("  {name:<12} {:>5.1}%", eval.saving_percent());
    }

    // And an implementable controller on the timeline.
    let mut sink = OnlineSink::new(
        CircuitParams::for_node(TechnologyNode::N70),
        Controller::adaptive_decay(),
    );
    let mut replay = trace;
    replay.run(&mut sink);
    let (_, dcache) = sink.finish();
    println!("\nonline: {dcache}");
    Ok(())
}
