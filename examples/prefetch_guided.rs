//! Approximating the oracle with prefetching (paper §5).
//!
//! ```text
//! cargo run --release --example prefetch_guided
//! ```
//!
//! The oracle's perfect future knowledge is unimplementable, but a
//! next-line/stride prefetcher predicts a useful slice of it. This
//! example runs two contrasting workloads — the regular `applu` and the
//! pointer-chasing `gcc` — and shows how far the implementable
//! `Prefetch-A` / `Prefetch-B` schemes close the gap from the decay
//! baseline `Sleep(10K)` to the oracle `OPT-Hybrid`, and how
//! prefetchability explains the difference.

use cache_leakage_limits::cachesim::Level1;
use cache_leakage_limits::core::policy::{
    DecaySleep, OptHybrid, PolicyBank, PrefetchGuided, PrefetchScheme,
};
use cache_leakage_limits::core::{CircuitParams, EnergyContext, RefetchAccounting};
use cache_leakage_limits::energy::TechnologyNode;
use cache_leakage_limits::experiments::profile_benchmark;
use cache_leakage_limits::intervals::IntervalKind;
use cache_leakage_limits::workloads::{applu, gcc, Scale};

fn main() {
    let ctx = EnergyContext::new(
        CircuitParams::for_node(TechnologyNode::N70),
        RefetchAccounting::PaperStrict,
    );
    let mut bank = PolicyBank::new();
    bank.push(DecaySleep::ten_k());
    bank.push(PrefetchGuided::new(PrefetchScheme::A));
    bank.push(PrefetchGuided::new(PrefetchScheme::B));
    bank.push(OptHybrid::new());

    for mut workload in [applu(Scale::Small), gcc(Scale::Small)] {
        let profile = profile_benchmark(&mut workload);
        let side = profile.side(Level1::Data);

        // How much of the data cache's rest time could a prefetcher
        // cover? (Cycle-weighted, interior intervals only.)
        let interior = |covered: bool| {
            side.dist.cycles_matching(|class| {
                matches!(class.kind, IntervalKind::Interior { .. })
                    && class.wake.any() == covered
            })
        };
        let covered = interior(true);
        let uncovered = interior(false);
        println!(
            "\n=== {} (D-cache) ===\n\
             prefetch triggers: {} next-line, {} stride\n\
             rest-cycle coverage: {:.1}% prefetchable",
            profile.name,
            side.prefetch.next_line_triggers,
            side.prefetch.stride_triggers,
            100.0 * covered as f64 / (covered + uncovered) as f64,
        );

        for (name, eval) in bank.evaluate(&ctx, &side.dist) {
            println!("  {name:<14} {:>5.1}% savings", eval.saving_percent());
        }
    }
    println!(
        "\nRegular sweeps (applu) let Prefetch-B ride within a few percent of\n\
         the oracle; pointer chasing (gcc) defeats both prefetchers, so its\n\
         unpredicted intervals fall back to drowsy (B) or stay awake (A)."
    );
}
