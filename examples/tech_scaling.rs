//! Using the generalized model (paper §3.3, Fig. 6) to explore an
//! operating point the paper never measured.
//!
//! ```text
//! cargo run --release --example tech_scaling
//! ```
//!
//! The paper's parameterized model exists precisely so that "while the
//! implementation technologies change over time" the limit analysis can
//! be redone from a handful of circuit numbers. This example builds a
//! hypothetical 45 nm point from the physical submodels — subthreshold
//! leakage for the powers, capacitance scaling for the refetch energy —
//! and compares its optimal savings against the paper's four nodes on
//! the same workload.

use cache_leakage_limits::core::{CircuitParams, GeneralizedModel, ModePowers, ModeTimings};
use cache_leakage_limits::energy::{
    DynamicEnergyModel, SubthresholdModel, TechnologyNode, PRESET_DROWSY_RATIO, PRESET_SLEEP_RATIO,
};
use cache_leakage_limits::experiments::profile_benchmark;
use cache_leakage_limits::workloads::{ammp, Scale};

fn main() {
    let profile = profile_benchmark(&mut ammp(Scale::Small));

    println!("{:>10}  {:>10}  {:>12}  {:>12}  {:>12}", "node", "b (cycles)", "OPT-Drowsy", "OPT-Sleep", "OPT-Hybrid");

    // The paper's four calibrated nodes...
    for node in TechnologyNode::ALL {
        let model = GeneralizedModel::from_params(CircuitParams::for_node(node));
        let b = model.inflection_points().drowsy_sleep;
        let savings = model.optimal_savings(&profile.dcache.dist);
        println!(
            "{:>10}  {b:>10}  {:>11.1}%  {:>11.1}%  {:>11.1}%",
            node.to_string(),
            savings.opt_drowsy,
            savings.opt_sleep,
            savings.opt_hybrid
        );
    }

    // ...and a hypothetical 45 nm point from the physical submodels.
    let leakage = SubthresholdModel::default();
    let dynamic = DynamicEnergyModel::default();
    let (vdd, vth) = (0.8, 0.15);
    let active = leakage.leakage_power(vdd, vth);
    let params = CircuitParams::builder()
        .powers(ModePowers::from_ratios(
            active,
            PRESET_DROWSY_RATIO,
            PRESET_SLEEP_RATIO,
        ))
        .timings(ModeTimings::with_l2_latency(7))
        .refetch_from_model(&dynamic, 45.0, vdd)
        .build();
    let model = GeneralizedModel::from_params(params);
    let b = model.inflection_points().drowsy_sleep;
    let savings = model.optimal_savings(&profile.dcache.dist);
    println!(
        "{:>10}  {b:>10}  {:>11.1}%  {:>11.1}%  {:>11.1}%   <- extrapolated",
        "45nm",
        savings.opt_drowsy,
        savings.opt_sleep,
        savings.opt_hybrid
    );

    println!(
        "\nThe drowsy-sleep inflection point keeps falling with feature size,\n\
         so gated-Vdd keeps gaining ground on drowsy — the paper's Table 2\n\
         trend, extended one node further."
    );
}
