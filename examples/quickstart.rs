//! Quickstart: from a workload to oracle leakage savings in ~40 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Runs the `gzip` analog through the Alpha-like hierarchy, extracts the
//! per-frame access intervals of both L1 caches, and reports how much
//! leakage energy the paper's oracle policies could save at 70 nm.

use cache_leakage_limits::core::policy::{DecaySleep, OptDrowsy, OptHybrid, OptSleep, PolicyBank};
use cache_leakage_limits::core::{CircuitParams, EnergyContext, RefetchAccounting};
use cache_leakage_limits::energy::TechnologyNode;
use cache_leakage_limits::experiments::profile_benchmark;
use cache_leakage_limits::workloads::{gzip, Scale};

fn main() {
    // 1. Simulate: workload -> cache hierarchy -> interval extraction.
    let mut workload = gzip(Scale::Small);
    let profile = profile_benchmark(&mut workload);
    println!(
        "profiled {}: {} I-cache / {} D-cache accesses over {} cycles",
        profile.name,
        profile.icache.cache.accesses,
        profile.dcache.cache.accesses,
        profile.icache.total_cycles,
    );

    // 2. Pick the paper's headline operating point (70 nm).
    let ctx = EnergyContext::new(
        CircuitParams::for_node(TechnologyNode::N70),
        RefetchAccounting::PaperStrict,
    );
    let points = ctx.inflection_points();
    println!(
        "inflection points: active-drowsy at {} cycles, drowsy-sleep at {} cycles",
        points.active_drowsy, points.drowsy_sleep
    );

    // 3. Evaluate a bank of management schemes in one pass.
    let mut bank = PolicyBank::new();
    bank.push(OptDrowsy);
    bank.push(DecaySleep::ten_k());
    bank.push(OptSleep::ten_k());
    bank.push(OptHybrid::new());

    for (label, dist) in [
        ("I-cache", &profile.icache.dist),
        ("D-cache", &profile.dcache.dist),
    ] {
        println!("\n{label} leakage savings vs always-active:");
        for (name, eval) in bank.evaluate(&ctx, dist) {
            println!("  {name:<16} {:>5.1}%", eval.saving_percent());
        }
    }
}
