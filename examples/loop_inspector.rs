//! The paper's Fig. 2 scenario: how an inner loop's trip count decides
//! the operating mode of the enclosing code's cache line.
//!
//! ```text
//! cargo run --release --example loop_inspector
//! ```
//!
//! The paper motivates interval classification with a two-level loop:
//! the interval between consecutive executions of the outer-loop `add`
//! instruction equals the inner loop's running time, so the `add` line
//! should stay active for tiny inner loops, go drowsy for moderate ones,
//! and be gated off for long ones. This example reconstructs that
//! experiment literally: it emits the fetch trace of a two-level loop
//! for a range of inner trip counts and reports the measured interval of
//! the `add` line and the mode the oracle assigns it.

use cache_leakage_limits::cachesim::{Hierarchy, HierarchyConfig, Level1};
use cache_leakage_limits::core::envelope::optimal_mode;
use cache_leakage_limits::core::{CircuitParams, IntervalEnergyModel};
use cache_leakage_limits::energy::TechnologyNode;
use cache_leakage_limits::trace::{Cycle, MemoryAccess, Pc};

/// Fetch trace of `for i in 0..outer { inner_body * trips; add }`.
/// The inner body occupies one fetch block per iteration step; the `add`
/// lives on its own line after the loop body.
fn measured_add_interval(inner_trips: u64) -> u64 {
    let mut hierarchy = Hierarchy::new(HierarchyConfig::alpha_like());
    let inner_pc = Pc::new(0x1000);
    let add_pc = Pc::new(0x2000); // a different cache line
    let mut cycle = 0u64;
    let mut add_accesses = Vec::new();
    for _outer in 0..3 {
        for _trip in 0..inner_trips {
            let outcome = hierarchy.access(&MemoryAccess::fetch(Cycle::new(cycle), inner_pc));
            assert_eq!(outcome.l1.cache, Level1::Instruction);
            cycle += 1;
        }
        let outcome = hierarchy.access(&MemoryAccess::fetch(Cycle::new(cycle), add_pc));
        add_accesses.push((cycle, outcome.l1.frame));
        cycle += 1;
    }
    // Interval between the 2nd and 3rd executions of `add` (steady state).
    assert_eq!(add_accesses[1].1, add_accesses[2].1, "same frame");
    add_accesses[2].0 - add_accesses[1].0
}

fn main() {
    let model = IntervalEnergyModel::new(CircuitParams::for_node(TechnologyNode::N70));
    let points = model.inflection_points();
    println!(
        "70nm inflection points: a = {} cycles, b = {} cycles\n",
        points.active_drowsy, points.drowsy_sleep
    );
    println!(
        "{:>12}  {:>16}  {:>8}  {:>14}",
        "inner trips", "add interval (cy)", "mode", "energy (pJ)"
    );
    for trips in [1u64, 4, 40, 400, 1_000, 1_056, 1_057, 4_000, 40_000, 400_000] {
        let interval = measured_add_interval(trips);
        let mode = optimal_mode(interval, &points);
        let energy = model
            .energy(mode, interval)
            .expect("classified mode is feasible");
        println!("{trips:>12}  {interval:>16}  {mode:>8}  {energy:>14.4}");
    }
    println!(
        "\nAs the paper's Fig. 2 argues: the same static instruction moves\n\
         from active through drowsy to sleep purely by its inner loop's range."
    );
}
