//! # cache-leakage-limits
//!
//! A complete Rust reproduction of *"On the Limits of Leakage Power
//! Reduction in Caches"* (Meng, Sherwood, Kastner — HPCA 2005): a limit
//! study of how much cache leakage energy the drowsy (state-preserving)
//! and gated-Vdd/sleep (state-destroying) circuit techniques can save
//! given oracle knowledge of the address trace.
//!
//! This facade crate re-exports every workspace member under one roof:
//!
//! * [`trace`] — timed memory-access events.
//! * [`cachesim`] — the Alpha-21264-like cache hierarchy.
//! * [`energy`] — technology nodes, leakage & dynamic energy models.
//! * [`intervals`] — per-frame access-interval extraction.
//! * [`core`] — the paper's contribution: interval energies, inflection
//!   points, oracle policies and the generalized savings model.
//! * [`prefetch`] — next-line/stride prefetchability and the Prefetch-A/B
//!   management schemes.
//! * [`online`] — timeline simulation of implementable controllers
//!   (decay counters, periodic drowsy, feedback-adaptive decay).
//! * [`isa`] — the mini-ISA front end: assembler, deterministic
//!   simulator, and the executed-program benchmark library.
//! * [`workloads`] — the six SPEC2000-analog synthetic benchmarks plus
//!   the executed `isa:*` suite.
//! * [`experiments`] — the harness regenerating every table and figure.
//! * [`faults`] — typed errors, deterministic fault injection
//!   (`LEAKAGE_FAULTS`), and retry helpers.
//! * [`jobs`] — the durable distributed sweep-job fabric: sharded
//!   million-point generalized-model jobs with checkpoint/resume.
//! * [`telemetry`] — the metrics registry, span tracing, and the
//!   canonical JSON codec.
//! * [`server`] — the dependency-free HTTP analysis service and its
//!   closed-loop load generator.
//!
//! # Quickstart
//!
//! ```
//! use cache_leakage_limits::core::{CircuitParams, IntervalEnergyModel};
//! use cache_leakage_limits::energy::TechnologyNode;
//!
//! // The paper's 70nm operating point.
//! let params = CircuitParams::for_node(TechnologyNode::N70);
//! let model = IntervalEnergyModel::new(params);
//! let points = model.inflection_points();
//! assert_eq!(points.active_drowsy, 6);
//! assert_eq!(points.drowsy_sleep, 1057);
//! ```

pub use leakage_cachesim as cachesim;
pub use leakage_core as core;
pub use leakage_energy as energy;
pub use leakage_experiments as experiments;
pub use leakage_faults as faults;
pub use leakage_intervals as intervals;
pub use leakage_isa as isa;
pub use leakage_jobs as jobs;
pub use leakage_online as online;
pub use leakage_prefetch as prefetch;
pub use leakage_server as server;
pub use leakage_telemetry as telemetry;
pub use leakage_trace as trace;
pub use leakage_workloads as workloads;
