//! Offline no-op stand-in for `serde_derive`.
//!
//! This workspace builds in an environment with no access to crates.io,
//! so the real `serde` cannot be fetched. The workspace never serializes
//! through serde (profile persistence uses the hand-rolled binary codec
//! in `leakage-experiments`), but many types carry
//! `#[derive(Serialize, Deserialize)]` so that a future networked build
//! can swap the real crate back in without touching the sources. Here
//! the derives simply expand to nothing; the marker traits they would
//! implement are blanket-implemented in the sibling `serde` stub.

use proc_macro::TokenStream;

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
