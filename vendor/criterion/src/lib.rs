//! Offline mini benchmark harness.
//!
//! The build environment has no access to crates.io, so the real
//! `criterion` cannot be fetched. This crate implements the subset of
//! its API the workspace's `benches/` targets use — `black_box`,
//! `Criterion::bench_function`/`benchmark_group`, `BenchmarkGroup`
//! with `sample_size`/`throughput`/`bench_function`/`finish`,
//! `Bencher::iter`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros — so every bench target compiles and runs
//! unmodified. A networked build can swap the real crate back in
//! without source changes.
//!
//! Measurement model: each benchmark is warmed up briefly, then run
//! for `sample_size` samples. Each sample times a batch of iterations
//! sized so one batch takes roughly 5 ms (re-estimated from the warm-up),
//! and the per-iteration median across samples is reported, along with
//! element/byte throughput when configured. There is no statistical
//! analysis, plotting, or result persistence.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting
/// benchmarked work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Units for reporting throughput alongside per-iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Drives timed iterations of one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` batched samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm up and size the batch so one sample lasts ~5 ms.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let batch = ((0.005 / per_iter.max(1e-9)).ceil() as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

fn format_duration(duration: Duration) -> String {
    let nanos = duration.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", duration.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{} ns", nanos)
    }
}

fn report(id: &str, median: Duration, throughput: Option<Throughput>) {
    let mut line = format!("{:<60} {:>12}/iter", id, format_duration(median));
    if let Some(throughput) = throughput {
        let secs = median.as_secs_f64().max(1e-12);
        match throughput {
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:>12.0} elem/s", n as f64 / secs));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:>12.3} MiB/s", n as f64 / secs / (1 << 20) as f64));
            }
        }
    }
    println!("{line}");
}

fn run_bench(id: &str, sample_size: usize, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    report(id, bencher.median(), throughput);
}

/// Entry point handed to `criterion_group!` functions.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_bench(id.as_ref(), self.default_sample_size, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Reports throughput in these units alongside iteration time.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id.as_ref());
        run_bench(&full_id, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group. (No analysis to flush in this harness.)
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("tiny/sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        let mut group = c.benchmark_group("tiny_group");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        group.finish();
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }

    #[test]
    fn formatting_covers_magnitudes() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
