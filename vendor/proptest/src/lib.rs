//! Offline mini property-testing harness.
//!
//! The build environment has no access to crates.io, so the real
//! `proptest` cannot be fetched. This crate implements the subset of
//! its API the workspace's property tests use — `proptest!`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, `prop_oneof!`,
//! range and tuple strategies, `prop::collection::vec` and
//! `prop::sample::select` — so those tests run unmodified. A networked
//! build can swap the real crate back in without source changes.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the panic message from
//!   `prop_assert!` (which includes the formatted values) but does not
//!   minimize the input.
//! * **Deterministic seeding.** Each test derives a master seed from its
//!   own name, and every case draws a fresh per-case seed from the
//!   master stream, so runs are reproducible across processes and
//!   machines and every individual case is replayable from its seed
//!   alone.
//! * **`prop_assume!` skips by `continue`**, so a skipped case still
//!   counts toward the case budget.
//!
//! Two pieces of real-proptest behaviour *are* supported:
//!
//! * **Regression persistence.** A sibling file named
//!   `<test_file>.proptest-regressions` (same stem, next to the `.rs`
//!   source) is read at test start; every `cc <hex-seed>` line is
//!   replayed *before* the random cases. When a case fails, the harness
//!   prints the `cc` line to append. Only the first 16 hex digits are
//!   consumed (a 64-bit seed); longer real-proptest seeds are accepted
//!   and truncated.
//! * **Case-count override.** The `LEAKAGE_PROPTEST_CASES` environment
//!   variable overrides every `ProptestConfig`'s case count (explicit
//!   or default), so CI can run deep fuzz rounds (`=2048`) while local
//!   runs stay fast.

/// Deterministic 64-bit generator (splitmix64) driving all sampling.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from a test name, deterministically.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, stirred so short names diverge quickly.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(hash ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Seeds from a raw 64-bit value — the replay path for seeds read
    /// from a `.proptest-regressions` file or printed by a failing case.
    pub const fn from_seed(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-test configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count to actually run: the `LEAKAGE_PROPTEST_CASES`
    /// environment variable when set to a valid count, this config's
    /// `cases` otherwise. The override wins over explicit configs too —
    /// that is the point: CI exports it once for a deep round across
    /// the whole workspace.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("LEAKAGE_PROPTEST_CASES") {
            Ok(value) => value.trim().parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Reads the regression seeds persisted next to a test source file.
///
/// `source_file` is the `file!()` of the test (relative to the
/// workspace root); the sibling file swaps the `.rs` suffix for
/// `.proptest-regressions`. Lines look like real proptest's:
///
/// ```text
/// cc d6bd5ef7e2f4... # shrinks to phases = [...]
/// ```
///
/// The first 16 hex digits of each `cc` token become a 64-bit replay
/// seed. Cargo runs test binaries with the package root as the working
/// directory while `file!()` is workspace-root-relative, so a few
/// parent-directory prefixes are probed; a missing file yields no
/// seeds (not an error).
pub fn regression_seeds(source_file: &str) -> Vec<u64> {
    let sibling = match source_file.strip_suffix(".rs") {
        Some(stem) => format!("{stem}.proptest-regressions"),
        None => return Vec::new(),
    };
    for prefix in ["", "../", "../../", "../../../"] {
        let candidate = format!("{prefix}{sibling}");
        if let Ok(text) = std::fs::read_to_string(&candidate) {
            return parse_regression_seeds(&text);
        }
    }
    Vec::new()
}

/// Parses `cc <hex>` lines into 64-bit seeds; see [`regression_seeds`].
pub fn parse_regression_seeds(text: &str) -> Vec<u64> {
    text.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let hex: String = rest.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
            if hex.is_empty() {
                return None;
            }
            let head = &hex[..hex.len().min(16)];
            u64::from_str_radix(head, 16).ok()
        })
        .collect()
}

/// Armed for the duration of one proptest case; if the case panics,
/// [`Drop`] (which runs during unwinding) prints the `cc` line to
/// append to the test's `.proptest-regressions` file so the failure
/// replays first on every subsequent run.
pub struct CaseGuard {
    seed: u64,
    source_file: &'static str,
    test_name: &'static str,
}

impl CaseGuard {
    /// Arms the guard for a case drawn from `seed`.
    pub fn new(seed: u64, source_file: &'static str, test_name: &'static str) -> Self {
        CaseGuard { seed, source_file, test_name }
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let sibling = self
                .source_file
                .strip_suffix(".rs")
                .map(|stem| format!("{stem}.proptest-regressions"))
                .unwrap_or_else(|| String::from("<test>.proptest-regressions"));
            eprintln!(
                "proptest: {} failed with seed {:016x}; to replay first on every run, \
                 append this line to {sibling}:\ncc {:016x} # seed for {}",
                self.test_name, self.seed, self.seed, self.test_name,
            );
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// The `prop_map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $ty
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + offset) as $ty
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        start + rng.unit_f64() * (end - start)
    }
}

impl Strategy for std::ops::RangeInclusive<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        start + (rng.unit_f64() as f32) * (end - start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// One-of-N combination used by [`prop_oneof!`]; arms are boxed
/// samplers over a common value type.
pub struct OneOf<T> {
    arms: Vec<Box<dyn Fn(&mut TestRng) -> T>>,
}

impl<T> OneOf<T> {
    /// Builds from pre-boxed arms; used by the macro.
    pub fn new(arms: Vec<Box<dyn Fn(&mut TestRng) -> T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        (self.arms[arm])(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive-start, exclusive-end size bounds for collection
    /// strategies; a bare `usize` means exactly that length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange { start: len, end: len + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            SizeRange { start: range.start, end: range.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { start: *range.start(), end: *range.end() + 1 }
        }
    }

    /// Strategy for `Vec`s with a size drawn from `sizes` and elements
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: SizeRange,
    }

    /// `prop::collection::vec(element, sizes)`.
    pub fn vec<S: Strategy>(element: S, sizes: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, sizes: sizes.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.sizes.end - self.sizes.start).max(1) as u64;
            let len = self.sizes.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed list.
    pub struct Select<T> {
        choices: Vec<T>,
    }

    /// `prop::sample::select(choices)`.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select needs at least one choice");
        Select { choices }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let index = rng.below(self.choices.len() as u64) as usize;
            self.choices[index].clone()
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use crate::{Just, ProptestConfig, Strategy};

    /// Module aliases matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!("proptest case failed: {}", format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{:?} == {:?}", l, r);
    }};
}

/// Skips the current case when its precondition fails. Expands to
/// `continue` targeting the case loop `proptest!` generates.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies yielding a common type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $({
                let strategy = $strategy;
                Box::new(move |rng: &mut $crate::TestRng| {
                    $crate::Strategy::sample(&strategy, rng)
                }) as Box<dyn Fn(&mut $crate::TestRng) -> _>
            }),+
        ])
    };
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal: expands each `fn` in a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let __test_name = concat!(module_path!(), "::", stringify!($name));
            let __replay_seeds = $crate::regression_seeds(file!());
            let __replays = __replay_seeds.len() as u32;
            let mut __master = $crate::TestRng::for_test(__test_name);
            for __case in 0..(__replays + config.resolved_cases()) {
                // Replayed regression seeds run first; random cases each
                // draw a fresh seed from the master stream so any single
                // case is replayable from the seed the guard prints.
                let __seed = if __case < __replays {
                    __replay_seeds[__case as usize]
                } else {
                    __master.next_u64()
                };
                let mut __rng = $crate::TestRng::from_seed(__seed);
                let __guard = $crate::CaseGuard::new(__seed, file!(), __test_name);
                $(let $pat = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                $body
                drop(__guard);
            }
        }
        $crate::__proptest_impl!(($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u64, u64)> {
        (1u64..100, 0u64..10).prop_map(|(a, b)| (a, a + b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Doc comments parse too.
        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in -3i64..3, f in 0.25f64..0.75) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-3..3).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuple_patterns_and_map((lo, hi) in arb_pair()) {
            prop_assert!(lo <= hi);
        }

        #[test]
        fn vec_and_select(
            items in prop::collection::vec(0u64..50, 2..20),
            pick in prop::sample::select(vec![1u32, 2, 4, 8]),
        ) {
            prop_assert!(items.len() >= 2 && items.len() < 20);
            prop_assert!(pick.is_power_of_two());
            for &item in &items {
                prop_assert!(item < 50, "item {} out of range", item);
            }
        }

        #[test]
        fn assume_skips(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_draws_every_arm(choice in prop_oneof![
            (0u64..10).prop_map(|n| ("low", n)),
            (90u64..100).prop_map(|n| ("high", n)),
        ]) {
            let (label, n) = choice;
            match label {
                "low" => prop_assert!(n < 10u64),
                "high" => prop_assert!(n >= 90u64),
                other => prop_assert!(false, "unexpected arm {}", other),
            }
        }
    }

    #[test]
    fn regression_lines_parse_and_truncate() {
        let text = "# comment\ncc d6bd5ef7e2f448a1ffeeddccbbaa0099 # shrinks to x = 3\n\
                    cc 00000000000000ff\nnot a seed line\ncc zz\n";
        let seeds = crate::parse_regression_seeds(text);
        assert_eq!(seeds, vec![0xd6bd_5ef7_e2f4_48a1, 0xff]);
    }

    #[test]
    fn missing_regression_file_yields_no_seeds() {
        assert!(crate::regression_seeds("no/such/test_file.rs").is_empty());
        assert!(crate::regression_seeds("not-a-rust-file").is_empty());
    }

    #[test]
    fn case_count_env_override_wins() {
        // Process-global env var: set + restore around the assertion.
        // Cargo runs this crate's tests in one process; no other test
        // here reads the variable.
        std::env::set_var("LEAKAGE_PROPTEST_CASES", "7");
        assert_eq!(ProptestConfig::with_cases(64).resolved_cases(), 7);
        std::env::set_var("LEAKAGE_PROPTEST_CASES", "garbage");
        assert_eq!(ProptestConfig::with_cases(64).resolved_cases(), 64);
        std::env::remove_var("LEAKAGE_PROPTEST_CASES");
        assert_eq!(ProptestConfig::with_cases(64).resolved_cases(), 64);
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = crate::TestRng::for_test("same");
        let mut b = crate::TestRng::for_test("same");
        let mut c = crate::TestRng::for_test("different");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
