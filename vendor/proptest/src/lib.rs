//! Offline mini property-testing harness.
//!
//! The build environment has no access to crates.io, so the real
//! `proptest` cannot be fetched. This crate implements the subset of
//! its API the workspace's property tests use — `proptest!`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, `prop_oneof!`,
//! range and tuple strategies, `prop::collection::vec` and
//! `prop::sample::select` — so those tests run unmodified. A networked
//! build can swap the real crate back in without source changes.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the panic message from
//!   `prop_assert!` (which includes the formatted values) but does not
//!   minimize the input.
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   own name, so runs are reproducible across processes and machines;
//!   there is no persistence file.
//! * **`prop_assume!` skips by `continue`**, so a skipped case still
//!   counts toward the case budget.

/// Deterministic 64-bit generator (splitmix64) driving all sampling.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from a test name, deterministically.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, stirred so short names diverge quickly.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(hash ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-test configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// The `prop_map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $ty
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + offset) as $ty
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        start + rng.unit_f64() * (end - start)
    }
}

impl Strategy for std::ops::RangeInclusive<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        start + (rng.unit_f64() as f32) * (end - start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// One-of-N combination used by [`prop_oneof!`]; arms are boxed
/// samplers over a common value type.
pub struct OneOf<T> {
    arms: Vec<Box<dyn Fn(&mut TestRng) -> T>>,
}

impl<T> OneOf<T> {
    /// Builds from pre-boxed arms; used by the macro.
    pub fn new(arms: Vec<Box<dyn Fn(&mut TestRng) -> T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        (self.arms[arm])(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive-start, exclusive-end size bounds for collection
    /// strategies; a bare `usize` means exactly that length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange { start: len, end: len + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            SizeRange { start: range.start, end: range.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { start: *range.start(), end: *range.end() + 1 }
        }
    }

    /// Strategy for `Vec`s with a size drawn from `sizes` and elements
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: SizeRange,
    }

    /// `prop::collection::vec(element, sizes)`.
    pub fn vec<S: Strategy>(element: S, sizes: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, sizes: sizes.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.sizes.end - self.sizes.start).max(1) as u64;
            let len = self.sizes.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed list.
    pub struct Select<T> {
        choices: Vec<T>,
    }

    /// `prop::sample::select(choices)`.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select needs at least one choice");
        Select { choices }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let index = rng.below(self.choices.len() as u64) as usize;
            self.choices[index].clone()
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use crate::{Just, ProptestConfig, Strategy};

    /// Module aliases matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!("proptest case failed: {}", format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{:?} == {:?}", l, r);
    }};
}

/// Skips the current case when its precondition fails. Expands to
/// `continue` targeting the case loop `proptest!` generates.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies yielding a common type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $({
                let strategy = $strategy;
                Box::new(move |rng: &mut $crate::TestRng| {
                    $crate::Strategy::sample(&strategy, rng)
                }) as Box<dyn Fn(&mut $crate::TestRng) -> _>
            }),+
        ])
    };
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal: expands each `fn` in a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_impl!(($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u64, u64)> {
        (1u64..100, 0u64..10).prop_map(|(a, b)| (a, a + b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Doc comments parse too.
        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in -3i64..3, f in 0.25f64..0.75) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-3..3).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuple_patterns_and_map((lo, hi) in arb_pair()) {
            prop_assert!(lo <= hi);
        }

        #[test]
        fn vec_and_select(
            items in prop::collection::vec(0u64..50, 2..20),
            pick in prop::sample::select(vec![1u32, 2, 4, 8]),
        ) {
            prop_assert!(items.len() >= 2 && items.len() < 20);
            prop_assert!(pick.is_power_of_two());
            for &item in &items {
                prop_assert!(item < 50, "item {} out of range", item);
            }
        }

        #[test]
        fn assume_skips(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_draws_every_arm(choice in prop_oneof![
            (0u64..10).prop_map(|n| ("low", n)),
            (90u64..100).prop_map(|n| ("high", n)),
        ]) {
            let (label, n) = choice;
            match label {
                "low" => prop_assert!(n < 10u64),
                "high" => prop_assert!(n >= 90u64),
                other => prop_assert!(false, "unexpected arm {}", other),
            }
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = crate::TestRng::for_test("same");
        let mut b = crate::TestRng::for_test("same");
        let mut c = crate::TestRng::for_test("different");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
