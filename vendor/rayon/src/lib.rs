//! Offline, rayon-compatible data-parallelism layer.
//!
//! The build environment has no access to crates.io, so the real
//! `rayon` cannot be fetched. This crate implements the subset of
//! rayon's API the workspace uses — `par_iter()` / `into_par_iter()`
//! with `map`/`for_each`/`collect`, plus thread-count control — on top
//! of `std::thread::scope`. A networked build can swap the real rayon
//! back in without source changes.
//!
//! # Semantics
//!
//! * **Deterministic order.** Terminal operations preserve input order:
//!   `collect::<Vec<_>>()` returns results in the same order a
//!   sequential `iter().map().collect()` would, regardless of the
//!   thread count or scheduling. The profiling pipeline's determinism
//!   guarantees rest on this.
//! * **Work stealing by index.** Workers pull the next unclaimed index
//!   from a shared atomic counter, so uneven item costs (e.g. `gcc` vs
//!   `gzip` trace lengths) balance automatically.
//! * **Panic propagation.** A panic inside a worker is resumed on the
//!   calling thread once all workers have stopped.
//!
//! # Thread-count control
//!
//! The pool size is resolved, in priority order, from
//! [`set_num_threads`] (or [`ThreadPoolBuilder::build_global`]), the
//! `LEAKAGE_THREADS` environment variable, the `RAYON_NUM_THREADS`
//! environment variable, and finally [`std::thread::available_parallelism`].
//! CI and benchmarks pin `LEAKAGE_THREADS=1` for reproducible timing;
//! with one thread every operation runs inline on the caller with no
//! spawning at all.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Re-exports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Programmatic thread-count override; `0` means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pins the global thread count, overriding the environment.
///
/// Passing `0` clears the override. Unlike real rayon this can be
/// called at any time; operations already in flight are unaffected.
pub fn set_num_threads(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::SeqCst);
}

/// Parses a thread-count environment value: a positive integer.
fn parse_thread_env(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// The thread count parallel operations will use right now.
pub fn current_num_threads() -> usize {
    let overridden = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if overridden > 0 {
        return overridden;
    }
    static FROM_ENV: OnceLock<usize> = OnceLock::new();
    *FROM_ENV.get_or_init(|| {
        for var in ["LEAKAGE_THREADS", "RAYON_NUM_THREADS"] {
            if let Some(n) = std::env::var(var).ok().as_deref().and_then(parse_thread_env) {
                return n;
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// Mirror of rayon's global-pool builder, for callers that pin the
/// thread count in code rather than through `LEAKAGE_THREADS`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with no explicit thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads (`0` keeps the automatic
    /// resolution order documented at the crate level).
    pub fn num_threads(mut self, threads: usize) -> Self {
        self.num_threads = threads;
        self
    }

    /// Installs the setting globally. Never fails (the error type
    /// exists for signature compatibility with real rayon).
    pub fn build_global(self) -> Result<(), std::convert::Infallible> {
        if self.num_threads > 0 {
            set_num_threads(self.num_threads);
        }
        Ok(())
    }
}

/// Runs `f(0..len)` across the pool, returning results in index order.
fn run_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = current_num_threads().min(len);
    if threads <= 1 {
        return (0..len).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let mut parts: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= len {
                            break;
                        }
                        local.push((index, f(index)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => parts.push(part),
                Err(payload) => panic = Some(payload),
            }
        }
    });
    if let Some(payload) = panic {
        std::panic::resume_unwind(payload);
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(len);
    slots.resize_with(len, || None);
    for part in parts {
        for (index, result) in part {
            slots[index] = Some(result);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index was claimed by exactly one worker"))
        .collect()
}

/// The parallel-iterator traits and adapters.
pub mod iter {
    use super::run_indexed;
    use std::ops::Range;
    use std::sync::Mutex;

    /// A data source that can run a closure over every item in
    /// parallel, preserving index order in the output.
    pub trait ParallelIterator: Sized {
        /// The element type.
        type Item: Send;

        /// Applies `f` to every item across the pool; results come back
        /// in input order. This is the single primitive every terminal
        /// operation lowers to.
        fn execute<R, F>(self, f: F) -> Vec<R>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync;

        /// Maps each item through `f` in parallel.
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync,
        {
            Map { base: self, f }
        }

        /// Runs `f` on every item for its side effects.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync,
        {
            self.execute(|item| f(item));
        }

        /// Collects the items, preserving input order.
        fn collect<C>(self) -> C
        where
            C: FromIterator<Self::Item>,
        {
            self.execute(|item| item).into_iter().collect()
        }

        /// Sums the items.
        fn sum<S>(self) -> S
        where
            S: std::iter::Sum<Self::Item> + Send,
        {
            self.execute(|item| item).into_iter().sum()
        }
    }

    /// Conversion into an owning parallel iterator
    /// (`rayon::iter::IntoParallelIterator`).
    pub trait IntoParallelIterator {
        /// The element type.
        type Item: Send;
        /// The iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Consumes `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// Borrowing conversion (`rayon::iter::IntoParallelRefIterator`):
    /// adds `.par_iter()` to slices, arrays and `Vec`s.
    pub trait IntoParallelRefIterator<'a> {
        /// The borrowed element type.
        type Item: Send + 'a;
        /// The iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Borrows `self` as a parallel iterator.
        fn par_iter(&'a self) -> Self::Iter;
    }

    /// Parallel iterator over a borrowed slice.
    pub struct ParIter<'a, T> {
        items: &'a [T],
    }

    impl<'a, T: Sync + 'a> ParallelIterator for ParIter<'a, T> {
        type Item = &'a T;

        fn execute<R, F>(self, f: F) -> Vec<R>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync,
        {
            run_indexed(self.items.len(), |index| f(&self.items[index]))
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = ParIter<'a, T>;

        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = ParIter<'a, T>;

        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a, const N: usize> IntoParallelRefIterator<'a> for [T; N] {
        type Item = &'a T;
        type Iter = ParIter<'a, T>;

        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    /// Parallel iterator that owns its items.
    ///
    /// Items are parked in per-slot mutexes so workers can take them by
    /// index without `unsafe`; the per-item locking cost is irrelevant
    /// for the coarse tasks (whole-benchmark simulations, policy
    /// sweeps) this workspace parallelizes.
    pub struct IntoParIter<T> {
        items: Vec<Mutex<Option<T>>>,
    }

    impl<T: Send> ParallelIterator for IntoParIter<T> {
        type Item = T;

        fn execute<R, F>(self, f: F) -> Vec<R>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync,
        {
            let items = &self.items;
            run_indexed(items.len(), |index| {
                let item = items[index]
                    .lock()
                    .expect("no panics while holding an item slot")
                    .take()
                    .expect("each index is claimed exactly once");
                f(item)
            })
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = IntoParIter<T>;

        fn into_par_iter(self) -> IntoParIter<T> {
            IntoParIter {
                items: self.into_iter().map(|item| Mutex::new(Some(item))).collect(),
            }
        }
    }

    impl IntoParallelIterator for Range<usize> {
        type Item = usize;
        type Iter = IntoParIter<usize>;

        fn into_par_iter(self) -> IntoParIter<usize> {
            self.collect::<Vec<_>>().into_par_iter()
        }
    }

    /// The `map` adapter; composes the closure into the terminal
    /// operation so the whole chain runs fused inside each worker.
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, R, F> ParallelIterator for Map<B, F>
    where
        B: ParallelIterator,
        R: Send,
        F: Fn(B::Item) -> R + Sync,
    {
        type Item = R;

        fn execute<R2, F2>(self, f2: F2) -> Vec<R2>
        where
            R2: Send,
            F2: Fn(Self::Item) -> R2 + Sync,
        {
            let f = self.f;
            self.base.execute(move |item| f2(f(item)))
        }
    }
}

/// Joins two closures, running them (potentially) in parallel and
/// returning both results — rayon's binary fork primitive.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    let mut left: Option<RA> = None;
    let mut right: Option<RB> = None;
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| b());
        left = Some(a());
        right = Some(handle.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
    });
    (
        left.expect("left closure ran"),
        right.expect("right closure ran"),
    )
}

/// Serializes the tests that mutate the global thread override.
#[cfg(test)]
static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        set_num_threads(n);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        set_num_threads(0);
        result.unwrap_or_else(|payload| std::panic::resume_unwind(payload))
    }

    #[test]
    fn env_parsing() {
        assert_eq!(parse_thread_env("4"), Some(4));
        assert_eq!(parse_thread_env(" 12 "), Some(12));
        assert_eq!(parse_thread_env("0"), None);
        assert_eq!(parse_thread_env("-1"), None);
        assert_eq!(parse_thread_env("many"), None);
    }

    #[test]
    fn override_wins() {
        with_threads(3, || assert_eq!(current_num_threads(), 3));
    }

    #[test]
    fn par_iter_preserves_order_across_thread_counts() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 4, 7] {
            let got: Vec<u64> =
                with_threads(threads, || items.par_iter().map(|&x| x * 3 + 1).collect());
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn into_par_iter_moves_items() {
        let words: Vec<String> = vec!["a".into(), "bb".into(), "ccc".into()];
        let lens: Vec<usize> =
            with_threads(2, || words.into_par_iter().map(|w| w.len()).collect());
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn arrays_and_ranges() {
        let squares: Vec<usize> =
            with_threads(2, || (0..10usize).into_par_iter().map(|i| i * i).collect());
        assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
        let arr = [10u64, 20, 30];
        let sum: u64 = with_threads(2, || arr.par_iter().map(|&x| x).sum());
        assert_eq!(sum, 60);
    }

    #[test]
    fn for_each_runs_every_item() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let total = AtomicU64::new(0);
        let items: Vec<u64> = (1..=100).collect();
        with_threads(4, || {
            items.par_iter().for_each(|&x| {
                total.fetch_add(x, Ordering::Relaxed);
            })
        });
        assert_eq!(total.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = with_threads(2, || join(|| 2 + 2, || "ok"));
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            with_threads(2, || {
                let items: Vec<u32> = (0..8).collect();
                let _: Vec<u32> = items
                    .par_iter()
                    .map(|&x| if x == 5 { panic!("boom") } else { x })
                    .collect();
            })
        });
        assert!(result.is_err());
    }
}
