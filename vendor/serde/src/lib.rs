//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so the real `serde`
//! cannot be fetched from crates.io. Nothing in this workspace
//! serializes through serde at runtime — on-disk profile persistence
//! uses the explicit, versioned binary codec in `leakage-experiments`
//! (see `DESIGN.md`) — but the types keep their
//! `#[derive(Serialize, Deserialize)]` annotations so a networked build
//! can substitute the real crate without source changes.
//!
//! The traits here are markers satisfied by every type, and the derive
//! macros (re-exported from the no-op `serde_derive` stub) expand to
//! nothing.

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; satisfied by every type.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
