#!/usr/bin/env bash
# Network chaos replay for the sweep-job fabric.
#
# Runs a ≥100k-point job twice:
#
#   1. Reference: local stdio workers, no faults.
#   2. Chaos: zero local workers; three remote TCP workers whose
#      socket transports are armed with the full network fault matrix
#      (probabilistic frame drops, duplicated frames, per-frame delay)
#      and one deterministic 6-second mid-flight partition that
#      silences heartbeats, forces a lease expiry, and delivers its
#      chunk answer late.
#
# The chaos run must end with ≥1 expired lease and a sha256 page
# digest byte-identical to the reference. Everything the run produced
# stays in the workdir as evidence (CI uploads it on failure).
#
# Usage: scripts/jobs_chaos.sh [workdir]   (default: results/jobs-chaos)

set -euo pipefail
cd "$(dirname "$0")/.."

WORKDIR="${1:-results/jobs-chaos}"
SERVER=target/release/leakage-server
WORKER=target/release/leakage-job-worker
TOKEN=chaos-secret
# 6 benchmarks × 2 sides × 4 nodes × 2084 permille steps = 100,032
# points in 25 chunks of 4096.
JOB_BODY='{"name": "chaos-100k", "scale": "test",
           "refetch_permille": {"from": 1, "to": 2084, "step": 1},
           "chunk_points": 4096}'

# Per-worker fault matrix: 3% of data frames dropped, 8% duplicated,
# 12% delayed 15ms. Worker 3 additionally partitions hard for 6s while
# sending its 5th data frame. Seeds differ per worker so the fleet
# does not fail in lockstep.
FAULTS_W1='net/drop=drop%30@11;net/dup=dup%80@13;net/delay=latency:15%120@17'
FAULTS_W2='net/drop=drop%30@23;net/dup=dup%80@29;net/delay=latency:15%120@31'
FAULTS_W3='net/drop=drop%30@41;net/dup=dup%80@43;net/delay=latency:15%120@47;net/partition=latency:6000#5'

if [ ! -x "$SERVER" ] || [ ! -x "$WORKER" ]; then
  cargo build --release -p leakage-server -p leakage-jobs --bins
fi

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"

start_server() { # log-file, extra flags...
  local log="$1"; shift
  rm -f "$log"
  "$SERVER" --addr 127.0.0.1:0 --scale test "$@" > "$log" 2>&1 &
  local pid=$!
  for _ in $(seq 1 100); do
    grep -q '^listening on ' "$log" && break
    sleep 0.1
  done
  grep -q '^listening on ' "$log" || { cat "$log"; return 1; }
  echo "$pid $(sed -n 's/^listening on //p' "$log" | head -n1)"
}

submit_job() { # addr -> job id
  curl -fsS -X POST "http://$1/v1/jobs" -d "$JOB_BODY" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])'
}

job_field() { # addr, id, field
  curl -fsS "http://$1/v1/jobs/$2" |
    python3 -c "import json,sys; print(json.load(sys.stdin)[\"$3\"])"
}

wait_done() { # addr, id, seconds
  for _ in $(seq 1 $(($3 * 2))); do
    state=$(job_field "$1" "$2" state)
    case "$state" in
      done) return 0 ;;
      queued|running) sleep 0.5 ;;
      *) echo "job ended in state $state"; curl -fsS "http://$1/v1/jobs/$2"; return 1 ;;
    esac
  done
  echo "job not done after $3 s"; curl -fsS "http://$1/v1/jobs/$2"; return 1
}

stop_server() { # pid
  kill -TERM "$1" 2>/dev/null || true
  for _ in $(seq 1 200); do
    kill -0 "$1" 2>/dev/null || return 0
    sleep 0.1
  done
  echo "server $1 did not exit after SIGTERM"; kill -KILL "$1"; return 1
}

page_digest() { # addr, id -> sha256 over every result page
  local pages page
  pages=$(curl -fsS "http://$1/v1/jobs/$2/result?per_page=10000" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["total_pages"])')
  for page in $(seq 0 $((pages - 1))); do
    curl -fsS "http://$1/v1/jobs/$2/result?page=$page&per_page=10000"
    printf '\n'
  done | sha256sum | cut -d' ' -f1
}

# --- Reference: uninterrupted, local workers -----------------------------
read -r PID ADDR < <(start_server "$WORKDIR/reference.log" \
  --jobs-dir "$WORKDIR/jobs-ref" --job-workers 4)
echo "reference coordinator at $ADDR (pid $PID)"
ID=$(submit_job "$ADDR")
wait_done "$ADDR" "$ID" 600
REF_DIGEST=$(page_digest "$ADDR" "$ID")
stop_server "$PID"
echo "reference digest: $REF_DIGEST"

# --- Chaos: remote fleet under the network fault matrix ------------------
# A dropped chunk response is only noticed by the stall deadline (the
# worker keeps heartbeating), so keep it short; the heartbeat timeout
# is what catches the partition.
read -r PID ADDR < <(start_server "$WORKDIR/chaos.log" \
  --jobs-dir "$WORKDIR/jobs-chaos" --job-workers 0 \
  --job-listen 127.0.0.1:0 --job-token "$TOKEN" \
  --job-hb-timeout-ms 1500 --job-stall-ms 6000)
JOB_ADDR=$(sed -n 's/^job fabric listening on //p' "$WORKDIR/chaos.log" | head -n1)
test -n "$JOB_ADDR" || { echo "no job fabric listener"; cat "$WORKDIR/chaos.log"; exit 1; }
echo "chaos coordinator at $ADDR, job fabric at $JOB_ADDR (pid $PID)"

WPIDS=()
i=1
for faults in "$FAULTS_W1" "$FAULTS_W2" "$FAULTS_W3"; do
  LEAKAGE_FAULTS="$faults" "$WORKER" --connect "$JOB_ADDR" --token "$TOKEN" \
    --hb-ms 250 > "$WORKDIR/worker-$i.log" 2>&1 &
  WPIDS+=($!)
  i=$((i + 1))
done

CID=$(submit_job "$ADDR")
test "$CID" = "$ID" || { echo "content-addressed ids differ: $CID vs $ID"; exit 1; }
wait_done "$ADDR" "$CID" 600

expired=$(job_field "$ADDR" "$CID" leases_expired)
late=$(job_field "$ADDR" "$CID" late_commits)
test "$expired" -ge 1 || { echo "expected ≥1 expired lease, got $expired"; exit 1; }
CHAOS_DIGEST=$(page_digest "$ADDR" "$CID")

kill -KILL "${WPIDS[@]}" 2>/dev/null || true
wait "${WPIDS[@]}" 2>/dev/null || true
stop_server "$PID"

test "$CHAOS_DIGEST" = "$REF_DIGEST" || {
  echo "chaos run diverged from the reference:"
  echo "  chaos:     $CHAOS_DIGEST"
  echo "  reference: $REF_DIGEST"
  exit 1
}
echo "jobs chaos OK: $expired leases expired, $late late commits discarded, digest $CHAOS_DIGEST"
