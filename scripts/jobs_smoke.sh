#!/usr/bin/env bash
# End-to-end smoke of the distributed sweep-job fabric:
#
#   1. Coordinator with 4 worker processes runs a ≥100k-point job
#      while every worker is armed to crash at its third chunk
#      (LEAKAGE_FAULTS in the worker environment only).
#   2. Mid-job the coordinator itself is SIGTERMed (resumable drain)
#      and a fresh coordinator resumes from the on-disk checkpoints.
#   3. The paginated results must be byte-identical to an
#      uninterrupted single-worker reference run of the same spec.
#   4. The same job again on *remote* TCP workers (--job-listen, zero
#      local workers): one worker is SIGKILLed mid-flight, another is
#      partitioned (armed net/partition), and the digest must still
#      match the reference. Afterwards the whole fleet is killed and
#      /healthz must flip degraded below the worker quorum.
#
# Usage: scripts/jobs_smoke.sh [workdir]   (default: results/jobs-smoke)

set -euo pipefail
cd "$(dirname "$0")/.."

WORKDIR="${1:-results/jobs-smoke}"
SERVER=target/release/leakage-server
# 6 benchmarks × 2 sides × 4 nodes × 2084 permille steps = 100,032
# points in 25 chunks of 4096.
JOB_BODY='{"name": "smoke-100k", "scale": "test",
           "refetch_permille": {"from": 1, "to": 2084, "step": 1},
           "chunk_points": 4096}'
EXPECTED_POINTS=100032

if [ ! -x "$SERVER" ] || [ ! -x target/release/leakage-job-worker ]; then
  cargo build --release -p leakage-server -p leakage-jobs --bins
fi

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"

start_server() { # log-file, extra flags...
  local log="$1"; shift
  rm -f "$log"
  "$SERVER" --addr 127.0.0.1:0 --scale test "$@" > "$log" 2>&1 &
  local pid=$!
  for _ in $(seq 1 100); do
    grep -q '^listening on ' "$log" && break
    sleep 0.1
  done
  grep -q '^listening on ' "$log" || { cat "$log"; return 1; }
  echo "$pid $(sed -n 's/^listening on //p' "$log" | head -n1)"
}

submit_job() { # addr -> job id
  curl -fsS -X POST "http://$1/v1/jobs" -d "$JOB_BODY" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])'
}

job_field() { # addr, id, field
  curl -fsS "http://$1/v1/jobs/$2" |
    python3 -c "import json,sys; print(json.load(sys.stdin)[\"$3\"])"
}

wait_done() { # addr, id, seconds
  for _ in $(seq 1 $(($3 * 2))); do
    state=$(job_field "$1" "$2" state)
    case "$state" in
      done) return 0 ;;
      queued|running) sleep 0.5 ;;
      *) echo "job ended in state $state"; curl -fsS "http://$1/v1/jobs/$2"; return 1 ;;
    esac
  done
  echo "job not done after $3 s"; curl -fsS "http://$1/v1/jobs/$2"; return 1
}

stop_server() { # pid — SIGTERM and wait for the process to exit
  kill -TERM "$1" 2>/dev/null || true
  for _ in $(seq 1 200); do
    kill -0 "$1" 2>/dev/null || return 0
    sleep 0.1
  done
  echo "server $1 did not exit after SIGTERM"; kill -KILL "$1"; return 1
}

page_digest() { # addr, id -> sha256 over every result page
  local pages page
  pages=$(curl -fsS "http://$1/v1/jobs/$2/result?per_page=10000" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["total_pages"])')
  for page in $(seq 0 $((pages - 1))); do
    curl -fsS "http://$1/v1/jobs/$2/result?page=$page&per_page=10000"
    printf '\n'
  done | sha256sum | cut -d' ' -f1
}

# --- Phase 1: crashy fleet, then a coordinator restart -------------------
read -r PID ADDR < <(start_server "$WORKDIR/coordinator-1.log" \
  --jobs-dir "$WORKDIR/jobs" --job-workers 4 \
  --job-worker-env 'LEAKAGE_FAULTS=jobs/chunk=panic#3')
echo "coordinator 1 at $ADDR (pid $PID)"

ID=$(submit_job "$ADDR")
echo "submitted job $ID"
points=$(job_field "$ADDR" "$ID" points)
test "$points" = "$EXPECTED_POINTS" || {
  echo "expected $EXPECTED_POINTS points, got $points"; exit 1; }

# Let it make real progress (and crash a few workers) first.
for _ in $(seq 1 240); do
  chunks_done=$(job_field "$ADDR" "$ID" chunks_done)
  [ "$chunks_done" -ge 5 ] && break
  sleep 0.5
done
test "$chunks_done" -ge 5 || { echo "no progress: $chunks_done chunks"; exit 1; }
restarts=$(job_field "$ADDR" "$ID" worker_restarts)
test "$restarts" -ge 1 || { echo "expected ≥1 worker crash, got $restarts"; exit 1; }
echo "progress: $chunks_done chunks done, $restarts worker restarts — killing coordinator"

stop_server "$PID"

# --- Phase 2: resume from checkpoints, fault-free ------------------------
read -r PID ADDR < <(start_server "$WORKDIR/coordinator-2.log" \
  --jobs-dir "$WORKDIR/jobs" --job-workers 4)
echo "coordinator 2 at $ADDR (pid $PID)"

wait_done "$ADDR" "$ID" 300
resumed=$(job_field "$ADDR" "$ID" resumed_chunks)
test "$resumed" -ge 5 || { echo "expected ≥5 resumed chunks, got $resumed"; exit 1; }
echo "resumed $resumed chunks from disk; job complete"
DIGEST=$(page_digest "$ADDR" "$ID")

stop_server "$PID"

# --- Phase 3: uninterrupted single-worker reference ----------------------
read -r PID ADDR < <(start_server "$WORKDIR/reference.log" \
  --jobs-dir "$WORKDIR/jobs-ref" --job-workers 1)
echo "reference coordinator at $ADDR (pid $PID)"

REF_ID=$(submit_job "$ADDR")
test "$REF_ID" = "$ID" || { echo "content-addressed ids differ: $REF_ID vs $ID"; exit 1; }
wait_done "$ADDR" "$REF_ID" 600
REF_DIGEST=$(page_digest "$ADDR" "$REF_ID")

stop_server "$PID"

test "$DIGEST" = "$REF_DIGEST" || {
  echo "crashed-and-resumed results differ from the reference run:"
  echo "  resumed:   $DIGEST"
  echo "  reference: $REF_DIGEST"
  exit 1
}
echo "phases 1-3 OK: digest $DIGEST matches reference"

# --- Phase 4: remote TCP workers, killed and partitioned mid-flight ------
WORKER=target/release/leakage-job-worker
TOKEN=smoke-secret
read -r PID ADDR < <(start_server "$WORKDIR/remote.log" \
  --jobs-dir "$WORKDIR/jobs-remote" --job-workers 0 \
  --job-listen 127.0.0.1:0 --job-token "$TOKEN" \
  --job-hb-timeout-ms 2000 --job-worker-quorum 2)
JOB_ADDR=$(sed -n 's/^job fabric listening on //p' "$WORKDIR/remote.log" | head -n1)
test -n "$JOB_ADDR" || { echo "no job fabric listener"; cat "$WORKDIR/remote.log"; exit 1; }
echo "remote coordinator at $ADDR, job fabric at $JOB_ADDR (pid $PID)"

# Three external workers: one healthy, one to be SIGKILLed, one that
# partitions for 8s while sending its 4th data frame (heartbeats
# silenced → lease expiry → reassignment → its late commit discarded).
"$WORKER" --connect "$JOB_ADDR" --token "$TOKEN" --hb-ms 250 \
  > "$WORKDIR/worker-1.log" 2>&1 &
W1=$!
"$WORKER" --connect "$JOB_ADDR" --token "$TOKEN" --hb-ms 250 \
  > "$WORKDIR/worker-2.log" 2>&1 &
W2=$!
LEAKAGE_FAULTS='net/partition=latency:8000#4' \
  "$WORKER" --connect "$JOB_ADDR" --token "$TOKEN" --hb-ms 250 \
  > "$WORKDIR/worker-3.log" 2>&1 &
W3=$!

RID=$(submit_job "$ADDR")
test "$RID" = "$ID" || { echo "content-addressed ids differ: $RID vs $ID"; exit 1; }

# SIGKILL one worker once the job has made real progress.
for _ in $(seq 1 240); do
  chunks_done=$(job_field "$ADDR" "$RID" chunks_done)
  [ "$chunks_done" -ge 3 ] && break
  sleep 0.5
done
test "$chunks_done" -ge 3 || { echo "remote job stuck: $chunks_done chunks"; exit 1; }
kill -KILL "$W2" 2>/dev/null || true
echo "killed remote worker $W2 at $chunks_done chunks"

wait_done "$ADDR" "$RID" 600
expired=$(job_field "$ADDR" "$RID" leases_expired)
test "$expired" -ge 1 || { echo "expected ≥1 expired lease, got $expired"; exit 1; }
REMOTE_DIGEST=$(page_digest "$ADDR" "$RID")
test "$REMOTE_DIGEST" = "$REF_DIGEST" || {
  echo "remote-worker results differ from the reference run:"
  echo "  remote:    $REMOTE_DIGEST"
  echo "  reference: $REF_DIGEST"
  exit 1
}
echo "remote run OK: $expired leases expired, digest matches reference"

# Kill the whole fleet; /healthz must report degraded (still HTTP 200)
# once the pool sweep notices the dead links.
kill -KILL "$W1" "$W3" 2>/dev/null || true
wait "$W1" "$W2" "$W3" 2>/dev/null || true
degraded=false
for _ in $(seq 1 40); do
  degraded=$(curl -fsS "http://$ADDR/healthz" |
    python3 -c 'import json,sys; print(str(json.load(sys.stdin)["degraded"]).lower())')
  [ "$degraded" = "true" ] && break
  sleep 0.25
done
test "$degraded" = "true" || { echo "healthz never degraded below quorum"; exit 1; }
echo "healthz degraded below worker quorum as expected"

stop_server "$PID"
echo "jobs smoke OK: $EXPECTED_POINTS points, digest $DIGEST"
