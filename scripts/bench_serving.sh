#!/usr/bin/env bash
# Reproduces results/BENCH_serving_trajectory.json: the serving hot
# path measured after each optimization step, on one machine, with the
# same closed-loop workload throughout (the CI loadgen mix).
#
#   1. baseline        threaded transport, connection-per-request
#                      loadgen, no sharding, no pre-serialization
#                      (the PR-5 serving model)
#   2. keepalive       same server, HTTP/1.1 keep-alive + pipelining
#                      in the loadgen
#   3. reactor         epoll reactor transport replaces
#                      thread-per-admitted-connection
#   4. sharding        lock-striped store front, sharded response
#                      cache, striped counters (8 shards)
#   5. preserialize    pre-serialized artifact catalog on (the
#                      shipping default)
#   6. notrace         same configuration with the flight recorder
#                      off (--no-recorder) — the preserialize/notrace
#                      pair bounds the request-tracing overhead
#
# After the trajectory it runs BENCH_PAIRS (default 5) interleaved
# tracing-on/tracing-off pairs and records the median of the per-pair
# throughput ratios as `tracing_overhead.median_ratio` — the robust
# tracing-cost estimate (single run pairs are drift-dominated on
# shared hardware).
#
# Usage: scripts/bench_serving.sh [out.json]
#   BENCH_SECONDS (default 5), BENCH_CONNECTIONS (default 4),
#   BENCH_PIPELINE (default 8) tune the loadgen; BENCH_PAIRS /
#   BENCH_PAIR_SECONDS (default 4) tune the overhead gate.

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-results/BENCH_serving_trajectory.json}"
SECONDS_PER_STEP="${BENCH_SECONDS:-5}"
CONNECTIONS="${BENCH_CONNECTIONS:-4}"
PIPELINE="${BENCH_PIPELINE:-8}"
MIX='/v1/table/2?scale=test:8,/healthz:1,/metrics:1'

cargo build --release -p leakage-server --bins

SERVER=./target/release/leakage-server
LOADGEN=./target/release/loadgen
WORK="$(mktemp -d)"
trap 'kill $(cat "$WORK"/server.pid 2>/dev/null) 2>/dev/null || true; rm -rf "$WORK"' EXIT

# run_step <name> "<server flags>" "<loadgen flags>"
run_step() {
  local name="$1" server_flags="$2" loadgen_flags="$3"
  local log="$WORK/$name.log"

  # shellcheck disable=SC2086  # flags are intentionally word-split
  $SERVER --addr 127.0.0.1:0 --scale test $server_flags > "$log" 2>&1 &
  echo $! > "$WORK/server.pid"
  for _ in $(seq 1 100); do
    grep -q '^listening on ' "$log" && break
    sleep 0.1
  done
  grep -q '^listening on ' "$log" || { cat "$log"; exit 1; }
  local addr
  addr=$(sed -n 's/^listening on //p' "$log" | head -n1)

  # One warm-up pass so every step measures serving, not first-touch
  # simulation of the profile suite.
  curl -fsS "http://$addr/v1/table/2?scale=test" > /dev/null

  # shellcheck disable=SC2086
  $LOADGEN --addr "$addr" --connections "$CONNECTIONS" \
    --seconds "$SECONDS_PER_STEP" --mix "$MIX" $loadgen_flags \
    > "$WORK/$name.json"

  kill "$(cat "$WORK/server.pid")" 2>/dev/null || true
  wait "$(cat "$WORK/server.pid")" 2>/dev/null || true
  rm -f "$WORK/server.pid"

  python3 - "$name" "$server_flags" "$loadgen_flags" "$WORK/$name.json" <<'EOF'
import json, sys
name, server_flags, loadgen_flags, path = sys.argv[1:5]
report = json.load(open(path))
print('%-12s %9.0f req/s  p50 %6d us  p99 %6d us  errors %d'
      % (name, report['throughput_rps'], report['p50_us'],
         report['p99_us'], report['transport_errors']))
EOF
}

run_step baseline    '--transport threaded --cache-shards 1 --no-preserialize' '--close'
run_step keepalive   '--transport threaded --cache-shards 1 --no-preserialize' "--pipeline $PIPELINE"
run_step reactor     '--transport reactor --cache-shards 1 --no-preserialize'  "--pipeline $PIPELINE"
run_step sharding    '--transport reactor --cache-shards 8 --no-preserialize'  "--pipeline $PIPELINE"
run_step preserialize '--transport reactor --cache-shards 8'                   "--pipeline $PIPELINE"
run_step notrace     '--transport reactor --cache-shards 8 --no-recorder'      "--pipeline $PIPELINE"

# Tracing-overhead gate. A single on/off run pair is meaningless on a
# shared box: identical configs differ by ±15% between runs (host
# phases, scheduler modes). Interleaved pairs are robust — both runs
# of a pair see the same machine phase, so the per-pair ratio cancels
# the drift, and the median across pairs discards outlier phases.
PAIRS="${BENCH_PAIRS:-5}"
PAIR_SECONDS="${BENCH_PAIR_SECONDS:-4}"
FULL_SECONDS="$SECONDS_PER_STEP"
SECONDS_PER_STEP="$PAIR_SECONDS"
for i in $(seq 1 "$PAIRS"); do
  run_step "trace_on_$i"  '--transport reactor --cache-shards 8'               "--pipeline $PIPELINE"
  run_step "trace_off_$i" '--transport reactor --cache-shards 8 --no-recorder' "--pipeline $PIPELINE"
done
SECONDS_PER_STEP="$FULL_SECONDS"

python3 - "$WORK" "$OUT" "$SECONDS_PER_STEP" "$CONNECTIONS" "$PIPELINE" "$PAIRS" "$PAIR_SECONDS" <<'EOF'
import json, sys
work, out, seconds, connections, pipeline, pairs, pair_seconds = sys.argv[1:8]
steps = [
    ('baseline',
     'threaded transport, connection-per-request load, unsharded, no catalog',
     '--transport threaded --cache-shards 1 --no-preserialize', '--close'),
    ('keepalive',
     'HTTP/1.1 keep-alive + pipelining in the load generator',
     '--transport threaded --cache-shards 1 --no-preserialize',
     f'--pipeline {pipeline}'),
    ('reactor',
     'epoll reactor transport replaces thread-per-admitted-connection',
     '--transport reactor --cache-shards 1 --no-preserialize',
     f'--pipeline {pipeline}'),
    ('sharding',
     'lock-striped store front + sharded response cache + striped counters',
     '--transport reactor --cache-shards 8 --no-preserialize',
     f'--pipeline {pipeline}'),
    ('preserialize',
     'pre-serialized artifact catalog (shipping default)',
     '--transport reactor --cache-shards 8', f'--pipeline {pipeline}'),
    ('notrace',
     'flight recorder + request tracing off (tracing-overhead control)',
     '--transport reactor --cache-shards 8 --no-recorder',
     f'--pipeline {pipeline}'),
]
entries = []
for name, description, server_flags, loadgen_flags in steps:
    report = json.load(open(f'{work}/{name}.json'))
    entries.append({
        'step': name,
        'description': description,
        'server_flags': server_flags,
        'loadgen_flags': (f'--connections {connections} --seconds {seconds} '
                          + loadgen_flags),
        'report': report,
    })

# Tracing overhead from the interleaved pairs: the per-pair on/off
# ratio cancels host drift (both runs of a pair hit the same machine
# phase); the median across pairs rejects outlier phases. The single
# preserialize/notrace pair above stays in `steps` for the trajectory
# but is too noisy on shared hardware to gate on by itself.
pairs = int(pairs)
on_rps, off_rps = [], []
for i in range(1, pairs + 1):
    on_rps.append(json.load(open(f'{work}/trace_on_{i}.json'))['throughput_rps'])
    off_rps.append(json.load(open(f'{work}/trace_off_{i}.json'))['throughput_rps'])
ratios = sorted(on / off for on, off in zip(on_rps, off_rps))
mid = len(ratios) // 2
median = ratios[mid] if len(ratios) % 2 else (ratios[mid - 1] + ratios[mid]) / 2
overhead = {
    'pairs': pairs,
    'seconds_per_run': int(pair_seconds),
    'on_rps': on_rps,
    'off_rps': off_rps,
    'pair_ratios': [round(r, 4) for r in ratios],
    'median_ratio': round(median, 4),
}
json.dump({'steps': entries, 'tracing_overhead': overhead},
          open(out, 'w'), indent=2)
print(f'wrote {out}')
by_step = {e['step']: e['report']['throughput_rps'] for e in entries}
base = by_step['baseline']
final = by_step['preserialize']
print('trajectory: %.0f -> %.0f req/s (%.1fx)' % (base, final, final / base))
print('tracing overhead (median of %d interleaved on/off pairs): %.1f%% of tracing-off'
      % (pairs, 100.0 * median))
EOF
