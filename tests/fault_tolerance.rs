//! End-to-end fault-tolerance tests: the deterministic fault plane
//! (`LEAKAGE_FAULTS`) killing benchmarks and tearing writes, and the
//! pipeline degrading instead of dying.
//!
//! The fault plane is process-global, so every test here holds a
//! [`FaultScope`] — a process-wide lock — for its whole body: the
//! tests in this binary serialize around it, and no other
//! suite-fetching test binary shares this process.

use cache_leakage_limits::experiments::store::QUARANTINE_SUBDIR;
use cache_leakage_limits::experiments::{cached_suite, suite_partial_with, ProfileStore};
use cache_leakage_limits::faults::{panic_message, set_plane, Plane, PipelineError, StoreError};
use cache_leakage_limits::workloads::{Scale, SUITE_NAMES};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Serializes fault experiments in this binary: holds the lock for the
/// scope's lifetime and guarantees an empty plane on drop (even when
/// the test panics).
struct FaultScope {
    _serial: MutexGuard<'static, ()>,
}

impl FaultScope {
    /// Locks without installing faults yet — for tests that need a
    /// fault-free seeding phase first.
    fn idle() -> Self {
        static LOCK: Mutex<()> = Mutex::new(());
        FaultScope {
            _serial: LOCK.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    fn new(spec: &str) -> Self {
        let scope = FaultScope::idle();
        scope.install(spec);
        scope
    }

    fn install(&self, spec: &str) {
        set_plane(Plane::parse(spec).expect("test spec parses"));
    }

    fn clear(&self) {
        set_plane(Plane::empty());
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        self.clear();
    }
}

/// The headline acceptance scenario: a panic injected into exactly one
/// benchmark fails that benchmark alone — the other five complete, the
/// failure is typed, and clearing the plane fully recovers the store.
#[test]
fn one_poisoned_benchmark_does_not_sink_the_suite() {
    let scope = FaultScope::new("suite/gzip=panic");
    let store = ProfileStore::new();
    let outcome = suite_partial_with(&store, Scale::Test);
    assert_eq!(outcome.profiles.len(), SUITE_NAMES.len() - 1);
    assert_eq!(outcome.failures.len(), 1);
    assert!(!outcome.all_healthy());
    let failure = &outcome.failures[0];
    assert_eq!(failure.benchmark, "gzip");
    assert!(
        matches!(
            &failure.error,
            PipelineError::Store(StoreError::SimulationPanicked { benchmark, .. })
                if benchmark == "gzip"
        ),
        "{}",
        failure.error
    );
    // The five survivors are the suite minus gzip, in order.
    let healthy: Vec<&str> = outcome.profiles.iter().map(|p| p.name.as_str()).collect();
    let expected: Vec<&str> = SUITE_NAMES.iter().copied().filter(|n| *n != "gzip").collect();
    assert_eq!(healthy, expected);

    // Fault cleared: the same store heals — the panicked key was never
    // wedged (its cell reverted to idle, not poisoned).
    scope.clear();
    let healed = suite_partial_with(&store, Scale::Test);
    assert!(healed.all_healthy(), "{:?}", healed.failures);
    assert_eq!(healed.profiles.len(), SUITE_NAMES.len());
    // The injected panic fired before any simulation work, so across
    // both runs each benchmark simulated exactly once.
    assert_eq!(store.counters().misses, SUITE_NAMES.len() as u64);
}

/// A panicked fetch must not wedge later fetches of the same key or of
/// other keys (the ISSUE's mutex-poisoning footgun, end to end).
#[test]
fn panicked_fetch_leaves_the_store_usable() {
    let _scope = FaultScope::new("suite/mesa=panic#1");
    let store = ProfileStore::new();
    let err = store.try_fetch("mesa", Scale::Test).unwrap_err();
    assert!(
        matches!(&err, StoreError::SimulationPanicked { benchmark, .. } if benchmark == "mesa"),
        "{err}"
    );
    // Other keys were never affected…
    store.fetch("gcc", Scale::Test);
    // …and the panicked key recovered: `#1` fired exactly once, so the
    // retry simulates cleanly.
    let profile = store.try_fetch("mesa", Scale::Test).unwrap();
    assert_eq!(profile.name, "mesa");
}

/// The infallible suite API re-raises the injected failure (with the
/// benchmark named) rather than silently dropping a row — and the
/// global store it shares recovers once the fault clears.
#[test]
fn infallible_suite_reraises_the_failure() {
    let scope = FaultScope::new("suite/ammp=panic#1");
    let payload = std::panic::catch_unwind(|| cached_suite(Scale::Test)).unwrap_err();
    let message = panic_message(payload.as_ref());
    assert!(message.contains("ammp"), "{message}");
    scope.clear();
    assert_eq!(cached_suite(Scale::Test).len(), SUITE_NAMES.len());
}

/// An injected torn write (crash mid-`write(2)`) leaves a file the next
/// reader refuses: the checksum footer fails, the file is quarantined,
/// and the profile is re-simulated — a partial profile is never served.
#[test]
fn torn_write_is_never_served() {
    let scope = FaultScope::new("store/write=truncate:20#1");
    let dir = std::env::temp_dir().join(format!("leakage-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ProfileStore::with_disk_dir(&dir).fetch("applu", Scale::Test);
    scope.clear();

    // The injected fault tore the write down to 20 bytes.
    let torn: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "profile"))
        .collect();
    assert_eq!(torn.len(), 1);
    assert_eq!(std::fs::metadata(&torn[0]).unwrap().len(), 20);

    // A later run (fault-free) must quarantine, re-simulate, self-heal.
    let reader = ProfileStore::with_disk_dir(&dir);
    let profile = reader.fetch("applu", Scale::Test);
    assert_eq!(profile.name, "applu");
    let counters = reader.counters();
    assert_eq!(counters.disk_hits, 0, "torn profile must never decode");
    assert_eq!(counters.quarantined, 1, "{counters:?}");
    assert!(dir
        .join(QUARANTINE_SUBDIR)
        .join(torn[0].file_name().unwrap())
        .exists());
    // Healed: the rewritten file now round-trips.
    let reread = ProfileStore::with_disk_dir(&dir);
    reread.fetch("applu", Scale::Test);
    assert_eq!(reread.counters().disk_hits, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Injected ENOSPC on every write: persistence degrades to in-memory
/// memoization (no file, no panic), and the fetch still succeeds.
#[test]
fn enospc_degrades_to_memory_only() {
    let _scope = FaultScope::new("store/write=io:enospc");
    let dir = std::env::temp_dir().join(format!("leakage-enospc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ProfileStore::with_disk_dir(&dir);
    let profile = store.fetch("gcc", Scale::Test);
    assert_eq!(profile.name, "gcc");
    // Memoization still works…
    store.fetch("gcc", Scale::Test);
    assert_eq!(store.counters().hits, 1);
    // …but nothing decodable was persisted.
    let files: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .map(|d| d.map(|e| e.unwrap().path()).collect())
        .unwrap_or_default();
    assert!(
        files.iter().all(|p| !p.extension().is_some_and(|e| e == "profile")),
        "{files:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Transient read errors are absorbed by the retry layer: two injected
/// `EINTR`s on `store/read` and the disk hit still goes through.
#[test]
fn transient_read_errors_are_retried() {
    let scope = FaultScope::idle();
    let dir = std::env::temp_dir().join(format!("leakage-eintr-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ProfileStore::with_disk_dir(&dir).fetch("vortex", Scale::Test);

    scope.install("store/read=io:interrupted#1;store/read=io:interrupted#2");
    let store = ProfileStore::with_disk_dir(&dir);
    store.fetch("vortex", Scale::Test);
    let counters = store.counters();
    assert_eq!(counters.disk_hits, 1, "retries must absorb the EINTRs: {counters:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
