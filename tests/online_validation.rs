//! Cross-validation: the online timeline simulator against the
//! interval-analytic accounting.
//!
//! The idealized online decay controller implements *exactly* the
//! semantics the analytic `DecaySleep` policy assumes (a line decays
//! only when the full power-down/power-up sequence fits, refetch charged
//! only on destroyed-then-wanted data). Running both over the same
//! trace must therefore produce the same energy — a strong end-to-end
//! check that two independently written accountings agree.

use cache_leakage_limits::core::policy::DecaySleep;
use cache_leakage_limits::core::{CircuitParams, EnergyContext, RefetchAccounting};
use cache_leakage_limits::energy::TechnologyNode;
use cache_leakage_limits::experiments::profile_benchmark;
use cache_leakage_limits::online::{Controller, OnlineSink};
use cache_leakage_limits::trace::TraceSource;
use cache_leakage_limits::workloads::{gzip, vortex, Scale};

#[test]
fn idealized_online_decay_matches_analytic_exactly() {
    for make in [gzip, vortex] {
        // Analytic: profile -> dead-aware evaluation of DecaySleep.
        let mut bench = make(Scale::Test);
        let name = bench.name();
        let profile = profile_benchmark(&mut bench);
        let ctx = EnergyContext::new(
            CircuitParams::for_node(TechnologyNode::N70),
            RefetchAccounting::DeadAware,
        );
        let policy = DecaySleep::with_counter_ratio(10_000, 0.01);
        let analytic_i = ctx.evaluate(&policy, &profile.icache.dist);
        let analytic_d = ctx.evaluate(&policy, &profile.dcache.dist);

        // Online: the same trace through the idealized controller.
        let mut sink = OnlineSink::new(
            CircuitParams::for_node(TechnologyNode::N70),
            Controller::Decay {
                theta: 10_000,
                counter_ratio: 0.01,
                idealized: true,
            },
        );
        make(Scale::Test).run(&mut sink);
        let (online_i, online_d) = sink.finish();

        for (label, analytic, online) in [
            ("icache", analytic_i, online_i),
            ("dcache", analytic_d, online_d),
        ] {
            assert!(
                (analytic.baseline - online.baseline).abs() / analytic.baseline < 1e-12,
                "{name}/{label}: baselines differ"
            );
            let rel = (analytic.energy - online.energy).abs() / analytic.energy;
            assert!(
                rel < 1e-9,
                "{name}/{label}: analytic {} vs online {} (rel {rel})",
                analytic.energy,
                online.energy
            );
        }
    }
}

#[test]
fn idealization_error_is_bounded_and_hit_overshoots_cost() {
    // Hardware that commits at the timer differs from the idealized
    // accounting only on overshoot intervals (length within one
    // transition time of theta): a hit there costs a full refetch, a
    // fill there actually *saves* (early power-down into dead data).
    // Either way the net error must be small — this bounds the
    // "idealization error" of interval-analytic decay studies.
    for theta in [1_000u64, 10_000, 50_000] {
        let run = |ctrl: Controller| {
            let mut sink = OnlineSink::new(CircuitParams::for_node(TechnologyNode::N70), ctrl);
            gzip(Scale::Test).run(&mut sink);
            sink.finish()
        };
        let (ideal_i, ideal_d) = run(Controller::decay_idealized(theta));
        let (real_i, real_d) = run(Controller::decay(theta));
        for (label, ideal, real) in [("icache", ideal_i, real_i), ("dcache", ideal_d, real_d)] {
            let gap = (real.saving_percent() - ideal.saving_percent()).abs();
            assert!(gap < 3.0, "theta={theta} {label}: idealization error {gap} points");
            // The realistic variant can only see *more* induced misses
            // (it also destroys data on overshoot intervals).
            assert!(
                real.induced_misses >= ideal.induced_misses,
                "theta={theta} {label}"
            );
        }
    }
}

#[test]
fn quantized_decay_brackets_ideal_decay() {
    // 2-bit counters with tick = theta/3 decay between 2 and 3 ticks:
    // the effective threshold straddles theta, so savings land near the
    // ideal timer's.
    let run = |ctrl: Controller| {
        let mut sink = OnlineSink::new(CircuitParams::for_node(TechnologyNode::N70), ctrl);
        vortex(Scale::Test).run(&mut sink);
        sink.finish().1
    };
    let ideal = run(Controller::decay(12_000));
    let quantized = run(Controller::quantized_decay(12_000));
    let gap = (ideal.saving_percent() - quantized.saving_percent()).abs();
    assert!(gap < 5.0, "quantization moved savings by {gap} points");
    assert!(quantized.saving_fraction() > 0.0);
}

#[test]
fn adaptive_decay_lands_between_fixed_extremes() {
    let run = |ctrl: Controller| {
        let mut sink = OnlineSink::new(CircuitParams::for_node(TechnologyNode::N70), ctrl);
        gzip(Scale::Small).run(&mut sink);
        sink.finish().1
    };
    let tight = run(Controller::decay(1_000));
    let loose = run(Controller::decay(512_000));
    let adaptive = run(Controller::adaptive_decay());
    // Adaptivity: fewer induced misses than the tight timer, more
    // savings than the loose one.
    assert!(
        adaptive.induced_miss_per_kilo_access() <= tight.induced_miss_per_kilo_access(),
        "adaptive {} vs tight {}",
        adaptive.induced_miss_per_kilo_access(),
        tight.induced_miss_per_kilo_access()
    );
    assert!(
        adaptive.saving_fraction() >= loose.saving_fraction(),
        "adaptive {} vs loose {}",
        adaptive.saving_fraction(),
        loose.saving_fraction()
    );
    assert!(!adaptive.theta_history.is_empty());
}
