//! Property-based verification of the paper's appendix (Theorem 1).
//!
//! The theorem: under the independent-interval model, assigning each
//! interval the mode dictated by the inflection points (active below
//! `a`, drowsy in `(a, b]`, sleep above `b`) minimizes total energy over
//! *all* per-interval mode assignments. We verify this against random
//! circuit parameters and random interval sets, not just the paper's
//! operating points.

use cache_leakage_limits::core::envelope::{envelope_energy, optimal_mode};
use cache_leakage_limits::core::{
    CircuitParams, EnergyContext, IntervalClass, IntervalEnergyModel, IntervalKind, ModePowers,
    ModeTimings, PowerMode, RefetchAccounting, WakeHints,
};
use proptest::prelude::*;

/// Random but physically sensible circuit parameters.
fn arb_params() -> impl Strategy<Value = CircuitParams> {
    (
        0.001f64..10.0,  // active power
        0.05f64..0.9,    // drowsy ratio
        0.0f64..0.04,    // sleep ratio
        1.0f64..100_000.0, // refetch energy in units of active power
        2u64..50,        // s1
        1u64..4,         // d ramps (d1 = d3; s3 = d3 ensures Lemma 1)
        0u64..20,        // s4
    )
        .prop_map(|(active, dr, sr, refetch_units, s1_extra, d, s4)| {
            let powers = ModePowers::from_ratios(active, dr.max(sr + 0.01), sr);
            let timings = ModeTimings {
                s1: d + s1_extra, // strictly larger than d1
                s3: d,
                s4,
                d1: d,
                d3: d,
            };
            CircuitParams::builder()
                .powers(powers)
                .timings(timings)
                .refetch_energy(refetch_units * active)
                .build()
        })
}

fn interior(length: u64) -> IntervalClass {
    IntervalClass {
        length,
        kind: IntervalKind::Interior { reaccess: true },
        wake: WakeHints::NONE,
        dirty: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Lemma 1: the active-drowsy point lies strictly below the
    /// drowsy-sleep point.
    #[test]
    fn lemma1_inflection_ordering(params in arb_params()) {
        let model = IntervalEnergyModel::new(params);
        let points = model.inflection_points();
        prop_assert!(points.active_drowsy < points.drowsy_sleep,
            "a = {} must be below b = {}", points.active_drowsy, points.drowsy_sleep);
    }

    /// The classified mode's energy equals the lower envelope at every
    /// length (away from the exact inflection points, where modes tie).
    #[test]
    fn classification_achieves_envelope(
        params in arb_params(),
        length in 0u64..10_000_000,
    ) {
        let model = IntervalEnergyModel::new(params);
        let points = model.inflection_points();
        // Skip the tie points themselves.
        prop_assume!(length != points.active_drowsy && length != points.drowsy_sleep);

        let envelope = envelope_energy(&model, length);
        let mode = optimal_mode(length, &points);
        if let Some(energy) = model.energy(mode, length) {
            // Within float tolerance the classified mode is optimal.
            prop_assert!(energy <= envelope * (1.0 + 1e-9) + 1e-9,
                "mode {mode} at t={length}: {energy} > envelope {envelope}");
        } else {
            // Infeasible classified mode can only happen between a and
            // the sleep feasibility bound when b < s1+s3+s4; the solver
            // clamps b so this must not occur.
            prop_assert!(false, "classified mode infeasible at t={length}");
        }
    }

    /// Theorem 1 proper: the greedy assignment beats any constant-mode
    /// assignment over any interval multiset (linearity makes constant
    /// assignments the extreme points, and per-interval independence
    /// reduces arbitrary assignments to per-interval comparisons, which
    /// `classification_achieves_envelope` covers pointwise).
    #[test]
    fn theorem1_greedy_dominates_any_assignment(
        params in arb_params(),
        lengths in prop::collection::vec(0u64..3_000_000, 1..64),
        // A random adversary assignment, one mode per interval.
        adversary in prop::collection::vec(0u8..3, 64),
    ) {
        let ctx = EnergyContext::new(params, RefetchAccounting::PaperStrict);
        let mut greedy_total = 0.0;
        let mut adversary_total = 0.0;
        for (i, &length) in lengths.iter().enumerate() {
            let class = interior(length);
            greedy_total += ctx.optimal_energy(&class);
            let mode = match adversary[i % adversary.len()] {
                0 => PowerMode::Active,
                1 => PowerMode::Drowsy,
                _ => PowerMode::Sleep,
            };
            let (energy, _) = ctx.mode_energy_or_active(mode, &class);
            adversary_total += energy;
        }
        prop_assert!(greedy_total <= adversary_total * (1.0 + 1e-9) + 1e-9,
            "greedy {greedy_total} beaten by adversary {adversary_total}");
    }

    /// Savings are bounded: no policy can save more than 100% of the
    /// baseline, and the optimum never consumes more than the baseline.
    #[test]
    fn envelope_bounded_by_baseline(
        params in arb_params(),
        length in 0u64..10_000_000,
    ) {
        let ctx = EnergyContext::new(params, RefetchAccounting::PaperStrict);
        let class = interior(length);
        let optimal = ctx.optimal_energy(&class);
        prop_assert!(optimal >= 0.0);
        prop_assert!(optimal <= ctx.baseline_energy(&class) * (1.0 + 1e-9) + 1e-9);
    }

    /// The energy of every feasible mode is monotone in interval length.
    #[test]
    fn mode_energies_monotone(
        params in arb_params(),
        length in 100u64..1_000_000,
        delta in 1u64..10_000,
    ) {
        let model = IntervalEnergyModel::new(params);
        for mode in PowerMode::ALL {
            if let (Some(e1), Some(e2)) =
                (model.energy(mode, length), model.energy(mode, length + delta))
            {
                prop_assert!(e2 >= e1, "{mode} energy decreased with length");
            }
        }
    }

    /// At the solved drowsy-sleep point the two modes really do tie.
    #[test]
    fn inflection_point_is_a_crossing(params in arb_params()) {
        let model = IntervalEnergyModel::new(params);
        let b_exact = model.drowsy_sleep_point_exact();
        // Only check genuine interior crossings (not feasibility clamps).
        prop_assume!(b_exact > model.params().timings().sleep_overhead() as f64 + 1.0);
        let b = b_exact.round() as u64;
        let drowsy = model.energy_drowsy(b).unwrap();
        let sleep = model.energy_sleep(b, true).unwrap();
        let scale = drowsy.abs().max(1e-12);
        // Within one cycle of the crossing the energies differ by at
        // most one cycle of power difference.
        let slope_gap = model.params().powers().drowsy - model.params().powers().sleep;
        prop_assert!((drowsy - sleep).abs() <= slope_gap + scale * 1e-9,
            "E_D({b})={drowsy} vs E_S({b})={sleep}");
    }
}
