//! Property tests on the interval-extraction substrate: random access
//! patterns through a real cache, checked against global invariants.

use cache_leakage_limits::cachesim::{Cache, CacheConfig};
use cache_leakage_limits::intervals::{
    CollectSink, CompactIntervalDist, IntervalExtractor, IntervalKind,
};
use cache_leakage_limits::trace::{Cycle, LineAddr};
use proptest::prelude::*;

/// Random (line, gap) access sequences over a small cache.
fn arb_accesses() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..64, 1u64..500), 0..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Per-frame interval lengths tile the trace exactly: the coverage
    /// invariant that makes energy accounting exhaustive and
    /// non-overlapping.
    #[test]
    fn interval_lengths_tile_the_timeline(accesses in arb_accesses()) {
        let mut cache = Cache::new(CacheConfig::new("t", 16 * 64, 2, 64, 1).unwrap());
        let mut extractor = IntervalExtractor::new(cache.config().num_frames());
        let mut sink = CollectSink::new();
        let mut cycle = 0u64;
        for (line, gap) in &accesses {
            cycle += gap;
            let result = cache.access(LineAddr::new(*line));
            extractor.on_access(result.frame, Cycle::new(cycle), result.hit, &mut sink);
        }
        let end = cycle + 1;
        extractor.finish(Cycle::new(end), &mut sink);

        let intervals = sink.into_intervals();
        let frames = cache.config().num_frames();
        // Exactly one leading-or-untouched and one trailing-or-untouched
        // interval per frame; untouched counts as both.
        for frame in 0..frames {
            let per_frame: Vec<_> = intervals
                .iter()
                .filter(|i| i.frame.index() == frame)
                .collect();
            let sum: u64 = per_frame.iter().map(|i| i.length).sum();
            prop_assert_eq!(sum, end, "frame {} must cover the timeline", frame);
            let untouched = per_frame
                .iter()
                .filter(|i| i.kind == IntervalKind::Untouched)
                .count();
            let leading = per_frame
                .iter()
                .filter(|i| i.kind == IntervalKind::Leading)
                .count();
            let trailing = per_frame
                .iter()
                .filter(|i| i.kind == IntervalKind::Trailing)
                .count();
            prop_assert!(untouched == 1 && leading == 0 && trailing == 0
                || untouched == 0 && leading == 1 && trailing == 1);
        }
    }

    /// The compact distribution agrees with the raw interval list on
    /// every aggregate.
    #[test]
    fn compact_dist_is_a_faithful_summary(accesses in arb_accesses()) {
        let mut cache = Cache::new(CacheConfig::new("t", 16 * 64, 2, 64, 1).unwrap());
        let mut extractor = IntervalExtractor::new(cache.config().num_frames());
        let mut collect = CollectSink::new();
        let mut dist = CompactIntervalDist::new();
        let mut cycle = 0u64;
        {
            let mut both = (&mut collect, &mut dist);
            for (line, gap) in &accesses {
                cycle += gap;
                let result = cache.access(LineAddr::new(*line));
                extractor.on_access(result.frame, Cycle::new(cycle), result.hit, &mut both);
            }
            extractor.finish(Cycle::new(cycle + 1), &mut both);
        }
        let intervals = collect.into_intervals();
        prop_assert_eq!(dist.total_intervals(), intervals.len() as u64);
        prop_assert_eq!(
            dist.total_cycles(),
            intervals.iter().map(|i| i.length).sum::<u64>()
        );
        let dead = intervals
            .iter()
            .filter(|i| i.kind == IntervalKind::Interior { reaccess: false })
            .count() as u64;
        prop_assert_eq!(
            dist.count_matching(|c| c.kind == IntervalKind::Interior { reaccess: false }),
            dead
        );
    }

    /// Hits close live intervals, fills close dead ones: the extractor's
    /// classification matches the cache's ground truth.
    #[test]
    fn liveness_matches_cache_outcomes(accesses in arb_accesses()) {
        let mut cache = Cache::new(CacheConfig::new("t", 8 * 64, 1, 64, 1).unwrap());
        let mut extractor = IntervalExtractor::new(cache.config().num_frames());
        let mut sink = CollectSink::new();
        let mut cycle = 0u64;
        let mut hits = 0u64;
        let mut touched_frames = std::collections::HashSet::new();
        let mut refills = 0u64;
        for (line, gap) in &accesses {
            cycle += gap;
            let result = cache.access(LineAddr::new(*line));
            if result.hit {
                hits += 1;
            } else if !touched_frames.insert(result.frame) {
                refills += 1;
            }
            extractor.on_access(result.frame, Cycle::new(cycle), result.hit, &mut sink);
        }
        extractor.finish(Cycle::new(cycle + 1), &mut sink);
        let intervals = sink.into_intervals();
        let live = intervals
            .iter()
            .filter(|i| i.kind == IntervalKind::Interior { reaccess: true })
            .count() as u64;
        let dead = intervals
            .iter()
            .filter(|i| i.kind == IntervalKind::Interior { reaccess: false })
            .count() as u64;
        prop_assert_eq!(live, hits, "every hit closes a live interval");
        prop_assert_eq!(dead, refills, "every refill of a touched frame closes a dead interval");
    }
}
