//! End-to-end tests of the analysis service over real sockets: served
//! artifacts byte-identical to the batch pipeline, admission-control
//! backpressure, panic isolation, graceful drain, and a short
//! closed-loop load run.
//!
//! The fault plane is process-global, so tests that arm it serialize
//! on [`FaultScope`] and pick sites (`server/handler/healthz`,
//! `server/handler/profile`, `server/handler/figure`) that no other
//! test in this binary touches concurrently.

use cache_leakage_limits::experiments::query;
use cache_leakage_limits::experiments::{ProfileStore, Table};
use cache_leakage_limits::faults::{set_plane, Plane};
use cache_leakage_limits::server::{fetch, loadgen, LoadgenConfig, Server, ServerConfig};
use cache_leakage_limits::telemetry::json::{self, Json};
use cache_leakage_limits::workloads::Scale;
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

fn test_config() -> ServerConfig {
    ServerConfig {
        default_scale: Scale::Test,
        ..ServerConfig::default()
    }
}

/// Serializes tests that arm the process-global fault plane and
/// guarantees an empty plane on drop.
struct FaultScope {
    _serial: MutexGuard<'static, ()>,
}

impl FaultScope {
    fn new(spec: &str) -> Self {
        static LOCK: Mutex<()> = Mutex::new(());
        let scope = FaultScope {
            _serial: LOCK.lock().unwrap_or_else(PoisonError::into_inner),
        };
        set_plane(Plane::parse(spec).expect("test spec parses"));
        scope
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        set_plane(Plane::empty());
    }
}

/// The headline conformance scenario: Table 2 served over HTTP is
/// byte-identical in values to the batch pipeline's generator — same
/// cells, same characters — in both JSON and CSV renderings.
#[test]
fn served_table2_is_byte_identical_to_batch_pipeline() {
    let server = Server::start(test_config()).expect("server starts");
    let addr = server.addr();

    let batch = query::table(ProfileStore::global(), 2, Scale::Test).expect("batch Table 2");

    let json_response = fetch(addr, "GET", "/v1/table/2?scale=test", None, CLIENT_TIMEOUT)
        .expect("served Table 2 JSON");
    assert_eq!(json_response.status, 200);
    let served = Table::from_json(&json_response.text()).expect("served document parses");
    assert_eq!(served, batch, "served cells must match the batch pipeline exactly");
    assert_eq!(json_response.text(), batch.to_json(), "canonical JSON, byte for byte");

    let csv_response = fetch(
        addr,
        "GET",
        "/v1/table/2?scale=test&format=csv",
        None,
        CLIENT_TIMEOUT,
    )
    .expect("served Table 2 CSV");
    assert_eq!(csv_response.status, 200);
    assert_eq!(csv_response.text(), batch.to_csv(), "CSV byte-identical too");

    // Repeat query is served from the LRU cache with identical bytes.
    let again = fetch(addr, "GET", "/v1/table/2?scale=test", None, CLIENT_TIMEOUT).unwrap();
    assert_eq!(again.text(), json_response.text());

    server.shutdown();
}

/// A sweep batch over HTTP evaluates exactly the generalized-model
/// points the in-process query API produces.
#[test]
fn served_sweep_matches_query_api() {
    let server = Server::start(test_config()).expect("server starts");
    let body = br#"{"scale": "test", "points": [
        {"benchmark": "ammp", "side": "dcache", "node": "100nm"},
        {"benchmark": "vortex", "side": "icache", "node": "70nm"}
    ]}"#;
    let response = fetch(server.addr(), "POST", "/v1/sweep", Some(body), CLIENT_TIMEOUT)
        .expect("sweep response");
    assert_eq!(response.status, 200, "{}", response.text());
    let doc = json::parse(&response.text()).expect("sweep JSON parses");
    let results = doc.get("results").and_then(Json::as_array).expect("results array");
    assert_eq!(results.len(), 2);

    let expected = query::sweep_point(
        ProfileStore::global(),
        Scale::Test,
        &query::SweepPoint {
            benchmark: "ammp".to_string(),
            side: cache_leakage_limits::cachesim::Level1::Data,
            node: cache_leakage_limits::energy::TechnologyNode::N100,
        },
    )
    .expect("in-process sweep point");
    let served_drowsy = results[0]
        .get("opt_drowsy")
        .and_then(Json::as_f64)
        .expect("opt_drowsy");
    assert!(
        (served_drowsy - expected.opt_drowsy).abs() < 1e-9,
        "served {served_drowsy} vs batch {}",
        expected.opt_drowsy
    );
    server.shutdown();
}

/// Saturating the admission queue sheds load with 503 + `Retry-After`
/// while admitted requests still complete — and while saturated, the
/// admission-exempt observability plane (`/healthz`, `/debug/*`)
/// still answers 200 from the transport thread.
#[test]
fn saturated_admission_queue_sheds_with_retry_after() {
    // The profile route: sheddable (not exempt), and not in the
    // pre-serialized catalog space, so every first touch dispatches.
    let _faults = FaultScope::new("server/handler/profile=latency:400");
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        retry_after_secs: 7,
        ..test_config()
    })
    .expect("server starts");
    let addr = server.addr();

    let clients: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                fetch(addr, "GET", "/v1/profile/gzip?scale=test", None, CLIENT_TIMEOUT)
            })
        })
        .collect();
    // While the pool is saturated, health checks are answered inline
    // by the transport instead of being shed.
    std::thread::sleep(Duration::from_millis(100));
    let health = fetch(addr, "GET", "/healthz", None, CLIENT_TIMEOUT)
        .expect("healthz answers during overload");
    assert_eq!(health.status, 200, "observability plane is admission-exempt");
    let responses: Vec<_> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread").expect("response delivered"))
        .collect();

    let ok = responses.iter().filter(|r| r.status == 200).count();
    let shed: Vec<_> = responses.iter().filter(|r| r.status == 503).collect();
    assert!(ok >= 1, "admitted requests are served through the latency");
    assert!(
        !shed.is_empty(),
        "one worker + depth-1 queue cannot admit 8 concurrent requests"
    );
    for response in &shed {
        assert_eq!(
            response.header("retry-after"),
            Some("7"),
            "shed responses carry the configured Retry-After"
        );
    }
    // Shed requests are retained by the flight recorder's error
    // reservoir even though they never reached a worker.
    let slow = fetch(addr, "GET", "/debug/slow", None, CLIENT_TIMEOUT).expect("/debug/slow");
    assert_eq!(slow.status, 200);
    let doc = json::parse(&slow.text()).expect("slow JSON parses");
    let errors = doc.get("errors").and_then(Json::as_array).expect("errors array");
    assert!(
        errors.iter().any(|e| {
            e.get("shed") == Some(&Json::Bool(true))
                && e.get("status").and_then(Json::as_f64) == Some(503.0)
        }),
        "shed requests appear in the error reservoir: {}",
        slow.text()
    );
    server.shutdown();
}

/// An armed handler panic answers 500 for that request and the same
/// pool keeps serving afterwards — no worker dies.
#[test]
fn handler_panic_is_isolated_from_the_pool() {
    let _faults = FaultScope::new("server/handler/figure=panic#1");
    let server = Server::start(ServerConfig {
        workers: 2,
        ..test_config()
    })
    .expect("server starts");
    let addr = server.addr();

    let poisoned = fetch(addr, "GET", "/v1/figure/7?scale=test", None, CLIENT_TIMEOUT)
        .expect("a response despite the panic");
    assert_eq!(poisoned.status, 500);
    assert!(poisoned.text().contains("panicked"), "{}", poisoned.text());

    // The pool survived: both a trivial and a simulation-backed route
    // still answer (more requests than workers, to prove none died).
    for _ in 0..4 {
        let health = fetch(addr, "GET", "/healthz", None, CLIENT_TIMEOUT).unwrap();
        assert_eq!(health.status, 200);
    }
    let table = fetch(addr, "GET", "/v1/table/1", None, CLIENT_TIMEOUT).unwrap();
    assert_eq!(table.status, 200);
    server.shutdown();
}

/// Graceful shutdown drains: a request already admitted (and sleeping
/// inside its handler) completes with 200 while the server shuts
/// down, and only then does the listener disappear.
#[test]
fn graceful_shutdown_drains_inflight_request() {
    let _faults = FaultScope::new("server/handler/healthz=latency:600");
    let server = Server::start(ServerConfig {
        workers: 1,
        ..test_config()
    })
    .expect("server starts");
    let addr = server.addr();

    let inflight =
        std::thread::spawn(move || fetch(addr, "GET", "/healthz", None, CLIENT_TIMEOUT));
    // Let the request reach the worker (it then sleeps 600ms in the
    // armed latency site) before initiating shutdown.
    std::thread::sleep(Duration::from_millis(200));
    server.shutdown();

    let response = inflight
        .join()
        .expect("client thread")
        .expect("in-flight request survives the shutdown");
    assert_eq!(response.status, 200, "drained, not dropped");

    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "after the drain the listener is gone"
    );
}

/// A short closed-loop load run against the cached-table path: every
/// response healthy, percentiles ordered, throughput positive. (CI
/// runs the release-build smoke with the ≥100 req/s floor.)
#[test]
fn loadgen_smoke_reports_healthy_percentiles() {
    let server = Server::start(test_config()).expect("server starts");
    // Warm the memoized profile suite so the loop measures serving,
    // not first-touch simulation.
    let warm = fetch(server.addr(), "GET", "/v1/table/2?scale=test", None, CLIENT_TIMEOUT)
        .expect("warm-up fetch");
    assert_eq!(warm.status, 200);

    let report = loadgen::run(&LoadgenConfig {
        addr: server.addr(),
        connections: 2,
        duration: Duration::from_secs(1),
        mix: vec![("/v1/table/2?scale=test".to_string(), 1)],
        timeout: CLIENT_TIMEOUT,
        ..LoadgenConfig::default()
    })
    .expect("load run completes");

    assert!(report.requests > 0, "closed loop made progress");
    assert_eq!(report.status_5xx, 0, "no server errors on the cached path");
    assert_eq!(report.transport_errors, 0);
    assert_eq!(report.requests, report.status_2xx);
    assert!(report.p50_us <= report.p95_us && report.p95_us <= report.p99_us);
    assert!(report.throughput_rps > 0.0);
    assert!(
        !report.server_stages.is_empty(),
        "Server-Timing headers were parsed into a stage breakdown"
    );
    let handler = report
        .server_stages
        .iter()
        .find(|s| s.stage == "handler")
        .expect("handler stage reported");
    assert!(handler.count > 0);
    let doc = json::parse(&report.to_json()).expect("report JSON parses");
    assert!(doc.get("p99_us").and_then(Json::as_f64).is_some());
    assert!(
        doc.get("server_stages")
            .and_then(|v| v.get("handler"))
            .is_some(),
        "stage breakdown serializes: {}",
        report.to_json()
    );
    server.shutdown();
}

/// `/healthz` reports live server facts as JSON while staying a plain
/// 200-on-alive check.
#[test]
fn healthz_reports_server_facts() {
    let server = Server::start(ServerConfig {
        workers: 3,
        ..test_config()
    })
    .expect("server starts");
    let health = fetch(server.addr(), "GET", "/healthz", None, CLIENT_TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200);
    let doc = json::parse(&health.text()).expect("healthz JSON parses");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    let transport = doc.get("transport").and_then(Json::as_str).expect("transport");
    assert!(transport == "reactor" || transport == "threaded", "{transport}");
    assert_eq!(doc.get("workers").and_then(Json::as_f64), Some(3.0));
    assert!(doc.get("uptime_s").and_then(Json::as_f64).is_some());
    assert!(doc.get("queue_depth").and_then(Json::as_f64).is_some());
    assert!(
        doc.get("recorder_capacity").and_then(Json::as_f64).unwrap_or(0.0) > 0.0,
        "recorder on by default"
    );
    server.shutdown();
}

/// The full request-tracing loop: a client-chosen `X-Request-Id` is
/// echoed back with a `Server-Timing` stage breakdown, and the same
/// id is retrievable from `/debug/requests` with self-consistent
/// per-stage micros (each stage ≤ total; the stages sum to ≤ total;
/// permit + store fit inside the handler stage).
#[test]
fn request_trace_flows_to_flight_recorder() {
    use std::io::{Read, Write};

    let server = Server::start(test_config()).expect("server starts");
    let addr = server.addr();

    // Raw socket: `fetch` does not send custom headers.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(CLIENT_TIMEOUT)).unwrap();
    stream
        .write_all(
            b"GET /v1/profile/gzip?scale=test HTTP/1.1\r\nHost: t\r\n\
              X-Request-Id: 424242\r\nConnection: close\r\n\r\n",
        )
        .expect("request written");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response read");
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    assert!(
        raw.contains("X-Request-Id: 424242"),
        "trace id echoes back: {raw}"
    );
    assert!(
        raw.contains("Server-Timing: parse;dur=")
            && raw.contains("queue;dur=")
            && raw.contains("handler;dur=")
            && raw.contains("write;dur="),
        "stage attribution header present: {raw}"
    );

    // The record is published right after the response flush; retry
    // briefly to absorb that scheduling gap.
    let mut found = None;
    for _ in 0..50 {
        let debug = fetch(addr, "GET", "/debug/requests?n=256", None, CLIENT_TIMEOUT)
            .expect("/debug/requests");
        assert_eq!(debug.status, 200);
        let doc = json::parse(&debug.text()).expect("debug JSON parses");
        let records = doc.get("records").and_then(Json::as_array).expect("records");
        if let Some(rec) = records
            .iter()
            .find(|r| r.get("trace_id").and_then(Json::as_str) == Some("424242"))
        {
            found = Some(rec.clone());
            break;
        }
        std::thread::sleep(Duration::from_millis(40));
    }
    let rec = found.expect("traced request appears in /debug/requests");

    let field = |name: &str| {
        rec.get(name)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("record field {name}: {rec:?}"))
    };
    assert_eq!(field("status"), 200.0);
    assert_eq!(rec.get("route").and_then(Json::as_str), Some("profile"));
    let total = field("total_us");
    assert!(total > 0.0, "non-zero total latency");
    let stages = [
        "parse_us", "queue_us", "permit_us", "handler_us", "store_us", "serialize_us",
        "write_us",
    ];
    for stage in stages {
        assert!(
            field(stage) <= total,
            "{stage} {} exceeds total {total}",
            field(stage)
        );
    }
    // Disjoint wall-time stages sum to at most the total.
    let disjoint = field("parse_us")
        + field("queue_us")
        + field("handler_us")
        + field("serialize_us")
        + field("write_us");
    assert!(
        disjoint <= total,
        "disjoint stages ({disjoint}) must fit in the total ({total})"
    );
    // Permit wait and store time happen inside the handler stage.
    assert!(field("permit_us") + field("store_us") <= field("handler_us") + 1.0);

    // The rolling stats window aggregates the traffic per route.
    let stats = fetch(addr, "GET", "/debug/stats", None, CLIENT_TIMEOUT).expect("/debug/stats");
    assert_eq!(stats.status, 200);
    let doc = json::parse(&stats.text()).expect("stats JSON parses");
    let routes = doc.get("routes").and_then(Json::as_array).expect("routes");
    assert!(
        routes
            .iter()
            .any(|r| r.get("route").and_then(Json::as_str) == Some("profile")),
        "profile traffic shows in the 10s window: {}",
        stats.text()
    );
    server.shutdown();
}

/// `--no-recorder` (`recorder: false`) disables the tracing plane:
/// requests still serve, `/debug/*` answers 503, and responses carry
/// no tracing headers.
#[test]
fn disabled_recorder_serves_without_tracing() {
    let server = Server::start(ServerConfig {
        recorder: false,
        ..test_config()
    })
    .expect("server starts");
    let addr = server.addr();
    let ok = fetch(addr, "GET", "/v1/table/1?scale=test", None, CLIENT_TIMEOUT).unwrap();
    assert_eq!(ok.status, 200);
    assert_eq!(ok.header("server-timing"), None, "no per-request tracing");
    assert_eq!(ok.header("x-request-id"), None);
    let debug = fetch(addr, "GET", "/debug/requests", None, CLIENT_TIMEOUT).unwrap();
    assert_eq!(debug.status, 503, "debug plane reports the disabled recorder");
    server.shutdown();
}
