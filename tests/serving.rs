//! End-to-end tests of the analysis service over real sockets: served
//! artifacts byte-identical to the batch pipeline, admission-control
//! backpressure, panic isolation, graceful drain, and a short
//! closed-loop load run.
//!
//! The fault plane is process-global, so tests that arm it serialize
//! on [`FaultScope`] and pick sites (`server/handler/healthz`,
//! `server/handler/figure`) that no other test in this binary touches
//! concurrently.

use cache_leakage_limits::experiments::query;
use cache_leakage_limits::experiments::{ProfileStore, Table};
use cache_leakage_limits::faults::{set_plane, Plane};
use cache_leakage_limits::server::{fetch, loadgen, LoadgenConfig, Server, ServerConfig};
use cache_leakage_limits::telemetry::json::{self, Json};
use cache_leakage_limits::workloads::Scale;
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

fn test_config() -> ServerConfig {
    ServerConfig {
        default_scale: Scale::Test,
        ..ServerConfig::default()
    }
}

/// Serializes tests that arm the process-global fault plane and
/// guarantees an empty plane on drop.
struct FaultScope {
    _serial: MutexGuard<'static, ()>,
}

impl FaultScope {
    fn new(spec: &str) -> Self {
        static LOCK: Mutex<()> = Mutex::new(());
        let scope = FaultScope {
            _serial: LOCK.lock().unwrap_or_else(PoisonError::into_inner),
        };
        set_plane(Plane::parse(spec).expect("test spec parses"));
        scope
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        set_plane(Plane::empty());
    }
}

/// The headline conformance scenario: Table 2 served over HTTP is
/// byte-identical in values to the batch pipeline's generator — same
/// cells, same characters — in both JSON and CSV renderings.
#[test]
fn served_table2_is_byte_identical_to_batch_pipeline() {
    let server = Server::start(test_config()).expect("server starts");
    let addr = server.addr();

    let batch = query::table(ProfileStore::global(), 2, Scale::Test).expect("batch Table 2");

    let json_response = fetch(addr, "GET", "/v1/table/2?scale=test", None, CLIENT_TIMEOUT)
        .expect("served Table 2 JSON");
    assert_eq!(json_response.status, 200);
    let served = Table::from_json(&json_response.text()).expect("served document parses");
    assert_eq!(served, batch, "served cells must match the batch pipeline exactly");
    assert_eq!(json_response.text(), batch.to_json(), "canonical JSON, byte for byte");

    let csv_response = fetch(
        addr,
        "GET",
        "/v1/table/2?scale=test&format=csv",
        None,
        CLIENT_TIMEOUT,
    )
    .expect("served Table 2 CSV");
    assert_eq!(csv_response.status, 200);
    assert_eq!(csv_response.text(), batch.to_csv(), "CSV byte-identical too");

    // Repeat query is served from the LRU cache with identical bytes.
    let again = fetch(addr, "GET", "/v1/table/2?scale=test", None, CLIENT_TIMEOUT).unwrap();
    assert_eq!(again.text(), json_response.text());

    server.shutdown();
}

/// A sweep batch over HTTP evaluates exactly the generalized-model
/// points the in-process query API produces.
#[test]
fn served_sweep_matches_query_api() {
    let server = Server::start(test_config()).expect("server starts");
    let body = br#"{"scale": "test", "points": [
        {"benchmark": "ammp", "side": "dcache", "node": "100nm"},
        {"benchmark": "vortex", "side": "icache", "node": "70nm"}
    ]}"#;
    let response = fetch(server.addr(), "POST", "/v1/sweep", Some(body), CLIENT_TIMEOUT)
        .expect("sweep response");
    assert_eq!(response.status, 200, "{}", response.text());
    let doc = json::parse(&response.text()).expect("sweep JSON parses");
    let results = doc.get("results").and_then(Json::as_array).expect("results array");
    assert_eq!(results.len(), 2);

    let expected = query::sweep_point(
        ProfileStore::global(),
        Scale::Test,
        &query::SweepPoint {
            benchmark: "ammp".to_string(),
            side: cache_leakage_limits::cachesim::Level1::Data,
            node: cache_leakage_limits::energy::TechnologyNode::N100,
        },
    )
    .expect("in-process sweep point");
    let served_drowsy = results[0]
        .get("opt_drowsy")
        .and_then(Json::as_f64)
        .expect("opt_drowsy");
    assert!(
        (served_drowsy - expected.opt_drowsy).abs() < 1e-9,
        "served {served_drowsy} vs batch {}",
        expected.opt_drowsy
    );
    server.shutdown();
}

/// Saturating the admission queue sheds load with 503 + `Retry-After`
/// while admitted requests still complete.
#[test]
fn saturated_admission_queue_sheds_with_retry_after() {
    let _faults = FaultScope::new("server/handler/healthz=latency:400");
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        retry_after_secs: 7,
        ..test_config()
    })
    .expect("server starts");
    let addr = server.addr();

    let clients: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || fetch(addr, "GET", "/healthz", None, CLIENT_TIMEOUT))
        })
        .collect();
    let responses: Vec<_> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread").expect("response delivered"))
        .collect();

    let ok = responses.iter().filter(|r| r.status == 200).count();
    let shed: Vec<_> = responses.iter().filter(|r| r.status == 503).collect();
    assert!(ok >= 1, "admitted requests are served through the latency");
    assert!(
        !shed.is_empty(),
        "one worker + depth-1 queue cannot admit 8 concurrent requests"
    );
    for response in &shed {
        assert_eq!(
            response.header("retry-after"),
            Some("7"),
            "shed responses carry the configured Retry-After"
        );
    }
    server.shutdown();
}

/// An armed handler panic answers 500 for that request and the same
/// pool keeps serving afterwards — no worker dies.
#[test]
fn handler_panic_is_isolated_from_the_pool() {
    let _faults = FaultScope::new("server/handler/figure=panic#1");
    let server = Server::start(ServerConfig {
        workers: 2,
        ..test_config()
    })
    .expect("server starts");
    let addr = server.addr();

    let poisoned = fetch(addr, "GET", "/v1/figure/7?scale=test", None, CLIENT_TIMEOUT)
        .expect("a response despite the panic");
    assert_eq!(poisoned.status, 500);
    assert!(poisoned.text().contains("panicked"), "{}", poisoned.text());

    // The pool survived: both a trivial and a simulation-backed route
    // still answer (more requests than workers, to prove none died).
    for _ in 0..4 {
        let health = fetch(addr, "GET", "/healthz", None, CLIENT_TIMEOUT).unwrap();
        assert_eq!(health.status, 200);
    }
    let table = fetch(addr, "GET", "/v1/table/1", None, CLIENT_TIMEOUT).unwrap();
    assert_eq!(table.status, 200);
    server.shutdown();
}

/// Graceful shutdown drains: a request already admitted (and sleeping
/// inside its handler) completes with 200 while the server shuts
/// down, and only then does the listener disappear.
#[test]
fn graceful_shutdown_drains_inflight_request() {
    let _faults = FaultScope::new("server/handler/healthz=latency:600");
    let server = Server::start(ServerConfig {
        workers: 1,
        ..test_config()
    })
    .expect("server starts");
    let addr = server.addr();

    let inflight =
        std::thread::spawn(move || fetch(addr, "GET", "/healthz", None, CLIENT_TIMEOUT));
    // Let the request reach the worker (it then sleeps 600ms in the
    // armed latency site) before initiating shutdown.
    std::thread::sleep(Duration::from_millis(200));
    server.shutdown();

    let response = inflight
        .join()
        .expect("client thread")
        .expect("in-flight request survives the shutdown");
    assert_eq!(response.status, 200, "drained, not dropped");

    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "after the drain the listener is gone"
    );
}

/// A short closed-loop load run against the cached-table path: every
/// response healthy, percentiles ordered, throughput positive. (CI
/// runs the release-build smoke with the ≥100 req/s floor.)
#[test]
fn loadgen_smoke_reports_healthy_percentiles() {
    let server = Server::start(test_config()).expect("server starts");
    // Warm the memoized profile suite so the loop measures serving,
    // not first-touch simulation.
    let warm = fetch(server.addr(), "GET", "/v1/table/2?scale=test", None, CLIENT_TIMEOUT)
        .expect("warm-up fetch");
    assert_eq!(warm.status, 200);

    let report = loadgen::run(&LoadgenConfig {
        addr: server.addr(),
        connections: 2,
        duration: Duration::from_secs(1),
        mix: vec![("/v1/table/2?scale=test".to_string(), 1)],
        timeout: CLIENT_TIMEOUT,
        ..LoadgenConfig::default()
    })
    .expect("load run completes");

    assert!(report.requests > 0, "closed loop made progress");
    assert_eq!(report.status_5xx, 0, "no server errors on the cached path");
    assert_eq!(report.transport_errors, 0);
    assert_eq!(report.requests, report.status_2xx);
    assert!(report.p50_us <= report.p95_us && report.p95_us <= report.p99_us);
    assert!(report.throughput_rps > 0.0);
    let doc = json::parse(&report.to_json()).expect("report JSON parses");
    assert!(doc.get("p99_us").and_then(Json::as_f64).is_some());
    server.shutdown();
}
