//! Integration tests of the generalized model (Fig. 6) across crates.

use cache_leakage_limits::core::{
    CircuitParams, GeneralizedModel, ModePowers, ModeTimings, PowerMode, RefetchAccounting,
};
use cache_leakage_limits::energy::TechnologyNode;
use cache_leakage_limits::experiments::profile_benchmark;
use cache_leakage_limits::intervals::{CompactIntervalDist, IntervalClass, IntervalKind, WakeHints};
use cache_leakage_limits::workloads::{mesa, Scale};

fn class(length: u64) -> IntervalClass {
    IntervalClass {
        length,
        kind: IntervalKind::Interior { reaccess: true },
        wake: WakeHints::NONE,
        dirty: false,
    }
}

#[test]
fn model_runs_on_real_profiles() {
    let profile = profile_benchmark(&mut mesa(Scale::Test));
    for node in TechnologyNode::ALL {
        let model = GeneralizedModel::from_params(CircuitParams::for_node(node));
        for dist in [&profile.icache.dist, &profile.dcache.dist] {
            let savings = model.optimal_savings(dist);
            assert!(savings.opt_hybrid + 1e-9 >= savings.opt_drowsy, "{node}");
            assert!(savings.opt_hybrid + 1e-9 >= savings.opt_sleep, "{node}");
            assert!(savings.opt_hybrid <= 100.0);
            assert!(savings.opt_drowsy >= 0.0);
        }
    }
}

#[test]
fn fig6_edge_energies_scale_with_voltage_swing() {
    for node in TechnologyNode::ALL {
        let model = GeneralizedModel::from_params(CircuitParams::for_node(node));
        use PowerMode::*;
        // Deeper transitions swing more voltage over more cycles.
        assert!(model.transition_energy(Active, Sleep) > model.transition_energy(Active, Drowsy));
        // Waking from sleep pays the refetch wait at full power.
        assert!(model.transition_energy(Sleep, Active) > model.transition_energy(Drowsy, Active));
        // Self-loops are free; cross-technique edges do not exist.
        assert_eq!(model.transition_energy(Drowsy, Drowsy), 0.0);
        assert!(model.try_transition_energy(Drowsy, Sleep).is_none());
        assert!(model.refetch_energy() > 0.0);
    }
}

#[test]
fn custom_technology_point_behaves_sanely() {
    // A made-up future node: very leaky, very cheap refetch.
    let params = CircuitParams::builder()
        .powers(ModePowers::from_ratios(0.5, 0.25, 0.002))
        .timings(ModeTimings::with_l2_latency(5))
        .refetch_energy(2.0)
        .build();
    let model = GeneralizedModel::from_params(params);
    let b = model.inflection_points().drowsy_sleep;
    assert!(b < 1057, "cheap refetch + heavy leakage pulls b below 70nm's");

    // With everything long-interval, sleep approaches 1 - sleep_ratio.
    let mut dist = CompactIntervalDist::new();
    dist.add(class(10_000_000), 8);
    let savings = model.optimal_savings(&dist);
    assert!(savings.opt_sleep > 99.0);
    assert!((savings.opt_drowsy - 75.0).abs() < 1.0, "1 - 0.25 = 75%");
}

#[test]
fn accounting_mode_is_selectable() {
    let mut dist = CompactIntervalDist::new();
    dist.add(
        IntervalClass {
            length: 50_000,
            kind: IntervalKind::Interior { reaccess: false }, // dead
            wake: WakeHints::NONE,
            dirty: false,
        },
        1000,
    );
    let params = CircuitParams::for_node(TechnologyNode::N70);
    let strict = GeneralizedModel::with_accounting(params.clone(), RefetchAccounting::PaperStrict);
    let aware = GeneralizedModel::with_accounting(params, RefetchAccounting::DeadAware);
    // Dead intervals slept without refetch save strictly more.
    assert!(
        aware.optimal_savings(&dist).opt_sleep > strict.optimal_savings(&dist).opt_sleep
    );
}

#[test]
fn empty_distribution_yields_zero_savings() {
    let model = GeneralizedModel::from_params(CircuitParams::for_node(TechnologyNode::N70));
    let savings = model.optimal_savings(&CompactIntervalDist::new());
    assert_eq!(savings.opt_drowsy, 0.0);
    assert_eq!(savings.opt_sleep, 0.0);
    assert_eq!(savings.opt_hybrid, 0.0);
}
