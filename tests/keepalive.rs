//! Keep-alive protocol edge cases over real sockets: pipelined
//! bursts, half-closed peers, idle timeouts, oversized requests,
//! per-connection request budgets, and panic isolation on a
//! persistent connection.
//!
//! These run against whatever transport is the platform default (the
//! epoll reactor on Linux, the threaded fallback elsewhere) — the
//! protocol contract is transport-independent.

use cache_leakage_limits::faults::{set_plane, Plane};
use cache_leakage_limits::server::http::Client;
use cache_leakage_limits::server::{Server, ServerConfig};
use cache_leakage_limits::workloads::Scale;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

fn start(config: ServerConfig) -> Server {
    Server::start(ServerConfig {
        default_scale: Scale::Test,
        ..config
    })
    .expect("server starts")
}

/// Serializes tests that arm the process-global fault plane.
struct FaultScope {
    _serial: MutexGuard<'static, ()>,
}

impl FaultScope {
    fn new(spec: &str) -> Self {
        static LOCK: Mutex<()> = Mutex::new(());
        let scope = FaultScope {
            _serial: LOCK.lock().unwrap_or_else(PoisonError::into_inner),
        };
        set_plane(Plane::parse(spec).expect("test spec parses"));
        scope
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        set_plane(Plane::empty());
    }
}

/// A pipelined burst of 8 requests on one connection comes back as 8
/// in-order responses on that same connection.
#[test]
fn pipelined_burst_answers_in_order_on_one_connection() {
    let server = start(ServerConfig::default());
    let mut client = Client::connect(server.addr(), CLIENT_TIMEOUT).expect("connect");

    let targets: Vec<&str> = (0..8)
        .map(|i| {
            if i % 2 == 0 {
                "/healthz"
            } else {
                "/v1/table/2?scale=test"
            }
        })
        .collect();
    client.send_pipelined(&targets).expect("one batched write");

    let mut bodies = Vec::new();
    for i in 0..8 {
        let response = client.recv().unwrap_or_else(|e| panic!("response {i}: {e}"));
        assert_eq!(response.status, 200, "response {i}");
        assert_ne!(
            response.header("connection"),
            Some("close"),
            "mid-burst responses keep the connection alive"
        );
        bodies.push(response.text());
    }
    // In-order: even slots are healthz JSON, odd slots are Table 2 —
    // and each kind is byte-identical across the burst.
    for (i, body) in bodies.iter().enumerate() {
        if i % 2 == 0 {
            assert!(body.contains("\"status\""), "slot {i} is healthz: {body}");
        } else {
            assert_eq!(body, &bodies[1], "slot {i} is the same Table 2 bytes");
        }
    }
    server.shutdown();
}

/// A peer that half-closes (FIN on the write side) after sending a
/// complete request still receives its response; the server treats
/// EOF-with-a-buffered-request as "answer, then close".
#[test]
fn half_closed_peer_still_gets_its_response() {
    let server = start(ServerConfig::default());
    let mut stream =
        TcpStream::connect_timeout(&server.addr(), CLIENT_TIMEOUT).expect("connect");
    stream.set_read_timeout(Some(CLIENT_TIMEOUT)).unwrap();

    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send request");
    stream.shutdown(Shutdown::Write).expect("half-close");

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 200"), "got: {text}");
    assert!(
        text.to_ascii_lowercase().contains("connection: close"),
        "response to a half-closed peer must announce close: {text}"
    );
    server.shutdown();
}

/// An idle keep-alive connection is closed by the server once the
/// idle timeout elapses — without disturbing a busy one.
#[test]
fn idle_connection_is_closed_after_timeout() {
    let server = start(ServerConfig {
        idle_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let mut idle = Client::connect(server.addr(), CLIENT_TIMEOUT).expect("connect idle");
    // Prove the connection works, then go quiet.
    let first = idle.roundtrip("GET", "/healthz", None).expect("first request");
    assert_eq!(first.status, 200);

    let mut probe = [0u8; 1];
    idle.stream()
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut stream = idle.stream().try_clone().expect("clone for read");
    match stream.read(&mut probe) {
        Ok(0) => {} // clean FIN from the server's idle sweep
        Ok(n) => panic!("unexpected {n} bytes on an idle connection"),
        Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
            panic!("server never closed the idle connection")
        }
        Err(e) => panic!("unexpected error: {e}"),
    }
    server.shutdown();
}

/// An oversized request (header block beyond the 16 KiB cap) is
/// answered 431 and that connection closes — but the server (and new
/// connections) keep working.
#[test]
fn oversized_request_gets_431_and_server_survives() {
    let server = start(ServerConfig::default());
    let mut stream =
        TcpStream::connect_timeout(&server.addr(), CLIENT_TIMEOUT).expect("connect");
    stream.set_read_timeout(Some(CLIENT_TIMEOUT)).unwrap();

    // 20 KiB of header bytes with no terminator: parseable prefix,
    // oversized before a complete head ever arrives.
    let mut junk = b"GET /healthz HTTP/1.1\r\nX-Pad: ".to_vec();
    junk.resize(20 * 1024, b'a');
    // The server may 431 + RST before we finish writing; a send error
    // here is acceptable, the response check below is what matters.
    let _ = stream.write_all(&junk);

    let mut raw = Vec::new();
    let _ = stream.read_to_end(&mut raw);
    let text = String::from_utf8_lossy(&raw);
    assert!(
        text.starts_with("HTTP/1.1 431"),
        "oversized request answers 431: {text}"
    );

    // The connection loop survived the bad client: a fresh connection
    // serves normally.
    let mut next = Client::connect(server.addr(), CLIENT_TIMEOUT).expect("reconnect");
    let response = next.roundtrip("GET", "/healthz", None).expect("healthy request");
    assert_eq!(response.status, 200);
    server.shutdown();
}

/// A recoverable bad request (unsupported method) gets its 4xx and the
/// same connection then serves a good request.
#[test]
fn recoverable_bad_request_does_not_kill_the_connection() {
    let server = start(ServerConfig::default());
    let mut stream =
        TcpStream::connect_timeout(&server.addr(), CLIENT_TIMEOUT).expect("connect");
    stream.set_read_timeout(Some(CLIENT_TIMEOUT)).unwrap();

    stream
        .write_all(b"PATCH /healthz HTTP/1.1\r\nHost: t\r\n\r\nGET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send bad-then-good");

    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut statuses = Vec::new();
    while statuses.len() < 2 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&chunk[..n]);
                let text = String::from_utf8_lossy(&raw);
                statuses = text
                    .match_indices("HTTP/1.1 ")
                    .map(|(i, _)| text[i + 9..i + 12].to_string())
                    .collect();
            }
            Err(e) => panic!("read: {e}"),
        }
    }
    assert_eq!(
        statuses.first().map(String::as_str),
        Some("405"),
        "unsupported method answers 405"
    );
    assert_eq!(
        statuses.get(1).map(String::as_str),
        Some("200"),
        "pipelined good request after a recoverable 4xx still answers"
    );
    server.shutdown();
}

/// The per-connection request budget: the budget-exhausting response
/// carries `Connection: close` and the server then closes.
#[test]
fn request_budget_closes_with_announcement() {
    let server = start(ServerConfig {
        max_requests_per_connection: 2,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.addr(), CLIENT_TIMEOUT).expect("connect");

    let first = client.roundtrip("GET", "/healthz", None).expect("request 1");
    assert_eq!(first.status, 200);
    assert_ne!(first.header("connection"), Some("close"));

    let second = client.roundtrip("GET", "/healthz", None).expect("request 2");
    assert_eq!(second.status, 200);
    assert_eq!(
        second.header("connection"),
        Some("close"),
        "budget-exhausting response announces the close"
    );

    let mut probe = [0u8; 1];
    let mut stream = client.stream().try_clone().expect("clone");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    assert_eq!(stream.read(&mut probe).unwrap_or(0), 0, "server closed");
    server.shutdown();
}

/// `Connection: close` from the client is honored: one response, then
/// FIN.
#[test]
fn client_requested_close_is_honored() {
    let server = start(ServerConfig::default());
    let mut stream =
        TcpStream::connect_timeout(&server.addr(), CLIENT_TIMEOUT).expect("connect");
    stream.set_read_timeout(Some(CLIENT_TIMEOUT)).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("send");

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("server must FIN");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    assert!(text.to_ascii_lowercase().contains("connection: close"));
    server.shutdown();
}

/// A handler panic on a keep-alive connection costs that request a
/// 500; the *same connection* keeps serving afterwards.
#[test]
fn handler_panic_leaves_the_connection_serving() {
    let _faults = FaultScope::new("server/handler/figure=panic#1");
    let server = start(ServerConfig::default());
    let mut client = Client::connect(server.addr(), CLIENT_TIMEOUT).expect("connect");

    let poisoned = client
        .roundtrip("GET", "/v1/figure/7?scale=test", None)
        .expect("a 500, not a dead connection");
    assert_eq!(poisoned.status, 500);
    assert_ne!(
        poisoned.header("connection"),
        Some("close"),
        "panic is not a protocol failure; the connection survives"
    );

    let next = client.roundtrip("GET", "/healthz", None).expect("same connection serves");
    assert_eq!(next.status, 200);
    server.shutdown();
}
