//! End-to-end tests of the sweep-job fabric over real sockets: the
//! differential conformance scenario (a sharded job's rows are
//! byte-identical to the single-process `POST /v1/sweep` path and the
//! in-process query oracle) and the pagination contract of
//! `GET /v1/jobs/<id>/result`.

use cache_leakage_limits::cachesim::Level1;
use cache_leakage_limits::energy::TechnologyNode;
use cache_leakage_limits::experiments::{query, ProfileStore};
use cache_leakage_limits::server::{fetch, Server, ServerConfig};
use cache_leakage_limits::telemetry::json::{self, Json};
use cache_leakage_limits::workloads::{Scale, SUITE_NAMES};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);
const JOB_DEADLINE: Duration = Duration::from_secs(180);

/// `cargo test` at the workspace root only builds the root package's
/// own binaries, so the worker that `crates/jobs` ships may not exist
/// yet; build it once before the first fabric spawns.
fn ensure_worker_bin() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let exe = std::env::current_exe().expect("test exe path");
        let profile_dir = exe
            .ancestors()
            .find(|dir| dir.ends_with("debug") || dir.ends_with("release"))
            .expect("test exe lives under target/<profile>/")
            .to_path_buf();
        if profile_dir.join("leakage-job-worker").exists() {
            return;
        }
        let mut build = std::process::Command::new(env!("CARGO"));
        build.args(["build", "-p", "leakage-jobs", "--bin", "leakage-job-worker"]);
        if profile_dir.ends_with("release") {
            build.arg("--release");
        }
        let status = build.status().expect("cargo build runs");
        assert!(status.success(), "worker binary build failed: {status}");
    });
}

/// A server with its own throwaway jobs directory, so parallel tests
/// never share durable state.
fn jobs_server() -> Server {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    ensure_worker_bin();
    Server::start(ServerConfig {
        default_scale: Scale::Test,
        preserialize: false,
        jobs_dir: std::env::temp_dir().join(format!(
            "leakage-jobs-e2e-{}-{seq}",
            std::process::id()
        )),
        job_workers: 2,
        ..ServerConfig::default()
    })
    .expect("server starts")
}

fn get(addr: SocketAddr, target: &str) -> cache_leakage_limits::server::ClientResponse {
    fetch(addr, "GET", target, None, CLIENT_TIMEOUT).expect("GET succeeds")
}

fn post(addr: SocketAddr, target: &str, body: &str) -> cache_leakage_limits::server::ClientResponse {
    fetch(addr, "POST", target, Some(body.as_bytes()), CLIENT_TIMEOUT).expect("POST succeeds")
}

/// Submits a job and polls until it is `done`, returning its id.
fn run_job(addr: SocketAddr, body: &str) -> String {
    let submit = post(addr, "/v1/jobs", body);
    assert_eq!(submit.status, 201, "{}", submit.text());
    let doc = json::parse(&submit.text()).expect("submit JSON");
    let id = doc.get("id").and_then(Json::as_str).expect("id").to_string();
    let deadline = Instant::now() + JOB_DEADLINE;
    loop {
        let status = get(addr, &format!("/v1/jobs/{id}"));
        assert_eq!(status.status, 200, "{}", status.text());
        let doc = json::parse(&status.text()).expect("status JSON");
        match doc.get("state").and_then(Json::as_str) {
            Some("done") => return id,
            Some(state @ ("queued" | "running")) => {
                assert!(Instant::now() < deadline, "job stuck {state}: {doc:?}");
                std::thread::sleep(Duration::from_millis(50));
            }
            other => panic!("job ended {other:?}: {doc:?}"),
        }
    }
}

/// The raw bytes of the top-level array under `key` — for comparing
/// row renderings without re-serializing through a parser.
fn array_bytes<'a>(text: &'a str, key: &str) -> &'a str {
    let marker = format!("\"{key}\": [");
    let start = text.find(&marker).expect("array key present") + marker.len();
    let end = text.rfind(']').expect("array closes");
    &text[start..end]
}

/// The conformance scenario: the full suite × both sides × all nodes
/// (48 points, ≤512 as required) sharded into 16-point chunks across
/// worker processes must serve rows byte-identical to the same points
/// evaluated by one `POST /v1/sweep` batch in the server process, and
/// agree with the in-process query oracle.
#[test]
fn sharded_job_rows_are_byte_identical_to_sweep_batch() {
    let server = jobs_server();
    let addr = server.addr();

    let sides = ["icache", "dcache"];
    let nodes = ["70nm", "100nm", "130nm", "180nm"];
    let job_body = format!(
        r#"{{"name": "conformance", "scale": "test",
            "benchmarks": [{}],
            "sides": ["icache", "dcache"],
            "nodes": ["70nm", "100nm", "130nm", "180nm"],
            "chunk_points": 16}}"#,
        SUITE_NAMES
            .iter()
            .map(|b| format!("{b:?}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let id = run_job(addr, &job_body);

    // The same 48 points, in the job's benchmark-major order, as one
    // single-process sweep batch.
    let mut points = Vec::new();
    for benchmark in SUITE_NAMES {
        for side in sides {
            for node in nodes {
                points.push(format!(
                    r#"{{"benchmark": {benchmark:?}, "side": {side:?}, "node": {node:?}}}"#
                ));
            }
        }
    }
    let sweep_body = format!(r#"{{"scale": "test", "points": [{}]}}"#, points.join(", "));
    let sweep = post(addr, "/v1/sweep", &sweep_body);
    assert_eq!(sweep.status, 200, "{}", sweep.text());

    let page = get(addr, &format!("/v1/jobs/{id}/result?per_page=48"));
    assert_eq!(page.status, 200, "{}", page.text());
    let page_text = page.text();
    let sweep_text = sweep.text();
    assert_eq!(
        array_bytes(&page_text, "rows"),
        array_bytes(&sweep_text, "results"),
        "job rows and sweep results must be byte-identical"
    );

    // And both agree with the in-process oracle on a spot-checked
    // point (gzip/dcache/100nm = row index 1*8 + 1*4 + 1 = 29... use
    // explicit coordinates instead of arithmetic).
    let oracle = query::sweep_point(
        ProfileStore::global(),
        Scale::Test,
        &query::SweepPoint {
            benchmark: "gzip".to_string(),
            side: Level1::Data,
            node: TechnologyNode::N100,
        },
    )
    .expect("oracle point");
    let doc = json::parse(&page_text).expect("page JSON");
    let rows = doc.get("rows").and_then(Json::as_array).expect("rows");
    let row = rows
        .iter()
        .find(|r| {
            r.get("benchmark").and_then(Json::as_str) == Some("gzip")
                && r.get("side").and_then(Json::as_str) == Some("dcache")
                && r.get("node").and_then(Json::as_str) == Some("100nm")
        })
        .expect("gzip/dcache/100nm row");
    let served = row.get("opt_hybrid").and_then(Json::as_f64).expect("opt_hybrid");
    assert!(
        (served - oracle.opt_hybrid).abs() < 1e-12,
        "served {served} vs oracle {}",
        oracle.opt_hybrid
    );

    server.shutdown();
}

/// The pagination contract: per_page bounds, pages past the end,
/// partial last pages, and stable bytes across repeated reads.
#[test]
fn result_pagination_boundaries() {
    let server = jobs_server();
    let addr = server.addr();

    // 2 benchmarks × 2 sides × 4 nodes = 16 points in one chunk.
    let id = run_job(
        addr,
        r#"{"name": "pages", "scale": "test",
            "benchmarks": ["gzip", "mesa"], "chunk_points": 16}"#,
    );

    // per_page must be 1..=10000; zero, junk, and over-cap are 400s.
    for bad in ["per_page=0", "per_page=abc", "per_page=10001", "page=abc"] {
        let response = get(addr, &format!("/v1/jobs/{id}/result?{bad}"));
        assert_eq!(response.status, 400, "{bad}: {}", response.text());
    }

    // 16 points at 5 per page: pages of 5, 5, 5, then a partial 1.
    let mut all_rows = Vec::new();
    for (page, want) in [(0, 5), (1, 5), (2, 5), (3, 1)] {
        let response = get(addr, &format!("/v1/jobs/{id}/result?page={page}&per_page=5"));
        assert_eq!(response.status, 200, "{}", response.text());
        let doc = json::parse(&response.text()).expect("page JSON");
        assert_eq!(doc.get("total_points").and_then(Json::as_f64), Some(16.0));
        assert_eq!(doc.get("total_pages").and_then(Json::as_f64), Some(4.0));
        let rows = doc.get("rows").and_then(Json::as_array).expect("rows");
        assert_eq!(rows.len(), want, "page {page}");
        all_rows.extend(rows.iter().cloned());
    }

    // Pages past the end are empty 200s, not errors.
    let past = get(addr, &format!("/v1/jobs/{id}/result?page=4&per_page=5"));
    assert_eq!(past.status, 200);
    let doc = json::parse(&past.text()).expect("past-end JSON");
    assert_eq!(
        doc.get("rows").and_then(Json::as_array).map(<[Json]>::len),
        Some(0)
    );

    // Ordering is stable: a re-read returns identical bytes, and the
    // paged union equals the single-page read.
    let whole = get(addr, &format!("/v1/jobs/{id}/result?per_page=16"));
    let again = get(addr, &format!("/v1/jobs/{id}/result?per_page=16"));
    assert_eq!(whole.text(), again.text(), "re-reads must be stable");
    let doc = json::parse(&whole.text()).expect("whole JSON");
    let rows = doc.get("rows").and_then(Json::as_array).expect("rows");
    assert_eq!(rows, &all_rows[..], "paged union equals the whole read");

    // An empty job is legal and serves an empty first page.
    let id = run_job(addr, r#"{"name": "empty", "benchmarks": []}"#);
    let response = get(addr, &format!("/v1/jobs/{id}/result"));
    assert_eq!(response.status, 200, "{}", response.text());
    let doc = json::parse(&response.text()).expect("empty JSON");
    assert_eq!(doc.get("total_points").and_then(Json::as_f64), Some(0.0));
    assert_eq!(
        doc.get("rows").and_then(Json::as_array).map(<[Json]>::len),
        Some(0)
    );

    server.shutdown();
}
