//! End-to-end tests of the executed-workload serving surface:
//!
//! - `GET /v1/profile/isa:<program>` must report exactly the numbers
//!   the batch pipeline computes for that program.
//! - `POST /v1/trace/intervals` must accept both `Content-Length` and
//!   `Transfer-Encoding: chunked` framings, produce identical
//!   summaries for identical bodies, and stream chunked bodies larger
//!   than the buffered-parse cap without ever holding them whole.
//! - The streaming extractor's resident state must stay bounded by
//!   the live line count while ingesting a >1M-event pointer-chase
//!   trace.

use cache_leakage_limits::experiments::ProfileStore;
use cache_leakage_limits::intervals::{CompactIntervalDist, StreamingExtractor};
use cache_leakage_limits::isa::{program_by_name, IsaSource};
use cache_leakage_limits::server::{fetch, Server, ServerConfig};
use cache_leakage_limits::telemetry::json::{self, Json};
use cache_leakage_limits::trace::io::TraceWriter;
use cache_leakage_limits::trace::{TraceSink, TraceSource};
use cache_leakage_limits::workloads::Scale;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

fn test_config() -> ServerConfig {
    ServerConfig {
        default_scale: Scale::Test,
        ..ServerConfig::default()
    }
}

/// Serializes an ISA program execution into LKTR wire bytes.
fn lktr_trace(program: &str, budget_cycles: u64, seed: u64) -> Vec<u8> {
    let program = program_by_name(program).expect("library program");
    let mut body = Vec::new();
    let mut writer = TraceWriter::new(&mut body).expect("Vec sink cannot fail");
    IsaSource::new(program, budget_cycles, seed).run(&mut writer);
    writer.flush().expect("Vec sink cannot fail");
    drop(writer);
    body
}

/// The summary the server must produce for `body`, computed in
/// process by the same streaming extractor.
fn expected_summary(body: &[u8], line_bits: u32) -> (u64, u64, u64) {
    let mut extractor = StreamingExtractor::new(line_bits, CompactIntervalDist::new());
    let mut decoder = cache_leakage_limits::trace::io::StreamDecoder::new();
    decoder.feed(body, &mut extractor).expect("valid trace");
    decoder.finish().expect("complete records");
    let events = extractor.events();
    let lines = extractor.resident_lines() as u64;
    let dist = extractor.finish();
    (events, lines, dist.total_intervals())
}

/// Sends `body` as a chunked POST in `chunk`-byte chunks (plus
/// `tail` pipelined after the terminator) and returns every byte the
/// server sends back before closing its half.
fn chunked_post(addr: SocketAddr, target: &str, body: &[u8], chunk: usize, tail: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(CLIENT_TIMEOUT))
        .expect("read timeout");
    let head =
        format!("POST {target} HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n");
    stream.write_all(head.as_bytes()).expect("write head");
    for piece in body.chunks(chunk.max(1)) {
        stream
            .write_all(format!("{:x}\r\n", piece.len()).as_bytes())
            .expect("write size");
        stream.write_all(piece).expect("write chunk");
        stream.write_all(b"\r\n").expect("write terminator");
    }
    stream.write_all(b"0\r\n\r\n").expect("write last chunk");
    stream.write_all(tail).expect("write pipelined tail");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read responses");
    raw
}

/// Splits one `Content-Length`-framed response off the front of `raw`,
/// returning (status, body, rest).
fn split_response(raw: &[u8]) -> (u16, Vec<u8>, Vec<u8>) {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator")
        + 4;
    let head = std::str::from_utf8(&raw[..head_end]).expect("UTF-8 head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let length: usize = head
        .lines()
        .find_map(|line| line.strip_prefix("Content-Length: "))
        .expect("Content-Length")
        .trim()
        .parse()
        .expect("numeric length");
    let body = raw[head_end..head_end + length].to_vec();
    let rest = raw[head_end + length..].to_vec();
    (status, body, rest)
}

#[test]
fn served_isa_profiles_match_batch_pipeline() {
    let server = Server::start(test_config()).expect("server starts");
    let addr = server.addr();

    for name in ["isa:matmul", "isa:chase", "isa:memcpy"] {
        let batch = ProfileStore::global().fetch(name, Scale::Test);
        let path = format!("/v1/profile/{name}?scale=test");
        let response = fetch(addr, "GET", &path, None, CLIENT_TIMEOUT).expect("served profile");
        assert_eq!(response.status, 200, "{name}: {}", response.text());
        let doc = json::parse(&response.text()).expect("summary parses");
        assert_eq!(doc.get("benchmark").and_then(Json::as_str), Some(name));
        for (side, profile) in [("icache", &batch.icache), ("dcache", &batch.dcache)] {
            let served = doc.get(side).expect("side object");
            let num = |key: &str| served.get(key).and_then(Json::as_f64).expect("field");
            assert_eq!(num("accesses") as u64, profile.cache.accesses, "{name}/{side}");
            assert_eq!(num("hits") as u64, profile.cache.hits, "{name}/{side}");
            assert_eq!(num("misses") as u64, profile.cache.misses, "{name}/{side}");
            assert_eq!(
                num("total_intervals") as u64,
                profile.dist.total_intervals(),
                "{name}/{side}"
            );
            assert_eq!(
                num("interval_cycles") as u64,
                profile.dist.total_cycles(),
                "{name}/{side}"
            );
        }

        // Serving is deterministic: a second fetch is byte-identical.
        let again = fetch(addr, "GET", &path, None, CLIENT_TIMEOUT).expect("refetch");
        assert_eq!(again.body, response.body, "{name}: served bytes must be stable");
    }
    server.shutdown();
}

#[test]
fn buffered_and_chunked_uploads_summarize_identically() {
    let server = Server::start(test_config()).expect("server starts");
    let addr = server.addr();
    let body = lktr_trace("isa:isort", 20_000, 11);

    let buffered = fetch(
        addr,
        "POST",
        "/v1/trace/intervals?line_bits=6",
        Some(&body),
        CLIENT_TIMEOUT,
    )
    .expect("buffered upload");
    assert_eq!(buffered.status, 200, "{}", buffered.text());

    // The same body chunked in awkward 1000-byte pieces, with a
    // pipelined GET riding behind the terminating chunk.
    let raw = chunked_post(
        addr,
        "/v1/trace/intervals?line_bits=6",
        &body,
        1000,
        b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    let (status, chunked_body, rest) = split_response(&raw);
    assert_eq!(
        status,
        200,
        "{}",
        String::from_utf8_lossy(&chunked_body)
    );
    assert_eq!(
        chunked_body, buffered.body,
        "chunked and buffered framings must summarize byte-identically"
    );
    let (tail_status, tail_body, _) = split_response(&rest);
    assert_eq!(tail_status, 200, "pipelined request after the body is served");
    assert!(
        String::from_utf8_lossy(&tail_body).contains("\"status\": \"ok\""),
        "pipelined /healthz answered"
    );

    // And the summary is the streaming extractor's, exactly.
    let (events, lines, intervals) = expected_summary(&body, 6);
    let doc = json::parse(&buffered.text()).expect("summary parses");
    assert_eq!(doc.get("events").and_then(Json::as_f64), Some(events as f64));
    assert_eq!(doc.get("lines").and_then(Json::as_f64), Some(lines as f64));
    assert_eq!(
        doc.get("intervals").and_then(Json::as_f64),
        Some(intervals as f64)
    );
    server.shutdown();
}

#[test]
fn chunked_upload_streams_past_the_buffered_body_cap() {
    let server = Server::start(test_config()).expect("server starts");
    let addr = server.addr();

    // Enough pointer-chase events that the LKTR body exceeds the 1 MiB
    // buffered-parse cap several times over.
    let body = lktr_trace("isa:chase", 1_500_000, 3);
    assert!(
        body.len() > 4 * 1024 * 1024,
        "trace must dwarf the buffered cap, got {} bytes",
        body.len()
    );

    // Content-Length framing refuses it outright. The server answers
    // 413 from the header block alone and closes; a client mid-way
    // through the multi-megabyte write may see the reset instead of
    // the status, so both count as refusal.
    match fetch(addr, "POST", "/v1/trace/intervals", Some(&body), CLIENT_TIMEOUT) {
        Ok(buffered) => assert_eq!(buffered.status, 413, "{}", buffered.text()),
        Err(_reset_mid_write) => {}
    }

    // ...while chunked framing streams it through fixed-size state.
    let raw = chunked_post(addr, "/v1/trace/intervals", &body, 64 * 1024, b"");
    let (status, summary, _) = split_response(&raw);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&summary));
    let (events, lines, intervals) = expected_summary(&body, 6);
    let doc = json::parse(std::str::from_utf8(&summary).expect("UTF-8")).expect("parses");
    assert_eq!(doc.get("events").and_then(Json::as_f64), Some(events as f64));
    assert_eq!(doc.get("lines").and_then(Json::as_f64), Some(lines as f64));
    assert_eq!(
        doc.get("intervals").and_then(Json::as_f64),
        Some(intervals as f64)
    );
    server.shutdown();
}

#[test]
fn chunked_bodies_are_refused_off_the_trace_route() {
    let server = Server::start(test_config()).expect("server starts");
    let addr = server.addr();
    let raw = chunked_post(addr, "/v1/sweep", b"{}", 64, b"");
    let (status, _, _) = split_response(&raw);
    assert_eq!(status, 411, "chunked off the trace route asks for Content-Length");
    server.shutdown();
}

/// The bounded-memory acceptance gate: a >1M-event pointer-chase
/// trace flows through the streaming extractor while its resident
/// state never exceeds the program's live-line count — a fixed
/// ceiling about three orders of magnitude below the event count.
#[test]
fn streaming_extractor_stays_line_bounded_on_a_million_event_chase() {
    let program = program_by_name("isa:chase").expect("library program");
    let mut source = IsaSource::new(program, 2_500_000, 5);
    let mut extractor = StreamingExtractor::new(6, CompactIntervalDist::new());
    source.run(&mut extractor);

    let events = extractor.events();
    assert!(
        events > 1_000_000,
        "chase at this budget must emit >1M events, got {events}"
    );
    // Live lines: the 4096-word (32 KiB) chase arena is 512 cache
    // lines, plus the handful of code and scratch lines.
    let peak = extractor.peak_resident_lines();
    assert!(
        peak <= 1024,
        "resident state must track live lines, not events: peak {peak}"
    );
    assert_eq!(
        extractor.resident_lines(),
        peak,
        "chase never retires a line, so peak is the final footprint"
    );
    let dist = extractor.finish();
    assert!(dist.total_intervals() >= events, "every event closes an interval");
}
