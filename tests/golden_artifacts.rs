//! Golden-snapshot locking of the paper artifacts.
//!
//! Tables 1–3 and Figs. 7–9 are regenerated at `Scale::Test` (fully
//! deterministic) and compared byte-for-byte against the CSV snapshots
//! committed under `tests/golden/`. A mismatch fails with a
//! line-by-line diff; intentional changes are re-blessed with
//! `LEAKAGE_BLESS=1 cargo test --test golden_artifacts`.
//!
//! These snapshots complement the semantic reproduction checks in
//! `leakage_experiments::checks`: the checks say the numbers are
//! *plausible*, the goldens say they are *unchanged*.

use std::path::{Path, PathBuf};

use leakage_conformance::golden::check_golden;
use leakage_experiments::{
    fig7, fig8, fig9, isa_suite, profile_suite_serial, table1, table2, table3, Table,
};
use leakage_workloads::Scale;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn check(failures: &mut Vec<String>, name: &str, table: &Table) {
    let path = golden_dir().join(format!("{name}.csv"));
    if let Err(err) = check_golden(&path, &table.to_csv()) {
        failures.push(err);
    }
}

#[test]
fn artifacts_match_committed_goldens() {
    let profiles = profile_suite_serial(Scale::Test);
    let mut failures = Vec::new();

    check(&mut failures, "table1", &table1::generate());
    check(&mut failures, "table2", &table2::generate(&profiles));
    check(&mut failures, "table3", &table3::generate());
    check(&mut failures, "isa_suite", &isa_suite::generate(Scale::Test));
    for (name, (icache, dcache)) in [
        ("fig7", fig7::generate(&profiles)),
        ("fig8", fig8::generate(&profiles)),
        ("fig9", fig9::generate(&profiles)),
    ] {
        check(&mut failures, &format!("{name}_icache"), &icache);
        check(&mut failures, &format!("{name}_dcache"), &dcache);
    }

    assert!(
        failures.is_empty(),
        "{} golden artifact(s) diverged:\n\n{}",
        failures.len(),
        failures.join("\n")
    );
}
