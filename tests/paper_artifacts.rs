//! Guardrail tests pinning the reproduced paper artifacts.
//!
//! Exact where the paper is exact (Table 1); banded where the numbers
//! depend on the synthetic workload substitution (savings percentages,
//! see `EXPERIMENTS.md`). Uses `Scale::Small` to keep test time modest;
//! the bands are wide enough to hold at `Scale::Paper` too.

use cache_leakage_limits::cachesim::Level1;
use cache_leakage_limits::core::{CircuitParams, IntervalEnergyModel};
use cache_leakage_limits::energy::TechnologyNode;
use cache_leakage_limits::experiments::{fig7, fig8, fig9, profile_suite, table1, table2};
use cache_leakage_limits::workloads::Scale;
use std::sync::OnceLock;

fn profiles() -> &'static [cache_leakage_limits::experiments::BenchmarkProfile] {
    static PROFILES: OnceLock<Vec<cache_leakage_limits::experiments::BenchmarkProfile>> =
        OnceLock::new();
    PROFILES.get_or_init(|| profile_suite(Scale::Small))
}

#[test]
fn table1_is_exact() {
    let expected = [(70, 1057u64), (100, 5088), (130, 10328), (180, 103084)];
    for (node, (nm, b)) in TechnologyNode::ALL.iter().zip(expected) {
        assert_eq!(node.feature_nm(), nm);
        let points = IntervalEnergyModel::new(CircuitParams::for_node(*node)).inflection_points();
        assert_eq!(points.active_drowsy, 6, "{node}");
        assert_eq!(points.drowsy_sleep, b, "{node}");
    }
    // And the rendered table carries the same values.
    let table = table1::generate();
    assert_eq!(table.rows()[1][4], "103084");
}

#[test]
fn headline_savings_bands() {
    // Paper (70nm): I$ OPT-Hybrid 96.4%, D$ 99.1%; OPT-Drowsy ~66.5%.
    let (icache, dcache) = table2::headline_hybrid(profiles());
    assert!((93.0..=98.5).contains(&icache), "I$ hybrid {icache}");
    assert!((95.0..=99.5).contains(&dcache), "D$ hybrid {dcache}");

    let savings = table2::node_savings(TechnologyNode::N70, profiles());
    assert!((64.0..=67.0).contains(&savings.icache.0), "I$ drowsy");
    assert!((64.0..=67.0).contains(&savings.dcache.0), "D$ drowsy");
    // Sleep mode matters more for the data cache than the instruction
    // cache (paper §4.3's observation).
    assert!(savings.dcache.1 >= savings.icache.1 - 1.0);
}

#[test]
fn table2_trend_matches_paper() {
    let all: Vec<_> = TechnologyNode::ALL
        .iter()
        .map(|&node| table2::node_savings(node, profiles()))
        .collect();
    for pair in all.windows(2) {
        // Savings fall (weakly) as feature size grows, for every column.
        assert!(pair[0].icache.1 + 1e-6 >= pair[1].icache.1, "I$ sleep trend");
        assert!(pair[0].icache.2 + 1e-6 >= pair[1].icache.2, "I$ hybrid trend");
        assert!(pair[0].dcache.1 + 1e-6 >= pair[1].dcache.1, "D$ sleep trend");
        assert!(pair[0].dcache.2 + 1e-6 >= pair[1].dcache.2, "D$ hybrid trend");
    }
    // At 180nm drowsy overtakes sleep on the instruction cache side in
    // the paper; at minimum the gap collapses dramatically.
    let gap_70 = all[0].icache.1 - all[0].icache.0;
    let gap_180 = all[3].icache.1 - all[3].icache.0;
    assert!(gap_180 < gap_70 * 0.55, "sleep's lead must shrink: {gap_70} -> {gap_180}");
}

#[test]
fn fig7_hybrid_advantage_grows_with_conservatism() {
    for side in [Level1::Instruction, Level1::Data] {
        let series = fig7::series(profiles(), side);
        let gaps: Vec<f64> = series.iter().map(|(_, s, h)| h - s).collect();
        assert!(
            gaps.last().unwrap() > gaps.first().unwrap(),
            "{side}: hybrid gap should widen as the sleep floor rises"
        );
        // Near the inflection point the hybrid adds little (paper: "the
        // usefulness of applying the drowsy method decreases").
        assert!(gaps[0] < 5.0, "{side}: gap at b should be small, got {}", gaps[0]);
    }
}

#[test]
fn fig8_gaps_match_paper_shape() {
    let averages = |side| {
        fig8::series(profiles(), side)
            .into_iter()
            .map(|(name, s)| (name, *s.last().unwrap()))
            .collect::<std::collections::HashMap<_, _>>()
    };
    let icache = averages(Level1::Instruction);
    let dcache = averages(Level1::Data);

    // Paper: I$ hybrid beats OPT-Sleep(10K) by ~16 and Sleep(10K) by ~26.
    let i_gap_opt = icache["OPT-Hybrid"] - icache["OPT-Sleep(10K)"];
    assert!((7.0..=25.0).contains(&i_gap_opt), "I$ hybrid-vs-optsleep gap {i_gap_opt}");
    let i_gap_decay = icache["OPT-Hybrid"] - icache["Sleep(10K)"];
    assert!((12.0..=32.0).contains(&i_gap_decay), "I$ hybrid-vs-decay gap {i_gap_decay}");

    // Paper: the D$ gaps are smaller (12 and 15).
    let d_gap_decay = dcache["OPT-Hybrid"] - dcache["Sleep(10K)"];
    assert!(d_gap_decay < i_gap_decay, "D$ decay gap smaller than I$'s");

    // Prefetch-B approaches the oracle within ~10 points on both sides
    // (paper: within 5.3 / 6.7).
    assert!(icache["OPT-Hybrid"] - icache["Prefetch-B"] < 10.0);
    assert!(dcache["OPT-Hybrid"] - dcache["Prefetch-B"] < 10.0);
}

#[test]
fn fig9_prefetchability_bands() {
    // Paper: P-NL(I$) = 23% of intervals; total D$ prefetchability 21.4%
    // with a 16.3/5.1 NL/stride split. Bands here are generous: the
    // count-weighted statistics are the most workload-sensitive numbers
    // in the study.
    let icache = fig9::average(profiles(), Level1::Instruction);
    assert!(
        (15.0..=35.0).contains(&icache.total_nl()),
        "I$ P-NL {}",
        icache.total_nl()
    );
    assert_eq!(icache.total_stride(), 0.0, "I$ uses next-line only");

    let dcache = fig9::average(profiles(), Level1::Data);
    assert!(dcache.total_nl() > 5.0, "D$ P-NL {}", dcache.total_nl());
    assert!(dcache.total_stride() > 0.0, "D$ P-stride {}", dcache.total_stride());
    assert!(
        dcache.total_nl() > dcache.total_stride(),
        "next-line covers more than stride, as in the paper"
    );
}
