//! Regression tests for the memoized profiling pipeline: every
//! profiling path (serial, parallel, memoized, cold or warm) must
//! produce byte-identical profiles, and experiment modules sharing one
//! process must share one simulation per `(benchmark, config)` pair.

use cache_leakage_limits::cachesim::Level1;
use cache_leakage_limits::experiments::codec::encode_profile;
use cache_leakage_limits::experiments::{
    cached_profile, cached_suite, profile_suite, profile_suite_serial, profile_suite_uncached,
    ProfileStore,
};
use cache_leakage_limits::workloads::{Scale, SUITE_NAMES};

/// The determinism regression the ISSUE demands: the rayon-parallel
/// memoized path, the serial path and the uncached parallel path all
/// serialize to the same bytes — both on a cold store and on a warm
/// one.
#[test]
fn all_profiling_paths_are_byte_identical() {
    let cold: Vec<Vec<u8>> = profile_suite(Scale::Test).iter().map(encode_profile).collect();
    let warm: Vec<Vec<u8>> = profile_suite(Scale::Test).iter().map(encode_profile).collect();
    let serial: Vec<Vec<u8>> =
        profile_suite_serial(Scale::Test).iter().map(encode_profile).collect();
    let uncached: Vec<Vec<u8>> =
        profile_suite_uncached(Scale::Test).iter().map(encode_profile).collect();

    assert_eq!(cold.len(), SUITE_NAMES.len());
    assert_eq!(cold, warm, "memoized re-fetch must not change a single byte");
    assert_eq!(cold, serial, "parallel and serial profiling must agree");
    assert_eq!(cold, uncached, "memoization must not change results");
}

/// The interval extraction invariant holds for the whole suite on both
/// L1 sides: per frame, interval lengths sum to the timeline length.
#[test]
fn every_suite_profile_covers_the_timeline_on_both_sides() {
    for profile in cached_suite(Scale::Test) {
        for side in [Level1::Instruction, Level1::Data] {
            assert!(
                profile.side(side).covers_timeline(),
                "{}/{side}: intervals must tile the frame timeline",
                profile.name
            );
        }
    }
}

/// Two different "experiment modules" (suite profiling and a
/// per-benchmark fixture fetch) in one process trigger at most one
/// simulation per `(benchmark, config)` pair. All tests in this binary
/// fetch the same six Test-scale pairs, so the global miss counter can
/// never exceed six no matter how the test threads interleave.
#[test]
fn modules_share_one_simulation_per_pair() {
    cached_suite(Scale::Test); // module 1: the suite pipeline
    for name in SUITE_NAMES {
        cached_profile(name, Scale::Test); // module 2: per-benchmark fixtures
    }
    let counters = ProfileStore::global().counters();
    assert!(
        counters.misses + counters.disk_hits <= SUITE_NAMES.len() as u64,
        "at most one simulation (or disk load) per pair, got {counters:?}"
    );
    // And the twelve fetches above were all served.
    assert!(counters.total() >= 2 * SUITE_NAMES.len() as u64, "{counters:?}");
}

/// `cached_profile` hands out the same allocation, not merely equal
/// data — downstream experiments share memory, not copies.
#[test]
fn cached_profiles_share_one_allocation() {
    let a = cached_profile("gzip", Scale::Test);
    let b = cached_profile("gzip", Scale::Test);
    assert!(std::sync::Arc::ptr_eq(&a, &b));
}
