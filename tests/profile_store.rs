//! Regression tests for the memoized profiling pipeline: every
//! profiling path (serial, parallel, memoized, cold or warm) must
//! produce byte-identical profiles, and experiment modules sharing one
//! process must share one simulation per `(benchmark, config)` pair.

use cache_leakage_limits::cachesim::Level1;
use cache_leakage_limits::experiments::codec::encode_profile;
use cache_leakage_limits::experiments::store::QUARANTINE_SUBDIR;
use cache_leakage_limits::experiments::{
    cached_profile, cached_suite, profile_suite, profile_suite_serial, profile_suite_uncached,
    ProfileStore,
};
use cache_leakage_limits::faults::checksum::fnv1a;
use cache_leakage_limits::workloads::{Scale, SUITE_NAMES};
use std::path::{Path, PathBuf};

/// The determinism regression the ISSUE demands: the rayon-parallel
/// memoized path, the serial path and the uncached parallel path all
/// serialize to the same bytes — both on a cold store and on a warm
/// one.
#[test]
fn all_profiling_paths_are_byte_identical() {
    let cold: Vec<Vec<u8>> = profile_suite(Scale::Test).iter().map(encode_profile).collect();
    let warm: Vec<Vec<u8>> = profile_suite(Scale::Test).iter().map(encode_profile).collect();
    let serial: Vec<Vec<u8>> =
        profile_suite_serial(Scale::Test).iter().map(encode_profile).collect();
    let uncached: Vec<Vec<u8>> =
        profile_suite_uncached(Scale::Test).iter().map(encode_profile).collect();

    assert_eq!(cold.len(), SUITE_NAMES.len());
    assert_eq!(cold, warm, "memoized re-fetch must not change a single byte");
    assert_eq!(cold, serial, "parallel and serial profiling must agree");
    assert_eq!(cold, uncached, "memoization must not change results");
}

/// The interval extraction invariant holds for the whole suite on both
/// L1 sides: per frame, interval lengths sum to the timeline length.
#[test]
fn every_suite_profile_covers_the_timeline_on_both_sides() {
    for profile in cached_suite(Scale::Test) {
        for side in [Level1::Instruction, Level1::Data] {
            assert!(
                profile.side(side).covers_timeline(),
                "{}/{side}: intervals must tile the frame timeline",
                profile.name
            );
        }
    }
}

/// Two different "experiment modules" (suite profiling and a
/// per-benchmark fixture fetch) in one process trigger at most one
/// simulation per `(benchmark, config)` pair. All tests in this binary
/// fetch the same six Test-scale pairs, so the global miss counter can
/// never exceed six no matter how the test threads interleave.
#[test]
fn modules_share_one_simulation_per_pair() {
    cached_suite(Scale::Test); // module 1: the suite pipeline
    for name in SUITE_NAMES {
        cached_profile(name, Scale::Test); // module 2: per-benchmark fixtures
    }
    let counters = ProfileStore::global().counters();
    assert!(
        counters.misses + counters.disk_hits <= SUITE_NAMES.len() as u64,
        "at most one simulation (or disk load) per pair, got {counters:?}"
    );
    // And the twelve fetches above were all served.
    assert!(counters.total() >= 2 * SUITE_NAMES.len() as u64, "{counters:?}");
}

/// `cached_profile` hands out the same allocation, not merely equal
/// data — downstream experiments share memory, not copies.
#[test]
fn cached_profiles_share_one_allocation() {
    let a = cached_profile("gzip", Scale::Test);
    let b = cached_profile("gzip", Scale::Test);
    assert!(std::sync::Arc::ptr_eq(&a, &b));
}

// ---------------------------------------------------------------------
// Disk-store corruption matrix: every way a profile file can rot must
// end in quarantine + re-simulation, never in serving bad bytes.
// ---------------------------------------------------------------------

/// A fresh disk dir seeded with one simulated `vortex` profile.
/// Returns `(dir, profile_path)`.
fn seeded_dir(tag: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("leakage-corrupt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ProfileStore::with_disk_dir(&dir);
    store.fetch("vortex", Scale::Test);
    let path = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|ext| ext == "profile"))
        .expect("the fetch persisted a profile");
    (dir, path)
}

/// Corrupt `path` with `mutate`, then assert a fresh store refuses the
/// file (miss + quarantine), re-simulates correctly, and leaves the
/// evidence under `quarantine/`.
fn assert_quarantines(dir: &Path, path: &Path, mutate: impl FnOnce(&mut Vec<u8>)) {
    let mut bytes = std::fs::read(path).unwrap();
    mutate(&mut bytes);
    std::fs::write(path, &bytes).unwrap();

    let store = ProfileStore::with_disk_dir(dir);
    let healed = store.fetch("vortex", Scale::Test);
    let counters = store.counters();
    assert_eq!(counters.disk_hits, 0, "corrupt file must never be served");
    assert_eq!(counters.misses, 1, "the fetch must degrade to a re-simulation");
    assert_eq!(counters.quarantined, 1, "{counters:?}");
    assert_eq!(healed.name, "vortex");
    let evidence = dir.join(QUARANTINE_SUBDIR).join(path.file_name().unwrap());
    assert_eq!(std::fs::read(evidence).unwrap(), bytes, "evidence preserved verbatim");

    // The slot was rewritten with a clean copy: the next store disk-hits.
    let reread = ProfileStore::with_disk_dir(dir);
    reread.fetch("vortex", Scale::Test);
    assert_eq!(reread.counters().disk_hits, 1);
    assert_eq!(reread.counters().quarantined, 0);
    let _ = std::fs::remove_dir_all(dir);
}

/// A write torn by a crash (or injected truncation) is quarantined.
#[test]
fn truncated_profile_is_quarantined() {
    let (dir, path) = seeded_dir("truncate");
    assert_quarantines(&dir, &path, |bytes| bytes.truncate(bytes.len() / 2));
}

/// A single flipped bit anywhere in the body trips the FNV-1a footer.
#[test]
fn flipped_byte_is_quarantined() {
    let (dir, path) = seeded_dir("bitflip");
    assert_quarantines(&dir, &path, |bytes| {
        let middle = bytes.len() / 2;
        bytes[middle] ^= 0x01;
    });
}

/// A file written by a different (stale) codec version is rejected even
/// when its checksum is self-consistent.
#[test]
fn stale_format_version_is_quarantined() {
    let (dir, path) = seeded_dir("version");
    assert_quarantines(&dir, &path, |bytes| {
        // Layout: magic(4) | version u32 LE | body | fnv1a footer u64 LE.
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        // Recompute the footer so only the version — not the checksum —
        // can reject the file.
        let body_len = bytes.len() - 8;
        let footer = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&footer.to_le_bytes());
    });
}

/// Writers in separate stores (stand-ins for separate processes) racing
/// on one key never leave a torn or mixed file: each write goes to a
/// unique temp file and is renamed in atomically, so a later reader
/// decodes a clean profile.
#[test]
fn concurrent_writers_never_tear_the_file() {
    let dir = std::env::temp_dir().join(format!("leakage-race-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| ProfileStore::with_disk_dir(&dir).fetch("vortex", Scale::Test));
        }
    });
    let reader = ProfileStore::with_disk_dir(&dir);
    let profile = reader.fetch("vortex", Scale::Test);
    let counters = reader.counters();
    assert_eq!(counters.disk_hits, 1, "{counters:?}");
    assert_eq!(counters.quarantined, 0, "{counters:?}");
    assert_eq!(profile.name, "vortex");
    assert!(!dir.join(QUARANTINE_SUBDIR).exists(), "no write was ever torn");
    // No temp droppings left behind.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| !p.extension().is_some_and(|ext| ext == "profile"))
        .collect();
    assert!(leftovers.is_empty(), "{leftovers:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
