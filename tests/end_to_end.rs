//! Cross-crate integration: the full pipeline on every benchmark.

use cache_leakage_limits::cachesim::Level1;
use cache_leakage_limits::core::policy::{
    AlwaysActive, DecaySleep, OptDrowsy, OptHybrid, OptSleep, PrefetchGuided, PrefetchScheme,
};
use cache_leakage_limits::core::{
    CircuitParams, EnergyContext, LeakagePolicy, RefetchAccounting,
};
use cache_leakage_limits::energy::TechnologyNode;
use cache_leakage_limits::experiments::{profile_benchmark, profile_suite};
use cache_leakage_limits::workloads::{suite, Scale};

fn ctx() -> EnergyContext {
    EnergyContext::new(
        CircuitParams::for_node(TechnologyNode::N70),
        RefetchAccounting::PaperStrict,
    )
}

#[test]
fn every_benchmark_satisfies_coverage_invariant() {
    for mut bench in suite(Scale::Test) {
        let name = bench.name();
        let profile = profile_benchmark(&mut bench);
        assert!(profile.icache.covers_timeline(), "{name} icache");
        assert!(profile.dcache.covers_timeline(), "{name} dcache");
        assert!(profile.icache.cache.accesses > 0, "{name}");
        assert!(profile.dcache.cache.accesses > 0, "{name}");
    }
}

#[test]
fn policy_orderings_hold_everywhere() {
    let ctx = ctx();
    let policies: Vec<Box<dyn LeakagePolicy>> = vec![
        Box::new(AlwaysActive),
        Box::new(OptDrowsy),
        Box::new(DecaySleep::ten_k()),
        Box::new(OptSleep::ten_k()),
        Box::new(OptHybrid::new()),
        Box::new(PrefetchGuided::new(PrefetchScheme::A)),
        Box::new(PrefetchGuided::new(PrefetchScheme::B)),
    ];
    for mut bench in suite(Scale::Test) {
        let name = bench.name();
        let profile = profile_benchmark(&mut bench);
        for side in [Level1::Instruction, Level1::Data] {
            let dist = &profile.side(side).dist;
            let savings: Vec<(String, f64)> = policies
                .iter()
                .map(|p| {
                    let eval = ctx.evaluate(p.as_ref(), dist);
                    assert_eq!(eval.infeasible_fallbacks, 0, "{name}/{side}: {}", p.name());
                    (p.name().to_string(), eval.saving_fraction())
                })
                .collect();
            let get = |label: &str| {
                savings
                    .iter()
                    .find(|(n, _)| n == label)
                    .map(|(_, s)| *s)
                    .unwrap()
            };
            // Bounds.
            for (policy, saving) in &savings {
                assert!(
                    (0.0..=1.0).contains(saving),
                    "{name}/{side}/{policy}: {saving}"
                );
            }
            // The baseline saves nothing; the oracle hybrid dominates all.
            assert_eq!(get("Always-Active"), 0.0);
            let hybrid = get("OPT-Hybrid");
            for (policy, saving) in &savings {
                assert!(
                    hybrid + 1e-9 >= *saving,
                    "{name}/{side}: OPT-Hybrid ({hybrid}) beaten by {policy} ({saving})"
                );
            }
            // Oracle sleep dominates implementable decay at the same
            // threshold; Prefetch-B dominates Prefetch-A.
            assert!(get("OPT-Sleep(10K)") + 1e-9 >= get("Sleep(10K)"), "{name}/{side}");
            assert!(get("Prefetch-B") + 1e-9 >= get("Prefetch-A"), "{name}/{side}");
        }
    }
}

#[test]
fn savings_improve_as_technology_shrinks() {
    let mut bench = suite(Scale::Test).remove(1); // applu
    let profile = profile_benchmark(&mut bench);
    let mut prev = f64::INFINITY;
    for node in TechnologyNode::ALL {
        let ctx = EnergyContext::new(
            CircuitParams::for_node(node),
            RefetchAccounting::PaperStrict,
        );
        let saving = ctx
            .evaluate(&OptHybrid::new(), &profile.dcache.dist)
            .saving_fraction();
        assert!(
            saving <= prev + 1e-9,
            "hybrid savings should not grow at older nodes"
        );
        prev = saving;
    }
}

#[test]
fn suite_profiling_is_deterministic_and_parallel_consistent() {
    // The rayon-parallel (and memoized) suite profiling equals
    // sequential runs.
    let parallel = profile_suite(Scale::Test);
    let names: Vec<&str> = parallel.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names, ["ammp", "applu", "gcc", "gzip", "mesa", "vortex"]);
    for (mut bench, parallel_profile) in suite(Scale::Test).into_iter().zip(&parallel) {
        let sequential = profile_benchmark(&mut bench);
        assert_eq!(sequential.icache.dist, parallel_profile.icache.dist);
        assert_eq!(sequential.dcache.dist, parallel_profile.dcache.dist);
        assert_eq!(sequential.icache.prefetch, parallel_profile.icache.prefetch);
    }
}

#[test]
fn dead_aware_accounting_only_helps() {
    let strict = ctx();
    let aware = EnergyContext::new(
        CircuitParams::for_node(TechnologyNode::N70),
        RefetchAccounting::DeadAware,
    );
    for mut bench in suite(Scale::Test) {
        let profile = profile_benchmark(&mut bench);
        for side in [Level1::Instruction, Level1::Data] {
            let dist = &profile.side(side).dist;
            let s = strict.evaluate(&OptHybrid::new(), dist).saving_fraction();
            let a = aware.evaluate(&OptHybrid::new(), dist).saving_fraction();
            assert!(a + 1e-12 >= s, "{}/{side}", profile.name);
            // And per the paper, the refinement is small in the optimal
            // case (well under ten percentage points).
            assert!(a - s < 0.10, "{}/{side}: dead refinement {}", profile.name, a - s);
        }
    }
}
