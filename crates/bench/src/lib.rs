//! Shared setup for the Criterion benches.
//!
//! Every bench that regenerates one of the paper's artifacts prints the
//! regenerated rows once (to stderr) before timing, so a `cargo bench`
//! log doubles as a record of the reproduced tables and figures. The
//! benches profile the workload suite at a reduced scale to keep wall
//! times reasonable; the `repro` binary is the tool for full-scale
//! regeneration.

use leakage_experiments::{profile_suite, BenchmarkProfile};
use leakage_workloads::Scale;
use std::sync::OnceLock;

/// The scale benches profile at (larger runs belong to `repro`).
pub const BENCH_SCALE: Scale = Scale::Small;

/// Profiles the suite once per process and shares it across benches.
pub fn shared_profiles() -> &'static [BenchmarkProfile] {
    static PROFILES: OnceLock<Vec<BenchmarkProfile>> = OnceLock::new();
    PROFILES.get_or_init(|| profile_suite(BENCH_SCALE))
}

/// Prints an artifact table once per process.
pub fn print_once(tables: &[leakage_experiments::Table]) {
    static PRINTED: OnceLock<()> = OnceLock::new();
    PRINTED.get_or_init(|| {
        for table in tables {
            eprintln!("{table}");
        }
    });
}
