//! Fig. 8: time the six-scheme comparison, printing both tables.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leakage_bench::{print_once, shared_profiles};
use leakage_cachesim::Level1;
use leakage_experiments::fig8;

fn bench(c: &mut Criterion) {
    let profiles = shared_profiles();
    let (icache, dcache) = fig8::generate(profiles);
    print_once(&[icache, dcache]);
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("all_schemes_icache", |b| {
        b.iter(|| black_box(fig8::series(profiles, Level1::Instruction)))
    });
    group.bench_function("all_schemes_dcache", |b| {
        b.iter(|| black_box(fig8::series(profiles, Level1::Data)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
