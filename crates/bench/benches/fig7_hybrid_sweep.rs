//! Fig. 7: time the minimum-sleep-interval sweep, printing both series.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leakage_bench::{print_once, shared_profiles};
use leakage_cachesim::Level1;
use leakage_experiments::fig7;

fn bench(c: &mut Criterion) {
    let profiles = shared_profiles();
    let (icache, dcache) = fig7::generate(profiles);
    print_once(&[icache, dcache]);
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("icache_series", |b| {
        b.iter(|| black_box(fig7::series(profiles, Level1::Instruction)))
    });
    group.bench_function("dcache_series", |b| {
        b.iter(|| black_box(fig7::series(profiles, Level1::Data)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
