//! Fig. 1, Fig. 10 and Table 3: profile-free artifacts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leakage_bench::print_once;
use leakage_experiments::{fig1, fig10, table3};

fn bench(c: &mut Criterion) {
    print_once(&[fig1::generate(), fig10::generate(), table3::generate()]);
    c.bench_function("fig1/itrs_projection", |b| b.iter(|| black_box(fig1::generate())));
    c.bench_function("fig10/envelope_series", |b| b.iter(|| black_box(fig10::generate())));
    c.bench_function("table3/definitions", |b| b.iter(|| black_box(table3::generate())));
}

criterion_group!(benches, bench);
criterion_main!(benches);
