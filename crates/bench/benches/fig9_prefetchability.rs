//! Fig. 9: time the banded prefetchability analysis, printing it.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leakage_bench::{print_once, shared_profiles};
use leakage_cachesim::Level1;
use leakage_experiments::fig9;

fn bench(c: &mut Criterion) {
    let profiles = shared_profiles();
    let (icache, dcache) = fig9::generate(profiles);
    print_once(&[icache, dcache]);
    let mut group = c.benchmark_group("fig9");
    group.bench_function("analyze_one_benchmark", |b| {
        b.iter(|| black_box(fig9::analyze(&profiles[0], Level1::Data)))
    });
    group.bench_function("suite_average_both_sides", |b| {
        b.iter(|| {
            black_box(fig9::average(profiles, Level1::Instruction));
            black_box(fig9::average(profiles, Level1::Data));
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
