//! Table 1: time the Eq. 3 inflection-point solve, printing the table.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leakage_bench::print_once;
use leakage_core::{CircuitParams, IntervalEnergyModel, TechnologyNode};
use leakage_experiments::table1;

fn bench(c: &mut Criterion) {
    print_once(&[table1::generate()]);
    c.bench_function("table1/solve_all_nodes", |b| {
        b.iter(|| {
            for node in TechnologyNode::ALL {
                let model = IntervalEnergyModel::new(CircuitParams::for_node(node));
                black_box(model.inflection_points());
            }
        })
    });
    c.bench_function("table1/full_table", |b| b.iter(|| black_box(table1::generate())));
}

criterion_group!(benches, bench);
criterion_main!(benches);
