//! Timeline-simulator throughput per controller.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leakage_core::{CircuitParams, TechnologyNode};
use leakage_online::{Controller, OnlineSink};
use leakage_trace::TraceSource;
use leakage_workloads::{gzip, Scale};

fn bench(c: &mut Criterion) {
    let params = CircuitParams::for_node(TechnologyNode::N70);
    let mut group = c.benchmark_group("online");
    group.sample_size(10);
    for controller in [
        Controller::decay(10_000),
        Controller::quantized_decay(10_000),
        Controller::periodic_drowsy(4_000),
        Controller::adaptive_decay(),
    ] {
        group.bench_function(controller.name(), |b| {
            b.iter(|| {
                let mut sink = OnlineSink::new(params.clone(), controller.clone());
                gzip(Scale::Test).run(&mut sink);
                black_box(sink.finish())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
