//! End-to-end pipeline throughput: workload generation, cache
//! simulation, interval extraction and prefetch analysis combined.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use leakage_experiments::{
    profile_benchmark, profile_suite, profile_suite_serial, profile_suite_uncached,
};
use leakage_trace::{TraceSink, TraceSource};
use leakage_workloads::{gzip, Scale};

struct CountingSink(u64);

impl TraceSink for CountingSink {
    fn accept(&mut self, _access: leakage_trace::MemoryAccess) {
        self.0 += 1;
    }
}

fn bench(c: &mut Criterion) {
    // How many accesses does one gzip Test run emit?
    let mut counter = CountingSink(0);
    gzip(Scale::Test).run(&mut counter);
    let accesses = counter.0;

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(accesses));
    group.bench_function("generate_only_gzip_test", |b| {
        b.iter(|| {
            let mut sink = CountingSink(0);
            gzip(Scale::Test).run(&mut sink);
            black_box(sink.0)
        })
    });
    group.bench_function("full_profile_gzip_test", |b| {
        b.iter(|| black_box(profile_benchmark(&mut gzip(Scale::Test))))
    });
    group.finish();

    // Serial vs rayon-parallel vs memoized suite profiling. The serial
    // and parallel variants bypass the ProfileStore so they re-simulate
    // every iteration; `memoized` pays one cold simulation per pair on
    // the first iteration and then serves Arc clones.
    let mut group = c.benchmark_group("suite");
    group.sample_size(10);
    group.bench_function("profile_all_six_serial", |b| {
        b.iter(|| black_box(profile_suite_serial(Scale::Test)))
    });
    group.bench_function("profile_all_six_parallel", |b| {
        b.iter(|| black_box(profile_suite_uncached(Scale::Test)))
    });
    group.bench_function("profile_all_six_memoized", |b| {
        b.iter(|| black_box(profile_suite(Scale::Test)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
