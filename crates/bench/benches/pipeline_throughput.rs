//! End-to-end pipeline throughput: workload generation, cache
//! simulation, interval extraction and prefetch analysis combined.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use leakage_experiments::profile_benchmark;
use leakage_trace::{TraceSink, TraceSource};
use leakage_workloads::{gzip, suite, Scale};

struct CountingSink(u64);

impl TraceSink for CountingSink {
    fn accept(&mut self, _access: leakage_trace::MemoryAccess) {
        self.0 += 1;
    }
}

fn bench(c: &mut Criterion) {
    // How many accesses does one gzip Test run emit?
    let mut counter = CountingSink(0);
    gzip(Scale::Test).run(&mut counter);
    let accesses = counter.0;

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(accesses));
    group.bench_function("generate_only_gzip_test", |b| {
        b.iter(|| {
            let mut sink = CountingSink(0);
            gzip(Scale::Test).run(&mut sink);
            black_box(sink.0)
        })
    });
    group.bench_function("full_profile_gzip_test", |b| {
        b.iter(|| black_box(profile_benchmark(&mut gzip(Scale::Test))))
    });
    group.finish();

    let mut group = c.benchmark_group("suite");
    group.sample_size(10);
    group.bench_function("profile_all_six_test_scale", |b| {
        b.iter(|| {
            for mut bench in suite(Scale::Test) {
                black_box(profile_benchmark(&mut bench));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
