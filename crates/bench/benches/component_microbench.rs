//! Microbenchmarks of the individual substrates.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use leakage_cachesim::{Cache, CacheConfig, FrameId};
use leakage_core::policy::{OptHybrid, PrefetchGuided, PrefetchScheme};
use leakage_core::{
    CircuitParams, EnergyContext, RefetchAccounting, TechnologyNode,
};
use leakage_intervals::{CompactIntervalDist, IntervalClass, IntervalExtractor, IntervalKind, WakeHints};
use leakage_prefetch::{NextLinePrefetcher, StridePrefetcher};
use leakage_trace::{Address, Cycle, LineAddr, Pc};
use leakage_workloads::SplitMix64;

const N: u64 = 100_000;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cachesim");
    group.throughput(Throughput::Elements(N));
    group.bench_function("l1d_mixed_access", |b| {
        b.iter(|| {
            let mut cache = Cache::new(CacheConfig::alpha_l1d());
            let mut rng = SplitMix64::new(1);
            for i in 0..N {
                // 75% hot set, 25% streaming.
                let line = if rng.chance(0.75) {
                    LineAddr::new(rng.below(256))
                } else {
                    LineAddr::new(10_000 + i)
                };
                black_box(cache.access(line));
            }
            black_box(cache.stats().hits)
        })
    });
    group.finish();
}

fn bench_extractor(c: &mut Criterion) {
    let mut group = c.benchmark_group("intervals");
    group.throughput(Throughput::Elements(N));
    group.bench_function("extract_into_compact_dist", |b| {
        b.iter(|| {
            let mut extractor = IntervalExtractor::new(1024);
            let mut dist = CompactIntervalDist::new();
            let mut rng = SplitMix64::new(2);
            for i in 0..N {
                let frame = FrameId::new(rng.below(1024) as u32);
                extractor.on_access(frame, Cycle::new(i * 3), rng.chance(0.9), &mut dist);
            }
            extractor.finish(Cycle::new(N * 3), &mut dist);
            black_box(dist.num_classes())
        })
    });
    group.finish();
}

fn bench_prefetchers(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefetch");
    group.throughput(Throughput::Elements(N));
    group.bench_function("next_line", |b| {
        b.iter(|| {
            let mut p = NextLinePrefetcher::new();
            for i in 0..N {
                black_box(p.observe(LineAddr::new(i / 4)));
            }
            p.triggers()
        })
    });
    group.bench_function("stride_table", |b| {
        b.iter(|| {
            let mut p = StridePrefetcher::new(1024);
            for i in 0..N {
                let pc = Pc::new((i % 64) * 4);
                black_box(p.observe(pc, Address::new(i * 128)));
            }
            p.triggers()
        })
    });
    group.finish();
}

fn bench_policy_eval(c: &mut Criterion) {
    // A representative distribution with 10K classes.
    let mut dist = CompactIntervalDist::new();
    let mut rng = SplitMix64::new(3);
    for _ in 0..10_000 {
        dist.add(
            IntervalClass {
                length: rng.below(1_000_000),
                kind: IntervalKind::Interior {
                    reaccess: rng.chance(0.8),
                },
                wake: WakeHints {
                    next_line: rng.chance(0.3),
                    stride: rng.chance(0.05),
                },
                dirty: false,
            },
            1 + rng.below(100),
        );
    }
    let ctx = EnergyContext::new(
        CircuitParams::for_node(TechnologyNode::N70),
        RefetchAccounting::PaperStrict,
    );
    let mut group = c.benchmark_group("policy");
    group.throughput(Throughput::Elements(dist.num_classes() as u64));
    group.bench_function("opt_hybrid_over_10k_classes", |b| {
        b.iter(|| black_box(ctx.evaluate(&OptHybrid::new(), &dist)))
    });
    group.bench_function("prefetch_b_over_10k_classes", |b| {
        b.iter(|| {
            black_box(ctx.evaluate(&PrefetchGuided::new(PrefetchScheme::B), &dist))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_extractor,
    bench_prefetchers,
    bench_policy_eval
);
criterion_main!(benches);
