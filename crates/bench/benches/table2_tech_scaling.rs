//! Table 2: time the four-node optimal-savings evaluation, printing it.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leakage_bench::{print_once, shared_profiles};
use leakage_core::TechnologyNode;
use leakage_experiments::table2;

fn bench(c: &mut Criterion) {
    let profiles = shared_profiles();
    print_once(&[table2::generate(profiles)]);
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("node_savings_70nm", |b| {
        b.iter(|| black_box(table2::node_savings(TechnologyNode::N70, profiles)))
    });
    group.bench_function("full_table_all_nodes", |b| {
        b.iter(|| black_box(table2::generate(profiles)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
