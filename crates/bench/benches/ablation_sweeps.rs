//! The beyond-the-paper ablations, timed and printed.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leakage_bench::{print_once, shared_profiles};
use leakage_experiments::ablations;

fn bench(c: &mut Criterion) {
    let profiles = shared_profiles();
    print_once(&[
        ablations::dead_intervals(profiles),
        ablations::power_ratios(profiles),
        ablations::transition_models(profiles),
        ablations::prefetch_frontier(profiles),
        ablations::calibration_consistency(),
    ]);
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("dead_intervals", |b| {
        b.iter(|| black_box(ablations::dead_intervals(profiles)))
    });
    group.bench_function("power_ratio_grid", |b| {
        b.iter(|| black_box(ablations::power_ratios(profiles)))
    });
    group.bench_function("transition_models", |b| {
        b.iter(|| black_box(ablations::transition_models(profiles)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
