//! Satellite coverage: the metrics registry and span profile under
//! concurrency.

use leakage_telemetry as telemetry;
use rayon::prelude::*;
use telemetry::{counter, gauge, histogram};

/// Concurrent counter increments under a rayon fan-out sum exactly:
/// no lost updates, no double counts.
#[test]
fn concurrent_counter_increments_sum_exactly() {
    const TASKS: usize = 64;
    const PER_TASK: u64 = 1_000;
    (0..TASKS).into_par_iter().for_each(|_| {
        for _ in 0..PER_TASK {
            counter!("registry_test_fanout_total").inc();
        }
    });
    assert_eq!(
        telemetry::registry().counter("registry_test_fanout_total").get(),
        TASKS as u64 * PER_TASK
    );
}

/// Striped counters lose no updates under a rayon fan-out and are
/// visible through the merged snapshot (and hence the Prometheus
/// exporter).
#[test]
fn concurrent_striped_counter_sums_exactly() {
    const TASKS: usize = 64;
    const PER_TASK: u64 = 1_000;
    (0..TASKS).into_par_iter().for_each(|_| {
        for _ in 0..PER_TASK {
            telemetry::striped_counter!("registry_test_striped_total").inc();
        }
    });
    assert_eq!(
        telemetry::registry()
            .striped_counter("registry_test_striped_total")
            .get(),
        TASKS as u64 * PER_TASK
    );
    let snap = telemetry::registry().snapshot();
    assert!(
        snap.counters
            .iter()
            .any(|(name, v)| name == "registry_test_striped_total"
                && *v == TASKS as u64 * PER_TASK),
        "striped counter missing from merged snapshot"
    );
}

/// Gauge `set_max` keeps the peak under parallel writers.
#[test]
fn gauge_set_max_tracks_peak_across_threads() {
    (0..64usize).into_par_iter().for_each(|i| {
        gauge!("registry_test_peak").set_max(i as u64);
    });
    assert_eq!(telemetry::registry().gauge("registry_test_peak").get(), 63);
}

/// Bucket boundaries as documented: upper bounds inclusive, lower
/// bounds exclusive, overflow above the last bound.
#[test]
fn histogram_bounds_inclusive_upper_exclusive_lower() {
    let h = histogram!("registry_test_edges", &[10, 100, 1000]);
    for value in [0, 9, 10] {
        h.record(value); // all ≤ 10 → bucket 0
    }
    for value in [11, 100] {
        h.record(value); // 10 < v ≤ 100 → bucket 1
    }
    h.record(101); // bucket 2
    h.record(1000); // still bucket 2 (inclusive upper)
    h.record(1001); // overflow
    let snap = h.snapshot();
    assert_eq!(snap.bounds, vec![10, 100, 1000]);
    assert_eq!(snap.counts, vec![3, 2, 2, 1]);
    assert_eq!(snap.count, 8);
    assert_eq!(snap.sum, 0 + 9 + 10 + 11 + 100 + 101 + 1000 + 1001);
}

/// Histogram totals survive a rayon fan-out.
#[test]
fn histogram_concurrent_records_sum_exactly() {
    (0..32usize).into_par_iter().for_each(|i| {
        for _ in 0..100 {
            histogram!("registry_test_concurrent", &[16]).record(i as u64);
        }
    });
    let snap = telemetry::registry()
        .histogram("registry_test_concurrent", &[16])
        .snapshot();
    assert_eq!(snap.count, 3200);
    assert_eq!(snap.counts.iter().sum::<u64>(), 3200);
    // 17 of the 32 values (0..=16) are ≤ 16.
    assert_eq!(snap.counts[0], 1700);
}

/// Span nesting reconstructs the correct parent tree even when the
/// children run on rayon worker threads with empty span stacks.
#[test]
fn span_nesting_reconstructs_parent_tree_across_workers() {
    telemetry::set_enabled(true);
    {
        let _root = telemetry::span("registry_test_suite");
        let parent = telemetry::current_path().expect("root span open");
        assert!(parent.ends_with("registry_test_suite"));
        ["gzip", "gcc", "mesa"].par_iter().for_each(|bench| {
            let _bench = telemetry::span_under(&parent, bench);
            let _side = telemetry::span("extract");
        });
    }

    let tree = telemetry::span_tree();
    let suite = tree
        .iter()
        .find(|node| node.name == "registry_test_suite")
        .expect("suite node present");
    assert_eq!(suite.stat.calls, 1);
    assert_eq!(suite.children.len(), 3, "{:?}", suite.children);
    for bench in ["gcc", "gzip", "mesa"] {
        let child = suite
            .children
            .iter()
            .find(|node| node.name == bench)
            .unwrap_or_else(|| panic!("{bench} under suite"));
        assert_eq!(child.stat.calls, 1);
        assert_eq!(child.path, format!("registry_test_suite/{bench}"));
        assert_eq!(child.children.len(), 1);
        assert_eq!(child.children[0].name, "extract");
        assert_eq!(child.children[0].stat.calls, 1);
    }

    // The flat report carries the same paths.
    let report = telemetry::span_report();
    assert!(report
        .iter()
        .any(|(path, stat)| path == "registry_test_suite/gzip/extract" && stat.calls == 1));
}
