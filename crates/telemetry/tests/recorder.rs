//! Flight-recorder integration tests: seqlock consistency under
//! concurrent writers/readers, ring wraparound, and slow/error
//! reservoir retention.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use leakage_telemetry::recorder::SLOW_TOP_K;
use leakage_telemetry::{FlightRecorder, RequestRecord, FLAG_PANIC, FLAG_SHED};

/// A record whose every field is derived from its trace id, so a
/// reader can detect any cross-record mixing.
fn derived(id: u64) -> RequestRecord {
    let seed = id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    RequestRecord {
        trace_id: id,
        end_us: seed,
        route: (seed >> 8) as u8,
        flags: (seed >> 16) as u8,
        status: (seed >> 24) as u16,
        req_bytes: (seed >> 3) as u32,
        resp_bytes: (seed >> 5) as u32,
        total_us: (seed >> 7) as u32,
        parse_us: (seed >> 11) as u32,
        queue_us: (seed >> 13) as u32,
        permit_us: (seed >> 17) as u32,
        handler_us: (seed >> 19) as u32,
        store_us: (seed >> 23) as u32,
        serialize_us: (seed >> 29) as u32,
        write_us: (seed >> 31) as u32,
    }
}

/// Seqlock validation: hammer a small ring from several writer
/// threads while readers continuously snapshot it. Every surfaced
/// record must be internally consistent (all fields derived from its
/// trace id) — a torn read would mix words from two records.
#[test]
fn concurrent_writers_never_surface_torn_records() {
    let recorder = Arc::new(FlightRecorder::new(64));
    let stop = Arc::new(AtomicBool::new(false));
    let writers: u64 = 4;
    let per_writer: u64 = 20_000;

    let mut handles = Vec::new();
    for w in 0..writers {
        let recorder = Arc::clone(&recorder);
        handles.push(thread::spawn(move || {
            for i in 0..per_writer {
                recorder.record(&derived(w * per_writer + i + 1));
            }
        }));
    }

    let mut readers = Vec::new();
    for _ in 0..2 {
        let recorder = Arc::clone(&recorder);
        let stop = Arc::clone(&stop);
        readers.push(thread::spawn(move || {
            let mut seen = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for rec in recorder.recent(64) {
                    assert_eq!(
                        rec,
                        derived(rec.trace_id),
                        "torn record surfaced for trace id {}",
                        rec.trace_id
                    );
                    seen += 1;
                }
            }
            seen
        }));
    }

    for handle in handles {
        handle.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let mut validated = 0;
    for reader in readers {
        validated += reader.join().unwrap();
    }
    assert!(validated > 0, "readers validated no records");
    assert_eq!(
        recorder.recorded_total(),
        writers * per_writer,
        "every write must claim exactly one ticket"
    );
}

#[test]
fn ring_wraps_and_keeps_only_the_newest() {
    let recorder = FlightRecorder::new(8);
    for id in 1..=20u64 {
        recorder.record(&derived(id));
    }
    let recent = recorder.recent(100);
    let ids: Vec<u64> = recent.iter().map(|r| r.trace_id).collect();
    assert_eq!(ids, vec![20, 19, 18, 17, 16, 15, 14, 13]);
    for rec in &recent {
        assert_eq!(*rec, derived(rec.trace_id));
    }
}

#[test]
fn reservoir_always_retains_errors_and_top_k() {
    let recorder = FlightRecorder::new(8);
    // 200 fast successes push everything interesting out of the ring...
    for id in 1..=200u64 {
        recorder.record(&RequestRecord {
            trace_id: id,
            total_us: 10,
            status: 200,
            ..RequestRecord::default()
        });
    }
    // ...but a 500, a shed, a panic, and one slow request recorded
    // *before* that flood must survive in the reservoir.
    let recorder2 = FlightRecorder::new(8);
    recorder2.record(&RequestRecord {
        trace_id: 900,
        status: 500,
        total_us: 5,
        ..RequestRecord::default()
    });
    recorder2.record(&RequestRecord {
        trace_id: 901,
        status: 503,
        flags: FLAG_SHED,
        total_us: 1,
        ..RequestRecord::default()
    });
    recorder2.record(&RequestRecord {
        trace_id: 902,
        status: 500,
        flags: FLAG_PANIC,
        total_us: 2,
        ..RequestRecord::default()
    });
    recorder2.record(&RequestRecord {
        trace_id: 903,
        status: 200,
        total_us: 50_000,
        ..RequestRecord::default()
    });
    for id in 1..=200u64 {
        recorder2.record(&RequestRecord {
            trace_id: id,
            total_us: 10,
            status: 200,
            ..RequestRecord::default()
        });
    }
    assert_eq!(recorder2.recent(1000).len(), 8, "ring holds only 8");
    let (top, errors) = recorder2.slow();
    let error_ids: Vec<u64> = errors.iter().map(|r| r.trace_id).collect();
    assert!(error_ids.contains(&900), "5xx retained: {error_ids:?}");
    assert!(error_ids.contains(&901), "shed retained: {error_ids:?}");
    assert!(error_ids.contains(&902), "panic retained: {error_ids:?}");
    assert_eq!(top[0].trace_id, 903, "slowest request leads the top-K");
    assert!(top.len() <= SLOW_TOP_K);
    let totals: Vec<u32> = top.iter().map(|r| r.total_us).collect();
    let mut sorted = totals.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    assert_eq!(totals, sorted, "top-K is sorted slowest-first");
}

/// The rolling-window view only returns records newer than the cutoff.
#[test]
fn window_filters_on_end_us() {
    let recorder = FlightRecorder::new(16);
    let early = recorder.now_us();
    recorder.record(&RequestRecord {
        trace_id: 1,
        end_us: early,
        ..RequestRecord::default()
    });
    thread::sleep(Duration::from_millis(5));
    let cutoff = recorder.now_us();
    recorder.record(&RequestRecord {
        trace_id: 2,
        end_us: recorder.now_us(),
        ..RequestRecord::default()
    });
    let ids: Vec<u64> = recorder.window(cutoff).iter().map(|r| r.trace_id).collect();
    assert_eq!(ids, vec![2]);
    assert_eq!(recorder.window(0).len(), 2);
}

/// Sanity-check the write cost stays in "one slot store" territory:
/// this is a smoke bound (debug builds, shared CI), not a benchmark.
#[test]
fn record_cost_smoke() {
    let recorder = FlightRecorder::new(4096);
    let rec = derived(42);
    let started = Instant::now();
    let n = 100_000u32;
    for _ in 0..n {
        recorder.record(&rec);
    }
    let per = started.elapsed().as_nanos() / u128::from(n);
    assert!(per < 20_000, "record() took {per}ns — far beyond a slot store");
}
