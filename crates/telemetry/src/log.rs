//! Leveled stderr logging filtered by `LEAKAGE_LOG`.
//!
//! The default level is [`Level::Warn`], so routine diagnostics
//! (`info!`/`debug!`) stay quiet unless the user opts in with
//! `LEAKAGE_LOG=info` or `LEAKAGE_LOG=debug`. `LEAKAGE_LOG=off`
//! silences everything, including errors (useful in benchmarks).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or data-invalidating problems.
    Error = 0,
    /// Suspicious conditions a run can survive.
    Warn = 1,
    /// Progress reporting (stage start/finish, file writes).
    Info = 2,
    /// High-volume tracing for debugging.
    Debug = 3,
}

/// Sentinel above every level: nothing passes the filter.
const OFF: u8 = 4;

fn parse(value: &str) -> u8 {
    match value.to_ascii_lowercase().as_str() {
        "error" => Level::Error as u8,
        "warn" | "warning" => Level::Warn as u8,
        "info" => Level::Info as u8,
        "debug" => Level::Debug as u8,
        "off" | "none" => OFF,
        _ => Level::Warn as u8,
    }
}

fn filter() -> &'static AtomicU8 {
    static FILTER: OnceLock<AtomicU8> = OnceLock::new();
    FILTER.get_or_init(|| {
        let initial = match std::env::var(crate::LOG_ENV) {
            Ok(value) if !value.is_empty() => parse(&value),
            _ => Level::Warn as u8,
        };
        AtomicU8::new(initial)
    })
}

/// Whether a message at `level` passes the current filter. The macros
/// call this, so formatting cost is only paid for messages that print.
pub fn log_enabled(level: Level) -> bool {
    let current = filter().load(Ordering::Relaxed);
    current != OFF && level as u8 <= current
}

/// Overrides the filter at runtime (e.g. from a `--verbose` flag);
/// `None` means off.
pub fn set_log_level(level: Option<Level>) {
    filter().store(level.map_or(OFF, |l| l as u8), Ordering::Relaxed);
}

/// Logs at [`Level::Error`] to stderr.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Error) {
            eprintln!("[error] {}", format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`] to stderr.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Warn) {
            eprintln!("[warn] {}", format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`] to stderr.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Info) {
            eprintln!("[info] {}", format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`] to stderr.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Debug) {
            eprintln!("[debug] {}", format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_parse() {
        assert!(Level::Error < Level::Debug);
        assert_eq!(parse("DEBUG"), Level::Debug as u8);
        assert_eq!(parse("bogus"), Level::Warn as u8);
        assert_eq!(parse("off"), OFF);
    }

    #[test]
    fn set_level_filters() {
        set_log_level(Some(Level::Info));
        assert!(log_enabled(Level::Info));
        assert!(!log_enabled(Level::Debug));
        set_log_level(None);
        assert!(!log_enabled(Level::Error));
        set_log_level(Some(Level::Warn));
    }
}
