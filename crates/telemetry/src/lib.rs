//! Observability for the leakage-limit pipeline: a metrics registry,
//! scoped span timers, leveled logging, and run manifests.
//!
//! The crate is dependency-free (it must build under the
//! vendored-offline constraint) and cheap enough for per-access hot
//! loops:
//!
//! * **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]) are relaxed
//!   atomics. Call sites cache their handle through the [`counter!`],
//!   [`gauge!`] and [`histogram!`] macros, so the steady-state cost of
//!   an increment is one `OnceLock` load plus one relaxed
//!   `fetch_add`. Metrics are always live — they are bookkeeping, not
//!   tracing — and a process-wide [`registry`] enumerates them for
//!   export.
//!
//! * **Spans** ([`span`], [`span_under`]) are wall-time scopes that
//!   aggregate into a hierarchical profile keyed by slash-joined
//!   paths (`suite/gzip/simulate`). Each thread keeps its own span
//!   stack; a parent path captured with [`current_path`] before a
//!   rayon fan-out lets worker threads attach under the spawning
//!   scope via [`span_under`]. When telemetry is disabled (the
//!   default), [`span`] takes no timestamp, touches no lock, and
//!   returns an inert guard — a single relaxed load and branch.
//!
//! * **Logging** ([`error!`], [`warn!`], [`info!`], [`debug!`]) is
//!   filtered by the `LEAKAGE_LOG` environment variable
//!   (`error|warn|info|debug|off`); the default is `warn`, keeping
//!   normal runs quiet.
//!
//! * **Flight recorder** ([`FlightRecorder`]) is a fixed-capacity
//!   seqlock ring of per-request [`RequestRecord`]s plus an
//!   always-retained slow/error reservoir, sized by
//!   `LEAKAGE_RECORDER_CAP`. One `fetch_add` and eight relaxed stores
//!   per request; readers skip (never tear) slots being overwritten.
//!
//! * **Run manifests** ([`RunManifest`]) bundle free-form config
//!   key/values and per-experiment pass/fail verdicts with a snapshot
//!   of the registry and the span profile, serialized to JSON (no
//!   serde — the writer is in-crate) or exported in Prometheus text
//!   format ([`prometheus_text`]).
//!
//! Emission is controlled by `LEAKAGE_TELEMETRY=json|prom|off`
//! ([`emission_mode`]); [`set_enabled`] turns span collection on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
mod log;
mod manifest;
mod metrics;
mod prom;
pub mod recorder;
mod span;

pub use log::{log_enabled, set_log_level, Level};
pub use manifest::RunManifest;
pub use metrics::{
    registry, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
    StripedCounter, COUNTER_STRIPES,
};
pub use prom::prometheus_text;
pub use recorder::{
    FlightRecorder, RequestRecord, FLAG_CACHE_HIT, FLAG_CATALOG_HIT, FLAG_PANIC, FLAG_SHED,
};
pub use span::{current_path, span, span_under, span_report, span_tree, SpanGuard, SpanNode, SpanStat};

use std::sync::atomic::{AtomicBool, Ordering};

/// Environment variable selecting the emission mode (`json`, `prom`,
/// or `off`). Unset or unrecognized values mean [`Mode::Off`].
pub const TELEMETRY_ENV: &str = "LEAKAGE_TELEMETRY";

/// Environment variable selecting the log level filter
/// (`error|warn|info|debug|off`); default `warn`.
pub const LOG_ENV: &str = "LEAKAGE_LOG";

/// How (and whether) collected telemetry should be emitted at the end
/// of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Write the run manifest (registry snapshot, span profile,
    /// verdicts) as JSON.
    Json,
    /// Export the registry in Prometheus text format.
    Prom,
    /// Collect nothing, emit nothing (the default).
    Off,
}

/// Parses [`TELEMETRY_ENV`]. Unset, empty, or unrecognized → `Off`.
pub fn emission_mode() -> Mode {
    match std::env::var(TELEMETRY_ENV) {
        Ok(value) => match value.to_ascii_lowercase().as_str() {
            "json" => Mode::Json,
            "prom" | "prometheus" => Mode::Prom,
            _ => Mode::Off,
        },
        Err(_) => Mode::Off,
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns span collection on or off process-wide. Metrics are always
/// live; only span timers (the part that takes timestamps and locks)
/// are gated.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether span collection is currently on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}
