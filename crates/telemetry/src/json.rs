//! A minimal JSON writer (the workspace's serde is an offline marker
//! stub, so serialization is hand-rolled here).

/// Escapes `s` as JSON string *contents* (no surrounding quotes).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `"key": ` fragment.
pub(crate) fn key(name: &str) -> String {
    format!("\"{}\": ", escape(name))
}

/// A quoted JSON string.
pub(crate) fn string(value: &str) -> String {
    format!("\"{}\"", escape(value))
}

/// Joins already-serialized items into a JSON array.
pub(crate) fn array(items: impl IntoIterator<Item = String>) -> String {
    let body: Vec<String> = items.into_iter().collect();
    format!("[{}]", body.join(", "))
}

/// Joins already-serialized `"key": value` members into a JSON object.
pub(crate) fn object(members: impl IntoIterator<Item = String>) -> String {
    let body: Vec<String> = members.into_iter().collect();
    format!("{{{}}}", body.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn builds_nested_documents() {
        let doc = object([
            key("a") + &string("x"),
            key("b") + &array(["1".to_string(), "2".to_string()]),
        ]);
        assert_eq!(doc, "{\"a\": \"x\", \"b\": [1, 2]}");
    }
}
