//! A minimal JSON writer **and reader** (the workspace's serde is an
//! offline marker stub, so serialization is hand-rolled here).
//!
//! The writer half ([`escape`], [`key`], [`string`], [`array`],
//! [`object`]) composes already-serialized fragments into documents;
//! it is the single canonical encoder shared by the run manifest, the
//! experiment tables, and the analysis server. The reader half
//! ([`parse`], [`Json`]) is a small recursive-descent parser used for
//! round-trip tests and for decoding request bodies — it accepts
//! exactly the documents the writer produces (plus ordinary JSON
//! whitespace and escapes).

/// Escapes `s` as JSON string *contents* (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `"key": ` fragment.
pub fn key(name: &str) -> String {
    format!("\"{}\": ", escape(name))
}

/// A quoted JSON string.
pub fn string(value: &str) -> String {
    format!("\"{}\"", escape(value))
}

/// Joins already-serialized items into a JSON array.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let body: Vec<String> = items.into_iter().collect();
    format!("[{}]", body.join(", "))
}

/// Joins already-serialized `"key": value` members into a JSON object.
pub fn object(members: impl IntoIterator<Item = String>) -> String {
    let body: Vec<String> = members.into_iter().collect();
    format!("{{{}}}", body.join(", "))
}

/// A parsed JSON value. Numbers are `f64` (every number this
/// workspace round-trips — counts, percentages, cycle budgets — fits
/// without loss at the precisions we print); object member order is
/// preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Why a document failed to parse: a byte offset and a reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// A [`JsonError`] locating the first offending byte.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &str) -> JsonError {
        JsonError { at: self.pos, reason: reason.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let name = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            members.push((name, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not produced by the writer;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // boundary math is safe).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = text.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII digits are UTF-8");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { at: start, reason: format!("bad number {text:?}") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn builds_nested_documents() {
        let doc = object([
            key("a") + &string("x"),
            key("b") + &array(["1".to_string(), "2".to_string()]),
        ]);
        assert_eq!(doc, "{\"a\": \"x\", \"b\": [1, 2]}");
    }

    #[test]
    fn parses_what_the_writer_emits() {
        let doc = object([
            key("name") + &string("tab\"le"),
            key("count") + "3",
            key("ok") + "true",
            key("none") + "null",
            key("xs") + &array(["1.5".to_string(), string("two")]),
        ]);
        let parsed = parse(&doc).unwrap();
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("tab\"le"));
        assert_eq!(parsed.get("count").unwrap().as_f64(), Some(3.0));
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(parsed.get("none"), Some(&Json::Null));
        let xs = parsed.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs[0].as_f64(), Some(1.5));
        assert_eq!(xs[1].as_str(), Some("two"));
    }

    #[test]
    fn parses_whitespace_nesting_and_unicode() {
        let parsed = parse(" { \"a\" : [ { \"b\" : -2e3 } ] , \"s\": \"caf\\u00e9é\" } ").unwrap();
        let inner = &parsed.get("a").unwrap().as_array().unwrap()[0];
        assert_eq!(inner.get("b").unwrap().as_f64(), Some(-2000.0));
        assert_eq!(parsed.get("s").unwrap().as_str(), Some("caféé"));
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated", "{'a':1}"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
        let err = parse("[1, ?]").unwrap_err();
        assert!(err.to_string().contains("byte 4"), "{err}");
    }

    #[test]
    fn accessors_reject_wrong_shapes() {
        let n = Json::Num(1.0);
        assert_eq!(n.get("x"), None);
        assert_eq!(n.as_str(), None);
        assert_eq!(n.as_array(), None);
        assert_eq!(Json::Str("s".into()).as_f64(), None);
    }
}
