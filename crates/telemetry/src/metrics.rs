//! The metrics registry: counters, gauges, fixed-bucket histograms.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// A monotonically increasing counter (relaxed atomics — safe to bump
/// from any thread, including rayon workers).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh, unregistered counter at zero. Use
    /// [`Registry::counter`] (or the [`counter!`](crate::counter)
    /// macro) for registered ones.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// How many cache-line-padded stripes a [`StripedCounter`] spreads
/// its increments across.
pub const COUNTER_STRIPES: usize = 8;

/// One cache line's worth of counter, so neighbouring stripes never
/// share a line (no false sharing between writer threads).
#[derive(Default)]
#[repr(align(64))]
struct Stripe {
    value: AtomicU64,
}

/// A write-scalable counter: increments land on a per-thread stripe
/// (each on its own cache line), reads sum the stripes.
///
/// Use it for counters bumped on every request from many threads at
/// once — a plain [`Counter`] serializes those threads on one cache
/// line. Reads are O([`COUNTER_STRIPES`]) and relaxed, which is fine
/// for metrics: exact once writers quiesce, monotone always.
#[derive(Default)]
pub struct StripedCounter {
    stripes: [Stripe; COUNTER_STRIPES],
}

impl StripedCounter {
    /// A fresh, unregistered striped counter at zero. Use
    /// [`Registry::striped_counter`] for registered ones.
    pub fn new() -> Self {
        StripedCounter::default()
    }

    /// The stripe index for the calling thread: assigned round-robin
    /// on first use and cached in a thread-local, so a thread always
    /// hits the same line.
    fn stripe(&self) -> &AtomicU64 {
        use std::cell::Cell;
        static NEXT: AtomicU64 = AtomicU64::new(0);
        thread_local! {
            static INDEX: Cell<usize> = Cell::new(usize::MAX);
        }
        let index = INDEX.with(|slot| {
            let mut index = slot.get();
            if index == usize::MAX {
                index = (NEXT.fetch_add(1, Ordering::Relaxed) as usize) % COUNTER_STRIPES;
                slot.set(index);
            }
            index
        });
        &self.stripes[index].value
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.stripe().fetch_add(n, Ordering::Relaxed);
    }

    /// Current value: the sum over all stripes.
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.value.load(Ordering::Relaxed))
            .sum()
    }
}

/// A last-write-wins (or running-maximum) gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Raises the gauge to `value` if it is higher than the current
    /// reading — the idiom for peak-tracking (e.g. peak interval-set
    /// cardinality).
    pub fn set_max(&self, value: u64) {
        self.value.fetch_max(value, Ordering::Relaxed);
    }

    /// Adds `n` — for level-tracking gauges (in-flight requests, queue
    /// depths) that move both ways.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero (a racy decrement below zero
    /// clamps rather than wrapping to 2^64).
    pub fn sub(&self, n: u64) {
        let mut current = self.value.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(n);
            match self.value.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed upper bounds.
///
/// Bucket semantics (the satellite contract, tested in
/// `tests/registry.rs`): a value `v` lands in the first bucket whose
/// bound `b` satisfies `v <= b` — upper bounds are **inclusive**,
/// lower bounds **exclusive** (bucket `i > 0` holds
/// `bounds[i-1] < v <= bounds[i]`). Values above the last bound land
/// in the overflow bucket, reported as `+Inf` by the Prometheus
/// exporter.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` slots; the last is the overflow bucket.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A fresh, unregistered histogram. `bounds` must be strictly
    /// increasing.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing: {bounds:?}"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let slot = self.bounds.partition_point(|&bound| bound < value);
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// The configured upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// A consistent-enough snapshot (relaxed reads; exact once writers
    /// quiesce).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Upper bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1`, the last
    /// being the overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

/// Point-in-time copy of the whole registry, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, u64)>,
    /// Histogram snapshots by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// A name-keyed collection of metrics. One process-wide instance lives
/// behind [`registry`]; tests may build private ones.
///
/// Lock poisoning is recovered, not propagated: the maps only ever
/// hold `Arc` handles (inserts cannot half-complete), so a thread that
/// panicked while registering leaves the registry fully usable, and
/// metrics keep flowing from the surviving benchmark tasks.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    striped: Mutex<BTreeMap<String, Arc<StripedCounter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use. Handles are
    /// shared: every caller asking for the same name increments the
    /// same counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The striped counter named `name`, created on first use. Lives
    /// in its own namespace map but is reported alongside plain
    /// counters in [`Registry::snapshot`] — don't register the same
    /// name as both kinds (the snapshot would carry it twice).
    pub fn striped_counter(&self, name: &str) -> Arc<StripedCounter> {
        let mut map = self.striped.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use with `bounds`.
    /// Later callers get the existing histogram regardless of the
    /// bounds they pass (first creation wins).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Snapshot of every registered metric, sorted by name. Striped
    /// counters are summed and merged into the plain-counter list, so
    /// exporters need not know which flavor a call site picked.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        counters.extend(
            self.striped
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(name, c)| (name.clone(), c.get())),
        );
        counters.sort();
        MetricsSnapshot {
            counters,
            gauges: self
                .gauges
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A lazily-initialized `&'static`-cached handle to a named global
/// counter: `counter!("profile_store_hits_total").inc()`. The handle
/// is resolved once per call site; steady-state cost is one `OnceLock`
/// load plus a relaxed `fetch_add`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// Like [`counter!`] for [`StripedCounter`]s — the flavor for
/// counters bumped on every request from many threads:
/// `striped_counter!("server_requests_total").inc()`.
#[macro_export]
macro_rules! striped_counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::StripedCounter>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::registry().striped_counter($name))
    }};
}

/// Like [`counter!`] for gauges: `gauge!("peak_classes").set_max(n)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// Like [`counter!`] for histograms; the bounds are used on first
/// resolution only: `histogram!("stage_ms", &[1, 10, 100]).record(v)`.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $bounds:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::registry().histogram($name, $bounds))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let registry = Registry::new();
        let c = registry.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(registry.counter("c").get(), 5);

        let g = registry.gauge("g");
        g.set(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set_max(9);
        assert_eq!(g.get(), 9);
        g.add(2);
        assert_eq!(g.get(), 11);
        g.sub(5);
        assert_eq!(g.get(), 6);
        g.sub(100);
        assert_eq!(g.get(), 0, "sub saturates at zero");
    }

    #[test]
    fn histogram_bucket_edges() {
        let h = Histogram::new(&[10, 100]);
        h.record(10); // inclusive upper → first bucket
        h.record(11); // exclusive lower → second bucket
        h.record(100);
        h.record(101); // overflow
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![1, 2, 1]);
        assert_eq!(snap.sum, 10 + 11 + 100 + 101);
        assert_eq!(snap.count, 4);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[10, 10]);
    }

    #[test]
    fn snapshot_sorted_by_name() {
        let registry = Registry::new();
        registry.counter("zed").inc();
        registry.counter("abc").add(2);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters,
            vec![("abc".to_string(), 2), ("zed".to_string(), 1)]
        );
    }

    #[test]
    fn striped_counter_sums_across_threads() {
        let registry = Registry::new();
        let striped = registry.striped_counter("s");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let striped = Arc::clone(&striped);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        striped.inc();
                    }
                    striped.add(5);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(striped.get(), 4 * 1005);
        assert_eq!(registry.striped_counter("s").get(), 4 * 1005);
    }

    #[test]
    fn snapshot_merges_striped_into_counters_sorted() {
        let registry = Registry::new();
        registry.counter("plain").add(1);
        registry.striped_counter("a_striped").add(7);
        registry.striped_counter("z_striped").add(9);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters,
            vec![
                ("a_striped".to_string(), 7),
                ("plain".to_string(), 1),
                ("z_striped".to_string(), 9),
            ]
        );
    }

    #[test]
    fn macros_share_one_metric_per_name() {
        counter!("metrics_test_shared_total").add(2);
        counter!("metrics_test_shared_total").add(3);
        assert_eq!(registry().counter("metrics_test_shared_total").get(), 5);
    }
}
