//! Scoped span timers aggregating into a hierarchical wall-time
//! profile.
//!
//! Spans are identified by slash-joined paths. Each thread keeps a
//! stack of open span paths; [`span`] nests under the top of the
//! current thread's stack, and [`span_under`] nests under an
//! explicitly captured parent path — the mechanism that carries the
//! hierarchy across a rayon fan-out, where worker threads start with
//! empty stacks:
//!
//! ```
//! leakage_telemetry::set_enabled(true);
//! let _suite = leakage_telemetry::span("suite");
//! let parent = leakage_telemetry::current_path().unwrap();
//! // inside a rayon worker:
//! let _bench = leakage_telemetry::span_under(&parent, "gzip");
//! ```
//!
//! Aggregation is by path: every execution of `suite/gzip` adds to one
//! [`SpanStat`], so repeated stages report call counts and cumulative
//! wall time, and [`span_tree`] reconstructs the parent tree.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Separator between path components. Span names must not contain it.
pub const PATH_SEP: char = '/';

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed executions.
    pub calls: u64,
    /// Cumulative wall time, nanoseconds.
    pub total_nanos: u128,
}

impl SpanStat {
    /// Cumulative wall time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_nanos as f64 / 1e6
    }
}

/// One node of the reconstructed span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Final path component (the name passed to [`span`]).
    pub name: String,
    /// Full slash-joined path.
    pub path: String,
    /// Aggregated stats for this exact path.
    pub stat: SpanStat,
    /// Child spans, sorted by name.
    pub children: Vec<SpanNode>,
}

fn totals() -> &'static Mutex<BTreeMap<String, SpanStat>> {
    static TOTALS: OnceLock<Mutex<BTreeMap<String, SpanStat>>> = OnceLock::new();
    TOTALS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

thread_local! {
    /// Stack of full paths of the spans open on this thread.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one span execution; records elapsed time on drop.
///
/// Deliberately `!Send`: a guard must be dropped on the thread that
/// opened it, because it pops that thread's span stack.
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when telemetry was disabled at entry — drop is a no-op.
    start: Option<Instant>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed().as_nanos();
        let path = STACK.with(|stack| stack.borrow_mut().pop());
        let Some(path) = path else { return };
        // Recover a poisoned profile rather than cascading the panic:
        // a benchmark task that died mid-span must not take the whole
        // run's telemetry (or the other rayon workers) down with it.
        let mut totals = totals().lock().unwrap_or_else(PoisonError::into_inner);
        let stat = totals.entry(path).or_default();
        stat.calls += 1;
        stat.total_nanos += elapsed;
    }
}

fn enter(full_path: String) -> SpanGuard {
    STACK.with(|stack| stack.borrow_mut().push(full_path));
    SpanGuard {
        start: Some(Instant::now()),
        _not_send: PhantomData,
    }
}

fn inert() -> SpanGuard {
    SpanGuard {
        start: None,
        _not_send: PhantomData,
    }
}

/// Opens a span named `name` nested under the current thread's
/// innermost open span (or at the root if none). Near-zero cost when
/// telemetry is disabled: one relaxed load, no timestamp, no lock.
pub fn span(name: &str) -> SpanGuard {
    if !crate::enabled() {
        return inert();
    }
    let full = STACK.with(|stack| match stack.borrow().last() {
        Some(parent) => format!("{parent}{PATH_SEP}{name}"),
        None => name.to_string(),
    });
    enter(full)
}

/// Opens a span named `name` under an explicit `parent` path —
/// typically one captured with [`current_path`] before handing work to
/// a rayon worker thread. Spans opened with [`span`] inside this scope
/// nest under it as usual.
pub fn span_under(parent: &str, name: &str) -> SpanGuard {
    if !crate::enabled() {
        return inert();
    }
    enter(format!("{parent}{PATH_SEP}{name}"))
}

/// Full path of the current thread's innermost open span, if any.
/// Capture this before a fan-out and pass it to [`span_under`] in the
/// workers.
pub fn current_path() -> Option<String> {
    STACK.with(|stack| stack.borrow().last().cloned())
}

/// The flat aggregated profile: `(path, stat)` sorted by path.
pub fn span_report() -> Vec<(String, SpanStat)> {
    totals()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(path, stat)| (path.clone(), *stat))
        .collect()
}

/// Reconstructs the parent tree from the aggregated paths. A path with
/// a missing ancestor (possible when a parent span is still open, or
/// when `span_under` named a parent that never closed) gets an
/// implicit zero-stat ancestor node, so the tree shape is always
/// consistent with the paths.
pub fn span_tree() -> Vec<SpanNode> {
    let report = span_report();
    let mut roots: Vec<SpanNode> = Vec::new();
    for (path, stat) in &report {
        let components: Vec<&str> = path.split(PATH_SEP).collect();
        let mut siblings = &mut roots;
        let mut prefix = String::new();
        for (depth, component) in components.iter().enumerate() {
            if !prefix.is_empty() {
                prefix.push(PATH_SEP);
            }
            prefix.push_str(component);
            let position = match siblings.iter().position(|n| n.name == *component) {
                Some(position) => position,
                None => {
                    siblings.push(SpanNode {
                        name: component.to_string(),
                        path: prefix.clone(),
                        stat: SpanStat::default(),
                        children: Vec::new(),
                    });
                    siblings.len() - 1
                }
            };
            if depth == components.len() - 1 {
                siblings[position].stat = *stat;
            }
            siblings = &mut siblings[position].children;
        }
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the process-wide enabled flag.
    fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().expect("test mutex never poisoned")
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _serial = flag_lock();
        crate::set_enabled(false);
        {
            let _guard = span("span_test_disabled_root");
        }
        assert!(span_report()
            .iter()
            .all(|(path, _)| !path.contains("span_test_disabled_root")));
    }

    #[test]
    fn nesting_builds_paths() {
        let _serial = flag_lock();
        crate::set_enabled(true);
        {
            let _outer = span("span_test_outer");
            let _inner = span("span_test_inner");
        }
        crate::set_enabled(false);
        let report = span_report();
        assert!(report
            .iter()
            .any(|(path, stat)| path == "span_test_outer/span_test_inner" && stat.calls == 1));
        assert!(report
            .iter()
            .any(|(path, stat)| path == "span_test_outer" && stat.calls == 1));
    }
}
