//! Run manifests: the audit record binding a run's outputs to the
//! configuration, versions, and counters that produced them.

use crate::json::{array, key, object, string};
use crate::span::span_report;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

/// Version tag of the emitted JSON document.
pub const MANIFEST_SCHEMA: &str = "leakage-telemetry/1";

/// A run manifest: free-form `info` key/values (config hashes,
/// versions, scale, thread count — whatever makes the run
/// reproducible) plus per-experiment pass/fail verdicts. Serializing
/// it snapshots the global metrics registry and span profile alongside.
#[derive(Debug, Clone, Default)]
pub struct RunManifest {
    info: BTreeMap<String, String>,
    verdicts: BTreeMap<String, bool>,
}

impl RunManifest {
    /// An empty manifest.
    pub fn new() -> Self {
        RunManifest::default()
    }

    /// Records one `info` entry (last write wins).
    pub fn set(&mut self, name: &str, value: impl ToString) {
        self.info.insert(name.to_string(), value.to_string());
    }

    /// Reads back an `info` entry.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.info.get(name).map(String::as_str)
    }

    /// Records the reproduction verdict for one experiment.
    pub fn verdict(&mut self, experiment: &str, passed: bool) {
        self.verdicts.insert(experiment.to_string(), passed);
    }

    /// Whether every recorded verdict passed (vacuously true when no
    /// verdicts were recorded).
    pub fn all_passed(&self) -> bool {
        self.verdicts.values().all(|&passed| passed)
    }

    /// The experiments whose verdict is `false`, sorted.
    pub fn failures(&self) -> Vec<&str> {
        self.verdicts
            .iter()
            .filter(|(_, &passed)| !passed)
            .map(|(name, _)| name.as_str())
            .collect()
    }

    /// Serializes the manifest, the global registry snapshot, and the
    /// span profile into one JSON document:
    ///
    /// ```json
    /// {
    ///   "schema": "leakage-telemetry/1",
    ///   "created_unix_s": 1754000000,
    ///   "manifest": {"generator_version": "3", ...},
    ///   "verdicts": {"table1": true, ...},
    ///   "metrics": {
    ///     "counters": {"profile_store_sim_misses_total": 6, ...},
    ///     "gauges": {...},
    ///     "histograms": {"name": {"bounds": [...], "counts": [...],
    ///                             "sum": 0, "count": 0}}
    ///   },
    ///   "spans": [{"path": "suite/gzip", "calls": 1,
    ///              "total_ms": 12.3}, ...]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let created = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let snapshot = crate::registry().snapshot();
        let counters = object(
            snapshot
                .counters
                .iter()
                .map(|(name, value)| key(name) + &value.to_string()),
        );
        let gauges = object(
            snapshot
                .gauges
                .iter()
                .map(|(name, value)| key(name) + &value.to_string()),
        );
        let histograms = object(snapshot.histograms.iter().map(|(name, h)| {
            key(name)
                + &object([
                    key("bounds") + &array(h.bounds.iter().map(u64::to_string)),
                    key("counts") + &array(h.counts.iter().map(u64::to_string)),
                    key("sum") + &h.sum.to_string(),
                    key("count") + &h.count.to_string(),
                ])
        }));
        let spans = array(span_report().iter().map(|(path, stat)| {
            object([
                key("path") + &string(path),
                key("calls") + &stat.calls.to_string(),
                key("total_ms") + &format!("{:.3}", stat.total_ms()),
            ])
        }));
        object([
            key("schema") + &string(MANIFEST_SCHEMA),
            key("created_unix_s") + &created.to_string(),
            key("manifest")
                + &object(self.info.iter().map(|(name, value)| key(name) + &string(value))),
            key("verdicts")
                + &object(
                    self.verdicts
                        .iter()
                        .map(|(name, &passed)| key(name) + if passed { "true" } else { "false" }),
                ),
            key("metrics")
                + &object([
                    key("counters") + &counters,
                    key("gauges") + &gauges,
                    key("histograms") + &histograms,
                ]),
            key("spans") + &spans,
        ])
    }

    /// Writes [`to_json`](RunManifest::to_json) to `path`, creating
    /// parent directories as needed.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json() + "\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_accounting() {
        let mut manifest = RunManifest::new();
        assert!(manifest.all_passed());
        manifest.verdict("table1", true);
        manifest.verdict("fig7", false);
        assert!(!manifest.all_passed());
        assert_eq!(manifest.failures(), vec!["fig7"]);
    }

    #[test]
    fn json_contains_sections() {
        let mut manifest = RunManifest::new();
        manifest.set("generator_version", 3);
        manifest.verdict("table1", true);
        let doc = manifest.to_json();
        for section in [
            "\"schema\": \"leakage-telemetry/1\"",
            "\"manifest\": ",
            "\"generator_version\": \"3\"",
            "\"verdicts\": {\"table1\": true}",
            "\"metrics\": ",
            "\"spans\": ",
        ] {
            assert!(doc.contains(section), "missing {section} in {doc}");
        }
    }
}
