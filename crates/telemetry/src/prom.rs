//! Prometheus text-format exporter for the global registry.

use std::fmt::Write as _;

/// Renders every registered metric in the Prometheus text exposition
/// format. Counters get a `_total`-as-written name (the registry
/// convention is to name counters `*_total` at the call site), gauges
/// are exported as-is, and histograms expand into cumulative
/// `_bucket{le="..."}` series plus `_sum` and `_count`, matching the
/// inclusive-upper-bound semantics of
/// [`Histogram`](crate::Histogram).
pub fn prometheus_text() -> String {
    let snapshot = crate::registry().snapshot();
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, h) in &snapshot.histograms {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in h.bounds.iter().zip(&h.counts) {
            cumulative += count;
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        cumulative += h.counts.last().copied().unwrap_or(0);
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_histogram_cumulatively() {
        let h = crate::registry().histogram("prom_test_latency", &[10, 100]);
        h.record(5);
        h.record(50);
        h.record(500);
        let text = prometheus_text();
        assert!(text.contains("# TYPE prom_test_latency histogram"));
        assert!(text.contains("prom_test_latency_bucket{le=\"10\"} 1"));
        assert!(text.contains("prom_test_latency_bucket{le=\"100\"} 2"));
        assert!(text.contains("prom_test_latency_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("prom_test_latency_sum 555"));
        assert!(text.contains("prom_test_latency_count 3"));
    }
}
