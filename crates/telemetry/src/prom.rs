//! Prometheus text-format exporter for the global registry.

use std::fmt::Write as _;

/// Splits a registered metric name into its base family and an
/// optional `key="value",...` label block: `lat{route="table"}` →
/// (`lat`, `route="table"`). Names without braces pass through.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(open) if name.ends_with('}') => {
            (&name[..open], Some(&name[open + 1..name.len() - 1]))
        }
        _ => (name, None),
    }
}

/// Emits a `# TYPE` header once per metric family. The registry
/// snapshot is sorted by name, so labeled series of one family are
/// adjacent and dedup by last-emitted base suffices.
fn type_line(out: &mut String, last: &mut String, base: &str, kind: &str) {
    if last != base {
        let _ = writeln!(out, "# TYPE {base} {kind}");
        last.clear();
        last.push_str(base);
    }
}

/// Renders every registered metric in the Prometheus text exposition
/// format. Counters get a `_total`-as-written name (the registry
/// convention is to name counters `*_total` at the call site), gauges
/// are exported as-is, and histograms expand into cumulative
/// `_bucket{le="..."}` series plus `_sum` and `_count`, matching the
/// inclusive-upper-bound semantics of
/// [`Histogram`](crate::Histogram).
///
/// A metric registered with an inline label block — e.g.
/// `server_latency_us{route="table"}` — is exported as one labeled
/// series of the `server_latency_us` family: a single `# TYPE` line
/// for the family, with the labels merged into every sample line
/// (histograms get the `le` label appended after the user labels).
pub fn prometheus_text() -> String {
    let snapshot = crate::registry().snapshot();
    let mut out = String::new();
    let mut last = String::new();
    for (name, value) in &snapshot.counters {
        let (base, _) = split_labels(name);
        type_line(&mut out, &mut last, base, "counter");
        let _ = writeln!(out, "{name} {value}");
    }
    last.clear();
    for (name, value) in &snapshot.gauges {
        let (base, _) = split_labels(name);
        type_line(&mut out, &mut last, base, "gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    last.clear();
    for (name, h) in &snapshot.histograms {
        let (base, labels) = split_labels(name);
        type_line(&mut out, &mut last, base, "histogram");
        let prefix = match labels {
            Some(labels) => format!("{labels},"),
            None => String::new(),
        };
        let suffix = match labels {
            Some(labels) => format!("{{{labels}}}"),
            None => String::new(),
        };
        let mut cumulative = 0u64;
        for (bound, count) in h.bounds.iter().zip(&h.counts) {
            cumulative += count;
            let _ = writeln!(out, "{base}_bucket{{{prefix}le=\"{bound}\"}} {cumulative}");
        }
        cumulative += h.counts.last().copied().unwrap_or(0);
        let _ = writeln!(out, "{base}_bucket{{{prefix}le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{base}_sum{suffix} {}", h.sum);
        let _ = writeln!(out, "{base}_count{suffix} {}", h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_histogram_cumulatively() {
        let h = crate::registry().histogram("prom_test_latency", &[10, 100]);
        h.record(5);
        h.record(50);
        h.record(500);
        let text = prometheus_text();
        assert!(text.contains("# TYPE prom_test_latency histogram"));
        assert!(text.contains("prom_test_latency_bucket{le=\"10\"} 1"));
        assert!(text.contains("prom_test_latency_bucket{le=\"100\"} 2"));
        assert!(text.contains("prom_test_latency_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("prom_test_latency_sum 555"));
        assert!(text.contains("prom_test_latency_count 3"));
    }

    #[test]
    fn exports_labeled_histograms_as_one_family() {
        let a = crate::registry().histogram("prom_label_lat{route=\"a\"}", &[10]);
        let b = crate::registry().histogram("prom_label_lat{route=\"b\"}", &[10]);
        a.record(5);
        b.record(50);
        let text = prometheus_text();
        assert_eq!(text.matches("# TYPE prom_label_lat histogram").count(), 1);
        assert!(text.contains("prom_label_lat_bucket{route=\"a\",le=\"10\"} 1"));
        assert!(text.contains("prom_label_lat_bucket{route=\"b\",le=\"+Inf\"} 1"));
        assert!(text.contains("prom_label_lat_sum{route=\"a\"} 5"));
        assert!(text.contains("prom_label_lat_count{route=\"b\"} 1"));
    }

    #[test]
    fn exports_labeled_counters_with_one_type_line() {
        let a = crate::registry().counter("prom_label_total{route=\"a\"}");
        let b = crate::registry().counter("prom_label_total{route=\"b\"}");
        a.inc();
        b.add(2);
        let text = prometheus_text();
        assert_eq!(text.matches("# TYPE prom_label_total counter").count(), 1);
        assert!(text.contains("prom_label_total{route=\"a\"} 1"));
        assert!(text.contains("prom_label_total{route=\"b\"} 2"));
    }
}
