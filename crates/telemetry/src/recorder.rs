//! Request flight recorder: a fixed-capacity, lock-free ring of
//! structured per-request records plus an always-retained
//! slow/error reservoir.
//!
//! The ring is a seqlock-per-slot design built entirely from atomics
//! (this crate forbids `unsafe`):
//!
//! * Writers claim a ticket with one `fetch_add` on the write cursor;
//!   the slot is `ticket % capacity`.
//! * While writing, the slot's sequence word holds the odd value
//!   `2*ticket + 1`; the eight data words are stored relaxed; the
//!   sequence is then released as the even value `2*ticket + 2`.
//! * Readers compute the expected even sequence from the cursor, load
//!   it with acquire ordering, copy the data words, issue an acquire
//!   fence, and re-check the sequence. Any concurrent writer makes
//!   the two sequence reads disagree (or show an odd value) and the
//!   slot is skipped — a torn record is never surfaced.
//!
//! The one documented hole: two writers a full ring *lap* apart
//! (tickets `t` and `t + capacity`) can interleave on the same slot
//! and leave it with a valid-looking sequence over mixed words. At
//! the default capacity (4096) that requires 4096 requests to
//! complete inside one ~100ns slot write; the recorder is a
//! diagnostic plane, not an audit log, and accepts that bounded
//! probability instead of a per-slot lock on the hot path.
//!
//! The reservoir is off the hot path by construction: a record is
//! only pushed through its `Mutex` when it is an error (5xx, shed,
//! panic) or slower than the current top-K floor, which a relaxed
//! atomic gate decides without taking the lock.

use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Environment variable sizing the ring (`LEAKAGE_RECORDER_CAP`,
/// rounded up to a power of two; default [`DEFAULT_CAPACITY`]).
pub const RECORDER_CAP_ENV: &str = "LEAKAGE_RECORDER_CAP";

/// Default ring capacity when [`RECORDER_CAP_ENV`] is unset.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Slowest-requests kept by the reservoir (top-K by `total_us`).
pub const SLOW_TOP_K: usize = 16;

/// Most recent error records (5xx / shed / panic) kept by the
/// reservoir.
pub const ERROR_KEEP: usize = 64;

/// Record flag: the request was shed (admission queue or permit).
pub const FLAG_SHED: u8 = 1 << 0;
/// Record flag: the handler panicked (answered 500).
pub const FLAG_PANIC: u8 = 1 << 1;
/// Record flag: served from the response cache.
pub const FLAG_CACHE_HIT: u8 = 1 << 2;
/// Record flag: served from the pre-serialized artifact catalog.
pub const FLAG_CATALOG_HIT: u8 = 1 << 3;

/// One request's structured trace: identity, outcome, sizes, and the
/// per-stage latency attribution in microseconds. Stages are disjoint
/// wall-time intervals, so each is ≤ `total_us` and their sum is ≤
/// `total_us` (`permit_us` and `store_us` nest inside `handler_us`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestRecord {
    /// Trace id (from `X-Request-Id` or generated).
    pub trace_id: u64,
    /// Completion time, microseconds since the recorder started.
    pub end_us: u64,
    /// Route code (the server maps this to a route name).
    pub route: u8,
    /// Bit set of `FLAG_*` values.
    pub flags: u8,
    /// HTTP status answered.
    pub status: u16,
    /// Request bytes consumed off the socket.
    pub req_bytes: u32,
    /// Response bytes queued (head + body).
    pub resp_bytes: u32,
    /// Parse start → response flushed, microseconds.
    pub total_us: u32,
    /// HTTP parse time.
    pub parse_us: u32,
    /// Admission-queue wait (parse complete → worker pickup).
    pub queue_us: u32,
    /// Concurrency-permit wait inside the handler.
    pub permit_us: u32,
    /// Handler execution (contains `permit_us` and `store_us`).
    pub handler_us: u32,
    /// Profile-store / query compute inside the handler.
    pub store_us: u32,
    /// Response serialization into the connection buffer.
    pub serialize_us: u32,
    /// Socket write (shared by every response in a flushed batch).
    pub write_us: u32,
}

/// Number of packed `AtomicU64` data words per slot.
const WORDS: usize = 8;

impl RequestRecord {
    /// Whether the reservoir must always retain this record.
    pub fn is_error(&self) -> bool {
        self.status >= 500 || self.flags & (FLAG_SHED | FLAG_PANIC) != 0
    }

    fn pack(&self) -> [u64; WORDS] {
        [
            self.trace_id,
            self.end_us,
            (u64::from(self.total_us) << 32) | u64::from(self.parse_us),
            (u64::from(self.queue_us) << 32) | u64::from(self.permit_us),
            (u64::from(self.handler_us) << 32) | u64::from(self.store_us),
            (u64::from(self.serialize_us) << 32) | u64::from(self.write_us),
            (u64::from(self.req_bytes) << 32) | u64::from(self.resp_bytes),
            (u64::from(self.status) << 16) | (u64::from(self.route) << 8) | u64::from(self.flags),
        ]
    }

    fn unpack(words: [u64; WORDS]) -> Self {
        RequestRecord {
            trace_id: words[0],
            end_us: words[1],
            total_us: (words[2] >> 32) as u32,
            parse_us: words[2] as u32,
            queue_us: (words[3] >> 32) as u32,
            permit_us: words[3] as u32,
            handler_us: (words[4] >> 32) as u32,
            store_us: words[4] as u32,
            serialize_us: (words[5] >> 32) as u32,
            write_us: words[5] as u32,
            req_bytes: (words[6] >> 32) as u32,
            resp_bytes: words[6] as u32,
            status: (words[7] >> 16) as u16,
            route: (words[7] >> 8) as u8,
            flags: words[7] as u8,
        }
    }
}

struct Slot {
    /// Seqlock word: `0` = never written, `2t+1` = ticket `t` writing,
    /// `2t+2` = ticket `t` committed.
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn empty() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            words: [const { AtomicU64::new(0) }; WORDS],
        }
    }
}

struct SlowReservoir {
    /// Slowest records, ascending by `total_us`, at most [`SLOW_TOP_K`].
    top: Vec<RequestRecord>,
    /// Most recent error records, oldest first, at most [`ERROR_KEEP`].
    errors: VecDeque<RequestRecord>,
}

/// The flight recorder: seqlock ring + slow/error reservoir.
pub struct FlightRecorder {
    slots: Vec<Slot>,
    mask: u64,
    cursor: AtomicU64,
    start: Instant,
    slow: Mutex<SlowReservoir>,
    /// `total_us` floor for top-K admission, readable without the
    /// lock. Zero until the top-K fills.
    slow_gate: AtomicU64,
}

impl FlightRecorder {
    /// A recorder holding `capacity` records (rounded up to a power of
    /// two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.clamp(8, 1 << 24).next_power_of_two();
        FlightRecorder {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            mask: capacity as u64 - 1,
            cursor: AtomicU64::new(0),
            start: Instant::now(),
            slow: Mutex::new(SlowReservoir {
                top: Vec::with_capacity(SLOW_TOP_K),
                errors: VecDeque::with_capacity(ERROR_KEEP),
            }),
            slow_gate: AtomicU64::new(0),
        }
    }

    /// Ring capacity from [`RECORDER_CAP_ENV`], or `DEFAULT_CAPACITY`
    /// when unset/unparseable.
    pub fn capacity_from_env() -> usize {
        std::env::var(RECORDER_CAP_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&cap| cap > 0)
            .unwrap_or(DEFAULT_CAPACITY)
    }

    /// Ring capacity (power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever published (monotone; wraps the ring after
    /// `capacity`).
    pub fn recorded_total(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Microseconds since the recorder started; the time base for
    /// [`RequestRecord::end_us`].
    pub fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Publishes one record: a ticket claim, eight relaxed stores, and
    /// (only for errors or new top-K entrants) a reservoir insert.
    pub fn record(&self, rec: &RequestRecord) {
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket & self.mask) as usize];
        slot.seq.store(ticket * 2 + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        for (word, value) in slot.words.iter().zip(rec.pack()) {
            word.store(value, Ordering::Relaxed);
        }
        slot.seq.store(ticket * 2 + 2, Ordering::Release);

        let qualifies =
            rec.is_error() || u64::from(rec.total_us) > self.slow_gate.load(Ordering::Relaxed);
        if qualifies {
            self.reserve(rec);
        }
    }

    fn reserve(&self, rec: &RequestRecord) {
        let mut slow = self.slow.lock().unwrap_or_else(PoisonError::into_inner);
        if rec.is_error() {
            if slow.errors.len() == ERROR_KEEP {
                slow.errors.pop_front();
            }
            slow.errors.push_back(*rec);
        }
        let floor = if slow.top.len() < SLOW_TOP_K {
            0
        } else {
            slow.top[0].total_us
        };
        if slow.top.len() < SLOW_TOP_K || rec.total_us > floor {
            let at = slow.top.partition_point(|r| r.total_us <= rec.total_us);
            slow.top.insert(at, *rec);
            if slow.top.len() > SLOW_TOP_K {
                slow.top.remove(0);
            }
            if slow.top.len() == SLOW_TOP_K {
                self.slow_gate
                    .store(u64::from(slow.top[0].total_us), Ordering::Relaxed);
            }
        }
    }

    /// Attempts a consistent read of ticket `ticket`'s slot.
    fn read_ticket(&self, ticket: u64) -> Option<RequestRecord> {
        let slot = &self.slots[(ticket & self.mask) as usize];
        let expected = ticket * 2 + 2;
        if slot.seq.load(Ordering::Acquire) != expected {
            return None;
        }
        let mut words = [0u64; WORDS];
        for (out, word) in words.iter_mut().zip(&slot.words) {
            *out = word.load(Ordering::Relaxed);
        }
        fence(Ordering::Acquire);
        if slot.seq.load(Ordering::Relaxed) != expected {
            return None;
        }
        Some(RequestRecord::unpack(words))
    }

    /// The `n` most recent consistent records, newest first. Slots
    /// being concurrently overwritten are skipped, never torn.
    pub fn recent(&self, n: usize) -> Vec<RequestRecord> {
        let cursor = self.cursor.load(Ordering::Acquire);
        let span = (n as u64).min(cursor).min(self.slots.len() as u64);
        let mut out = Vec::with_capacity(span as usize);
        for back in 1..=span {
            if let Some(rec) = self.read_ticket(cursor - back) {
                out.push(rec);
            }
        }
        out
    }

    /// Every consistent record with `end_us >= since_us`, newest
    /// first. `since_us` is on the [`Self::now_us`] clock.
    pub fn window(&self, since_us: u64) -> Vec<RequestRecord> {
        let mut out = self.recent(self.slots.len());
        out.retain(|r| r.end_us >= since_us);
        out
    }

    /// Reservoir snapshot: (slowest records, slowest first descending;
    /// retained error records, newest first).
    pub fn slow(&self) -> (Vec<RequestRecord>, Vec<RequestRecord>) {
        let slow = self.slow.lock().unwrap_or_else(PoisonError::into_inner);
        let mut top: Vec<RequestRecord> = slow.top.clone();
        top.reverse();
        let errors: Vec<RequestRecord> = slow.errors.iter().rev().copied().collect();
        (top, errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, total: u32) -> RequestRecord {
        RequestRecord {
            trace_id: id,
            total_us: total,
            status: 200,
            ..RequestRecord::default()
        }
    }

    #[test]
    fn pack_round_trips_every_field() {
        let full = RequestRecord {
            trace_id: u64::MAX,
            end_us: 123_456_789,
            route: 7,
            flags: FLAG_SHED | FLAG_CACHE_HIT,
            status: 503,
            req_bytes: 68,
            resp_bytes: 4096,
            total_us: 900,
            parse_us: 1,
            queue_us: 2,
            permit_us: 3,
            handler_us: 800,
            store_us: 700,
            serialize_us: 4,
            write_us: 5,
        };
        assert_eq!(RequestRecord::unpack(full.pack()), full);
    }

    #[test]
    fn recent_returns_newest_first() {
        let recorder = FlightRecorder::new(8);
        for id in 0..5 {
            recorder.record(&rec(id, 10));
        }
        let recent = recorder.recent(3);
        let ids: Vec<u64> = recent.iter().map(|r| r.trace_id).collect();
        assert_eq!(ids, vec![4, 3, 2]);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(FlightRecorder::new(1000).capacity(), 1024);
        assert_eq!(FlightRecorder::new(1).capacity(), 8);
    }

    #[test]
    fn slow_gate_keeps_top_k() {
        let recorder = FlightRecorder::new(8);
        for total in 1..=100u32 {
            recorder.record(&rec(u64::from(total), total));
        }
        let (top, errors) = recorder.slow();
        assert_eq!(top.len(), SLOW_TOP_K);
        assert_eq!(top[0].total_us, 100);
        assert_eq!(top.last().unwrap().total_us, 100 - SLOW_TOP_K as u32 + 1);
        assert!(errors.is_empty());
    }
}
