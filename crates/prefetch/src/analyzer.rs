//! Turning an access stream into wake triggers.

use crate::{NextLinePrefetcher, StridePrefetcher};
use leakage_intervals::WakeHints;
use leakage_trace::{LineAddr, MemoryAccess};
use serde::{Deserialize, Serialize};

/// A prefetch trigger: some prefetcher predicts `line` will be wanted
/// soon, so a leakage-management scheme may wake (or refetch) it now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WakeTrigger {
    /// The predicted line.
    pub line: LineAddr,
    /// Which prefetcher(s) produced the prediction.
    pub hints: WakeHints,
}

/// Counters for the analysis (reported alongside Fig. 9).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchStats {
    /// Next-line triggers issued.
    pub next_line_triggers: u64,
    /// Confirmed stride triggers issued.
    pub stride_triggers: u64,
}

/// Drives the paper's prefetchers over one cache's access stream.
///
/// Per §5.1 the instruction cache uses next-line prefetching only, and
/// the data cache uses next-line plus per-PC stride prefetching —
/// "most of the cache misses can be captured by these schemes".
///
/// The caller forwards every access of the relevant stream to
/// [`observe`](PrefetchAnalyzer::observe) and routes the returned
/// triggers to the interval extractor of the same cache.
#[derive(Debug, Clone)]
pub struct PrefetchAnalyzer {
    line_bits: u32,
    next_line: NextLinePrefetcher,
    stride: Option<StridePrefetcher>,
    stats: PrefetchStats,
}

impl PrefetchAnalyzer {
    /// Default stride-table capacity (entries) for the data-side
    /// analyzer.
    pub const DEFAULT_STRIDE_TABLE: usize = 1024;

    /// An instruction-cache analyzer: next-line only.
    pub fn for_instruction_cache(line_bits: u32) -> Self {
        PrefetchAnalyzer {
            line_bits,
            next_line: NextLinePrefetcher::new(),
            stride: None,
            stats: PrefetchStats::default(),
        }
    }

    /// A data-cache analyzer: next-line plus stride.
    pub fn for_data_cache(line_bits: u32) -> Self {
        PrefetchAnalyzer {
            line_bits,
            next_line: NextLinePrefetcher::new(),
            stride: Some(StridePrefetcher::new(Self::DEFAULT_STRIDE_TABLE)),
            stats: PrefetchStats::default(),
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    /// Observes one access, appending any wake triggers to `out`
    /// (which is cleared first). Triggers for the same line are merged.
    pub fn observe_into(&mut self, access: &MemoryAccess, out: &mut Vec<WakeTrigger>) {
        out.clear();
        let line = access.addr.line(self.line_bits);
        if let Some(target) = self.next_line.observe(line) {
            self.stats.next_line_triggers += 1;
            out.push(WakeTrigger {
                line: target,
                hints: WakeHints {
                    next_line: true,
                    stride: false,
                },
            });
        }
        if let Some(stride) = &mut self.stride {
            if let Some(predicted) = stride.observe(access.pc, access.addr) {
                let target = predicted.line(self.line_bits);
                // A stride that stays within the current line wakes
                // nothing new.
                if target != line {
                    self.stats.stride_triggers += 1;
                    let hint = WakeHints {
                        next_line: false,
                        stride: true,
                    };
                    if let Some(existing) = out.iter_mut().find(|t| t.line == target) {
                        existing.hints = existing.hints.union(hint);
                    } else {
                        out.push(WakeTrigger {
                            line: target,
                            hints: hint,
                        });
                    }
                }
            }
        }
    }

    /// Convenience wrapper around
    /// [`observe_into`](PrefetchAnalyzer::observe_into) that allocates
    /// the output vector (use `observe_into` in hot loops).
    pub fn observe(&mut self, access: &MemoryAccess) -> Vec<WakeTrigger> {
        let mut out = Vec::new();
        self.observe_into(access, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_trace::{Address, Cycle, Pc};

    fn load(pc: u64, addr: u64) -> MemoryAccess {
        MemoryAccess::load(Cycle::ZERO, Pc::new(pc), Address::new(addr))
    }

    #[test]
    fn icache_analyzer_is_nextline_only() {
        let mut a = PrefetchAnalyzer::for_instruction_cache(6);
        let t = a.observe(&MemoryAccess::fetch(Cycle::ZERO, Pc::new(0x1000)));
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].line, Address::new(0x1000).line(6).succ(1));
        assert!(t[0].hints.next_line && !t[0].hints.stride);
        assert_eq!(a.stats().stride_triggers, 0);
    }

    #[test]
    fn dcache_analyzer_issues_stride_triggers() {
        let mut a = PrefetchAnalyzer::for_data_cache(6);
        // Stride of 256 bytes (4 lines) from one pc: confirmed on 3rd
        // access, predicting from the 4th.
        let mut triggers = Vec::new();
        for i in 0..4u64 {
            a.observe_into(&load(0x400, i * 256), &mut triggers);
        }
        assert!(triggers.iter().any(|t| t.hints.stride
            && t.line == Address::new(4 * 256).line(6)));
        // Confirmed at the 3rd access, so the 3rd and 4th both predict.
        assert_eq!(a.stats().stride_triggers, 2);
        assert!(a.stats().next_line_triggers >= 1);
    }

    #[test]
    fn small_strides_within_a_line_do_not_trigger() {
        let mut a = PrefetchAnalyzer::for_data_cache(6);
        let mut out = Vec::new();
        // 8-byte stride stays inside a 64-byte line most of the time.
        for i in 0..4u64 {
            a.observe_into(&load(0x400, 0x1000 + i * 8), &mut out);
        }
        // After confirmation, prediction 0x1020 is in the same line: no
        // stride trigger.
        assert_eq!(a.stats().stride_triggers, 0);
    }

    #[test]
    fn merged_hints_when_both_predict_same_line() {
        let mut a = PrefetchAnalyzer::for_data_cache(6);
        // Train a 64-byte stride: prediction is exactly the next line,
        // which next-line also triggers.
        let mut out = Vec::new();
        for i in 0..4u64 {
            a.observe_into(&load(0x400, i * 64), &mut out);
        }
        assert_eq!(out.len(), 1, "one merged trigger: {out:?}");
        assert!(out[0].hints.next_line && out[0].hints.stride);
    }

    #[test]
    fn repeated_same_line_loads_trigger_once() {
        let mut a = PrefetchAnalyzer::for_data_cache(6);
        let mut out = Vec::new();
        a.observe_into(&load(0x400, 0x2000), &mut out);
        assert_eq!(out.len(), 1);
        a.observe_into(&load(0x404, 0x2008), &mut out);
        assert!(out.is_empty(), "no line crossing, no trigger");
    }
}
