//! Next-line (one-block-lookahead) prefetching.

use leakage_trace::LineAddr;

/// The next-line prefetcher: every access to line `L` predicts that
/// line `L+1` will be wanted soon.
///
/// Programs exhibit strong spatial locality — straight-line code and
/// sequential data sweeps march through consecutive lines — so this
/// single-line-of-state scheme covers a large share of misses (paper
/// §5.1). Consecutive accesses within the same line produce only one
/// trigger, mirroring a hardware implementation that prefetches on line
/// crossings.
#[derive(Debug, Clone, Copy, Default)]
pub struct NextLinePrefetcher {
    last_line: Option<LineAddr>,
    triggers: u64,
}

impl NextLinePrefetcher {
    /// Creates a prefetcher with no history.
    pub fn new() -> Self {
        NextLinePrefetcher::default()
    }

    /// Observes an access to `line`; returns the predicted next line if
    /// this access crossed into a new line.
    pub fn observe(&mut self, line: LineAddr) -> Option<LineAddr> {
        if self.last_line == Some(line) {
            return None;
        }
        self.last_line = Some(line);
        self.triggers += 1;
        Some(line.succ(1))
    }

    /// Number of triggers issued so far.
    pub fn triggers(&self) -> u64 {
        self.triggers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicts_successor_line() {
        let mut p = NextLinePrefetcher::new();
        assert_eq!(p.observe(LineAddr::new(10)), Some(LineAddr::new(11)));
        assert_eq!(p.observe(LineAddr::new(99)), Some(LineAddr::new(100)));
    }

    #[test]
    fn suppresses_same_line_repeats() {
        let mut p = NextLinePrefetcher::new();
        assert!(p.observe(LineAddr::new(5)).is_some());
        assert_eq!(p.observe(LineAddr::new(5)), None);
        assert_eq!(p.observe(LineAddr::new(5)), None);
        assert!(p.observe(LineAddr::new(6)).is_some());
        // Returning to the earlier line triggers again.
        assert!(p.observe(LineAddr::new(5)).is_some());
        assert_eq!(p.triggers(), 3);
    }
}
