//! Prefetchers and prefetchability analysis (paper §5).
//!
//! The limit study's oracle knows the future; a real design can only
//! *approximate* that knowledge. The paper proposes using prefetchers as
//! the approximation: when a prefetcher would have fetched line `L`
//! during one of `L`'s rest intervals, a management scheme could have
//! slept (or drowsed) `L` through that interval and used the prefetch
//! trigger as the just-in-time wakeup.
//!
//! This crate provides the two hardware schemes the paper evaluates —
//! [`NextLinePrefetcher`] and the per-PC two-strike [`StridePrefetcher`]
//! of Farkas et al. — and a [`PrefetchAnalyzer`] that turns a raw access
//! stream into *wake triggers*: `(line, hints)` pairs the experiment
//! pipeline forwards to the interval extractor
//! ([`IntervalExtractor::mark_wake`]).
//!
//! [`IntervalExtractor::mark_wake`]: leakage_intervals::IntervalExtractor::mark_wake
//!
//! # Examples
//!
//! ```
//! use leakage_prefetch::PrefetchAnalyzer;
//! use leakage_trace::{AccessKind, Address, Cycle, MemoryAccess, Pc};
//!
//! // A data-side analyzer: next-line + stride.
//! let mut analyzer = PrefetchAnalyzer::for_data_cache(6);
//! let access = MemoryAccess::load(Cycle::ZERO, Pc::new(0x100), Address::new(0x1000));
//! let triggers = analyzer.observe(&access);
//! // Accessing line 0x40 next-line-triggers line 0x41.
//! assert_eq!(triggers[0].line.index(), 0x41);
//! assert!(triggers[0].hints.next_line);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzer;
mod nextline;
mod stride;

pub use analyzer::{PrefetchAnalyzer, PrefetchStats, WakeTrigger};
pub use nextline::NextLinePrefetcher;
pub use stride::{StrideEntry, StridePrefetcher};
