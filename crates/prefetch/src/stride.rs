//! Per-PC stride prefetching (Farkas et al., ISCA-24).

use leakage_trace::{Address, Pc};

/// One entry of the stride reference-prediction table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideEntry {
    /// The static load/store this entry tracks.
    pub pc: Pc,
    /// Address of the instruction's previous access.
    pub last_addr: Address,
    /// Last observed stride in bytes.
    pub stride: i64,
    /// How many times in a row the stride repeated (saturating).
    pub confirmations: u8,
}

/// A reference-prediction table: per static instruction, track the
/// stride between consecutive accesses; once the same nonzero stride has
/// been seen at least twice (the paper's two-strike rule, after Farkas
/// et al.), predict `addr + stride` on every further access.
///
/// The table is direct-mapped and tagged like the hardware it models:
/// distinct PCs hashing to the same entry evict one another.
///
/// # Examples
///
/// ```
/// use leakage_prefetch::StridePrefetcher;
/// use leakage_trace::{Address, Pc};
///
/// let mut p = StridePrefetcher::new(64);
/// let pc = Pc::new(0x400);
/// assert_eq!(p.observe(pc, Address::new(0)), None);   // first touch
/// assert_eq!(p.observe(pc, Address::new(256)), None); // stride seen once
/// // Seen twice: confirmed, predictions begin.
/// assert_eq!(p.observe(pc, Address::new(512)), Some(Address::new(768)));
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    entries: Vec<Option<StrideEntry>>,
    mask: usize,
    triggers: u64,
}

impl StridePrefetcher {
    /// Creates a table with `entries` slots (rounded up to a power of
    /// two). A 1K-entry table is typical hardware scale.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "table needs at least one entry");
        let size = entries.next_power_of_two();
        StridePrefetcher {
            entries: vec![None; size],
            mask: size - 1,
            triggers: 0,
        }
    }

    fn slot_of(&self, pc: Pc) -> usize {
        // Instructions are word-aligned; drop the low bits before
        // indexing so neighbours spread across the table.
        ((pc.raw() >> 2) as usize) & self.mask
    }

    /// Observes one access by instruction `pc` to byte address `addr`;
    /// returns the predicted next address once the stride is confirmed.
    pub fn observe(&mut self, pc: Pc, addr: Address) -> Option<Address> {
        let slot = self.slot_of(pc);
        let entry = &mut self.entries[slot];
        match entry {
            Some(e) if e.pc == pc => {
                let stride = addr.raw().wrapping_sub(e.last_addr.raw()) as i64;
                if stride != 0 && stride == e.stride {
                    e.confirmations = e.confirmations.saturating_add(1);
                } else {
                    e.stride = stride;
                    e.confirmations = if stride == 0 { 0 } else { 1 };
                }
                e.last_addr = addr;
                if e.confirmations >= 2 {
                    self.triggers += 1;
                    Some(addr.offset(e.stride))
                } else {
                    None
                }
            }
            _ => {
                *entry = Some(StrideEntry {
                    pc,
                    last_addr: addr,
                    stride: 0,
                    confirmations: 0,
                });
                None
            }
        }
    }

    /// Number of confirmed-stride predictions issued.
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// Looks up the entry currently tracking `pc`, if any.
    pub fn entry(&self, pc: Pc) -> Option<&StrideEntry> {
        self.entries[self.slot_of(pc)]
            .as_ref()
            .filter(|e| e.pc == pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pc(raw: u64) -> Pc {
        Pc::new(raw)
    }

    fn a(raw: u64) -> Address {
        Address::new(raw)
    }

    #[test]
    fn two_strike_confirmation() {
        let mut p = StridePrefetcher::new(16);
        assert_eq!(p.observe(pc(4), a(1000)), None);
        assert_eq!(p.observe(pc(4), a(1100)), None); // stride 100, once
        assert_eq!(p.observe(pc(4), a(1200)), Some(a(1300))); // twice
        assert_eq!(p.observe(pc(4), a(1300)), Some(a(1400)));
        assert_eq!(p.triggers(), 2);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::new(16);
        for (addr, _) in (0..4).map(|i| (a(i * 8), i)) {
            p.observe(pc(4), addr);
        }
        assert_eq!(p.observe(pc(4), a(32)), Some(a(40))); // confirmed stride 8
        // Break the pattern.
        assert_eq!(p.observe(pc(4), a(1000)), None);
        assert_eq!(p.observe(pc(4), a(1008)), None); // new stride once
        assert_eq!(p.observe(pc(4), a(1016)), Some(a(1024))); // twice
        assert_eq!(p.observe(pc(4), a(1024)), Some(a(1032)));
    }

    #[test]
    fn zero_stride_never_predicts() {
        let mut p = StridePrefetcher::new(16);
        for _ in 0..10 {
            assert_eq!(p.observe(pc(8), a(500)), None);
        }
    }

    #[test]
    fn negative_strides_work() {
        let mut p = StridePrefetcher::new(16);
        p.observe(pc(4), a(1000));
        p.observe(pc(4), a(900));
        p.observe(pc(4), a(800));
        assert_eq!(p.observe(pc(4), a(700)), Some(a(600)));
    }

    #[test]
    fn conflicting_pcs_evict() {
        let mut p = StridePrefetcher::new(1); // everything collides
        p.observe(pc(4), a(0));
        p.observe(pc(4), a(8));
        p.observe(pc(4), a(16)); // confirmed
        p.observe(pc(400), a(5000)); // evicts
        assert!(p.entry(pc(4)).is_none());
        assert_eq!(p.observe(pc(4), a(24)), None); // must retrain
    }

    #[test]
    fn independent_streams_per_pc() {
        let mut p = StridePrefetcher::new(64);
        for i in 0..3u64 {
            p.observe(pc(4), a(i * 64));
            p.observe(pc(8), a(10_000 + i * 128));
        }
        assert_eq!(p.observe(pc(4), a(192)), Some(a(256)));
        assert_eq!(p.observe(pc(8), a(10_384)), Some(a(10_512)));
        assert_eq!(p.entry(pc(4)).unwrap().stride, 64);
        assert_eq!(p.entry(pc(8)).unwrap().stride, 128);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty_table() {
        let _ = StridePrefetcher::new(0);
    }
}
