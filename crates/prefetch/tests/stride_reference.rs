//! Property test: the direct-mapped stride table against a naive
//! unbounded per-PC reference model (collision-free regime).

use leakage_prefetch::StridePrefetcher;
use leakage_trace::{Address, Pc};
use proptest::prelude::*;
use std::collections::HashMap;

/// The textbook two-strike stride predictor, one entry per PC, no
/// capacity limits.
#[derive(Default)]
struct ReferenceStride {
    entries: HashMap<u64, (u64, i64, u8)>, // pc -> (last, stride, confirms)
}

impl ReferenceStride {
    fn observe(&mut self, pc: u64, addr: u64) -> Option<u64> {
        match self.entries.get_mut(&pc) {
            None => {
                self.entries.insert(pc, (addr, 0, 0));
                None
            }
            Some((last, stride, confirms)) => {
                let delta = addr.wrapping_sub(*last) as i64;
                if delta != 0 && delta == *stride {
                    *confirms = confirms.saturating_add(1);
                } else {
                    *stride = delta;
                    *confirms = if delta == 0 { 0 } else { 1 };
                }
                *last = addr;
                if *confirms >= 2 {
                    Some(addr.wrapping_add_signed(*stride))
                } else {
                    None
                }
            }
        }
    }
}

/// Distinct word-aligned PCs that cannot collide in a 4096-entry table.
fn arb_stream() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec(
        (
            (0u64..64).prop_map(|i| 0x1000 + i * 4), // 64 distinct PCs
            0u64..1_000_000,
        ),
        1..500,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// With no table collisions the hardware table equals the ideal
    /// model on every prediction.
    #[test]
    fn table_matches_reference_without_collisions(stream in arb_stream()) {
        let mut table = StridePrefetcher::new(4096);
        let mut reference = ReferenceStride::default();
        for &(pc, addr) in &stream {
            let expected = reference.observe(pc, addr);
            let actual = table.observe(Pc::new(pc), Address::new(addr));
            prop_assert_eq!(
                actual.map(|a| a.raw()),
                expected,
                "divergence at pc={:#x} addr={:#x}", pc, addr
            );
        }
    }

    /// A collision-prone table never *invents* predictions the ideal
    /// model would not make: evictions can only suppress predictions.
    #[test]
    fn collisions_only_suppress(stream in arb_stream()) {
        let mut small = StridePrefetcher::new(4); // heavy collisions
        let mut reference = ReferenceStride::default();
        for &(pc, addr) in &stream {
            let expected = reference.observe(pc, addr);
            let actual = small.observe(Pc::new(pc), Address::new(addr));
            if let Some(predicted) = actual {
                prop_assert_eq!(Some(predicted.raw()), expected,
                    "small table predicted something the ideal model would not");
            }
        }
        prop_assert!(small.triggers() <= reference_trigger_bound(&stream));
    }

    /// A pure arithmetic stream predicts exactly from the third access.
    #[test]
    fn arithmetic_stream_predicts_from_third_access(
        base in 0u64..1_000_000,
        stride in prop::sample::select(vec![-4096i64, -64, 8, 64, 512, 4096]),
        len in 3usize..40,
    ) {
        let mut table = StridePrefetcher::new(64);
        let pc = Pc::new(0x400);
        for i in 0..len {
            let addr = Address::new(base.wrapping_add_signed(stride * i as i64));
            let prediction = table.observe(pc, addr);
            if i < 2 {
                prop_assert_eq!(prediction, None, "i={}", i);
            } else {
                prop_assert_eq!(
                    prediction,
                    Some(addr.offset(stride)),
                    "i={}", i
                );
            }
        }
    }
}

fn reference_trigger_bound(stream: &[(u64, u64)]) -> u64 {
    let mut reference = ReferenceStride::default();
    stream
        .iter()
        .filter(|&&(pc, addr)| reference.observe(pc, addr).is_some())
        .count() as u64
}
