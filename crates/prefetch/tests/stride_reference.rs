//! Property test: the direct-mapped stride table against a naive
//! unbounded per-PC reference model (collision-free regime).

use leakage_prefetch::StridePrefetcher;
use leakage_trace::{Address, Pc};
use proptest::prelude::*;
use std::collections::HashMap;

/// The textbook two-strike stride predictor, one entry per PC, no
/// capacity limits.
#[derive(Default)]
struct ReferenceStride {
    entries: HashMap<u64, (u64, i64, u8)>, // pc -> (last, stride, confirms)
}

impl ReferenceStride {
    fn observe(&mut self, pc: u64, addr: u64) -> Option<u64> {
        match self.entries.get_mut(&pc) {
            None => {
                self.entries.insert(pc, (addr, 0, 0));
                None
            }
            Some((last, stride, confirms)) => {
                let delta = addr.wrapping_sub(*last) as i64;
                if delta != 0 && delta == *stride {
                    *confirms = confirms.saturating_add(1);
                } else {
                    *stride = delta;
                    *confirms = if delta == 0 { 0 } else { 1 };
                }
                *last = addr;
                if *confirms >= 2 {
                    Some(addr.wrapping_add_signed(*stride))
                } else {
                    None
                }
            }
        }
    }
}

/// Distinct word-aligned PCs that cannot collide in a 4096-entry table.
fn arb_stream() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec(
        (
            (0u64..64).prop_map(|i| 0x1000 + i * 4), // 64 distinct PCs
            0u64..1_000_000,
        ),
        1..500,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// With no table collisions the hardware table equals the ideal
    /// model on every prediction.
    #[test]
    fn table_matches_reference_without_collisions(stream in arb_stream()) {
        let mut table = StridePrefetcher::new(4096);
        let mut reference = ReferenceStride::default();
        for &(pc, addr) in &stream {
            let expected = reference.observe(pc, addr);
            let actual = table.observe(Pc::new(pc), Address::new(addr));
            prop_assert_eq!(
                actual.map(|a| a.raw()),
                expected,
                "divergence at pc={:#x} addr={:#x}", pc, addr
            );
        }
    }

    /// A collision-prone table never *invents* predictions the ideal
    /// model would not make: evictions can only suppress predictions.
    #[test]
    fn collisions_only_suppress(stream in arb_stream()) {
        let mut small = StridePrefetcher::new(4); // heavy collisions
        let mut reference = ReferenceStride::default();
        for &(pc, addr) in &stream {
            let expected = reference.observe(pc, addr);
            let actual = small.observe(Pc::new(pc), Address::new(addr));
            if let Some(predicted) = actual {
                prop_assert_eq!(Some(predicted.raw()), expected,
                    "small table predicted something the ideal model would not");
            }
        }
        prop_assert!(small.triggers() <= reference_trigger_bound(&stream));
    }

    /// A pure arithmetic stream predicts exactly from the third access.
    #[test]
    fn arithmetic_stream_predicts_from_third_access(
        base in 0u64..1_000_000,
        stride in prop::sample::select(vec![-4096i64, -64, 8, 64, 512, 4096]),
        len in 3usize..40,
    ) {
        let mut table = StridePrefetcher::new(64);
        let pc = Pc::new(0x400);
        for i in 0..len {
            let addr = Address::new(base.wrapping_add_signed(stride * i as i64));
            let prediction = table.observe(pc, addr);
            if i < 2 {
                prop_assert_eq!(prediction, None, "i={}", i);
            } else {
                prop_assert_eq!(
                    prediction,
                    Some(addr.offset(stride)),
                    "i={}", i
                );
            }
        }
    }
}

/// A singleton access sequence trains nothing and predicts nothing —
/// in either implementation.
#[test]
fn singleton_sequence_never_predicts() {
    let mut table = StridePrefetcher::new(64);
    let mut reference = ReferenceStride::default();
    assert_eq!(table.observe(Pc::new(0x400), Address::new(1234)), None);
    assert_eq!(reference.observe(0x400, 1234), None);
    // A different PC immediately after is also a singleton.
    assert_eq!(table.observe(Pc::new(0x800), Address::new(5678)), None);
    assert_eq!(reference.observe(0x800, 5678), None);
}

/// Changing stride mid-stream must retrain: both implementations fall
/// silent for exactly two accesses, then predict with the new stride.
#[test]
fn stride_change_mid_stream_retrains_in_lockstep() {
    let mut table = StridePrefetcher::new(64);
    let mut reference = ReferenceStride::default();
    let pc = 0x400u64;
    let mut addr = 0x10_000u64;
    let mut feed = |table: &mut StridePrefetcher, reference: &mut ReferenceStride, a: u64| {
        let actual = table.observe(Pc::new(pc), Address::new(a)).map(|p| p.raw());
        let expected = reference.observe(pc, a);
        assert_eq!(actual, expected, "divergence at addr {a:#x}");
        actual
    };
    // Train stride +64 to confirmation.
    for _ in 0..4 {
        feed(&mut table, &mut reference, addr);
        addr += 64;
    }
    assert_eq!(feed(&mut table, &mut reference, addr), Some(addr + 64));
    // Switch to stride -128: the first observation with the new delta
    // only retrains (strike one); the next confirms and predicts.
    addr = addr.wrapping_add_signed(-128);
    assert_eq!(feed(&mut table, &mut reference, addr), None);
    addr = addr.wrapping_add_signed(-128);
    assert_eq!(
        feed(&mut table, &mut reference, addr),
        Some(addr.wrapping_add_signed(-128))
    );
}

/// A negative stride confirms and predicts downward, identically in
/// table and reference.
#[test]
fn negative_stride_predicts_downward() {
    let mut table = StridePrefetcher::new(64);
    let mut reference = ReferenceStride::default();
    let pc = 0x77cu64;
    for i in 0..6u64 {
        let a = 1_000_000 - i * 4096;
        let actual = table.observe(Pc::new(pc), Address::new(a)).map(|p| p.raw());
        let expected = reference.observe(pc, a);
        assert_eq!(actual, expected, "i={i}");
        if i >= 2 {
            assert_eq!(actual, Some(a - 4096), "i={i}");
        }
    }
}

/// Repeating the same address (stride zero) resets confirmation in
/// both implementations: no prediction until a stride re-confirms.
#[test]
fn zero_stride_resets_training() {
    let mut table = StridePrefetcher::new(64);
    let mut reference = ReferenceStride::default();
    let pc = 0x400u64;
    for (a, expect) in [
        (100, None),
        (164, None),
        (228, Some(292)), // +64 confirmed
        (228, None),      // zero stride: reset
        (292, None),      // retrain strike one
        (356, Some(420)), // strike two: re-confirmed
        (420, Some(484)), // still confirmed
    ] {
        let actual = table.observe(Pc::new(pc), Address::new(a)).map(|p| p.raw());
        let expected = reference.observe(pc, a);
        assert_eq!(actual, expected, "addr {a}");
        assert_eq!(actual, expect, "addr {a}");
    }
}

fn reference_trigger_bound(stream: &[(u64, u64)]) -> u64 {
    let mut reference = ReferenceStride::default();
    stream
        .iter()
        .filter(|&&(pc, addr)| reference.observe(pc, addr).is_some())
        .count() as u64
}
