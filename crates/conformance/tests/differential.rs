//! The differential conformance suite as a test battery.
//!
//! These tests are the acceptance gates of the conformance subsystem:
//! the greedy policy must equal the brute-force DP minimum on at least
//! 10 000 random (params, interval-set) instances, and the production
//! cache simulator and interval extractor must match the naive
//! references exactly on all six synthetic workloads at test scale.
//! `repro --conformance` runs the same checks via
//! [`leakage_conformance::run_conformance`].

use leakage_conformance::harness::{
    check_cache_fuzz, check_extractor_fuzz, check_fig6, check_prefetch_fuzz,
    check_streaming_intervals, check_theorem_dp, check_workloads,
};
use leakage_conformance::run_conformance;
use leakage_workloads::Scale;

#[test]
fn greedy_equals_dp_on_ten_thousand_instances() {
    let outcome = check_theorem_dp(10_000);
    assert!(outcome.passed, "{}: {}", outcome.name, outcome.detail);
}

#[test]
fn fig6_interpreter_matches_generalized_model() {
    let outcome = check_fig6();
    assert!(outcome.passed, "{}: {}", outcome.name, outcome.detail);
}

#[test]
fn production_cache_matches_reference_on_fuzz_traces() {
    let outcome = check_cache_fuzz(500);
    assert!(outcome.passed, "{}: {}", outcome.name, outcome.detail);
}

#[test]
fn streaming_extractors_match_quadratic_references_on_fuzz_traces() {
    let outcome = check_extractor_fuzz(500);
    assert!(outcome.passed, "{}: {}", outcome.name, outcome.detail);
}

#[test]
fn streaming_line_extractor_matches_oracle_on_fuzz_and_isa_programs() {
    let outcome = check_streaming_intervals(500);
    assert!(outcome.passed, "{}: {}", outcome.name, outcome.detail);
}

#[test]
fn prefetchers_match_references_on_fuzz_streams() {
    let outcome = check_prefetch_fuzz(500);
    assert!(outcome.passed, "{}: {}", outcome.name, outcome.detail);
}

#[test]
fn workloads_match_references_exactly_at_test_scale() {
    let (cache, extract) = check_workloads(Scale::Test);
    assert!(cache.passed, "{}: {}", cache.name, cache.detail);
    assert!(extract.passed, "{}: {}", extract.name, extract.detail);
}

#[test]
fn full_suite_reports_every_check() {
    // A fast full-suite pass exercising the aggregate report shape the
    // repro CLI consumes (instance counts reduced; the heavyweight
    // gates above run the real acceptance sizes).
    let report = run_conformance(Scale::Custom(20_000), 500);
    assert_eq!(report.checks.len(), 8);
    assert!(report.all_passed(), "failures: {:?}", report.failures());
}
