//! Directed differential cases for the prefetch analyzers against the
//! conformance references: singleton sequences, mid-stream stride
//! changes, negative strides, and next-line edge behavior.

use leakage_conformance::refprefetch::{ReferenceNextLine, ReferenceStride};
use leakage_prefetch::{NextLinePrefetcher, StridePrefetcher};
use leakage_trace::{Address, LineAddr, Pc};

#[test]
fn nextline_matches_reference_on_first_access_and_repeats() {
    let mut production = NextLinePrefetcher::new();
    let mut reference = ReferenceNextLine::new();
    // First access predicts, same-line repeats stay silent, line
    // changes predict again — including returning to a previous line.
    for line in [7u64, 7, 7, 8, 8, 7, 9] {
        let line = LineAddr::new(line);
        assert_eq!(
            production.observe(line),
            reference.observe(line),
            "divergence at {line}"
        );
    }
}

#[test]
fn nextline_singleton_predicts_successor() {
    let mut production = NextLinePrefetcher::new();
    let mut reference = ReferenceNextLine::new();
    let line = LineAddr::new(41);
    let p = production.observe(line);
    assert_eq!(p, reference.observe(line));
    assert_eq!(p, Some(LineAddr::new(42)));
}

#[test]
fn stride_singleton_and_mid_stream_change_match_reference() {
    let mut production = StridePrefetcher::new(256);
    let mut reference = ReferenceStride::new();
    let pc = Pc::new(0x1040);
    // Singleton: one access trains nothing.
    assert_eq!(production.observe(pc, Address::new(500)), None);
    assert_eq!(reference.observe(pc, Address::new(500)), None);
    // Build a +8 stride, break it with a jump, rebuild at -8: every
    // step agrees with the reference.
    let mut addr = 500i64;
    for delta in [8i64, 8, 8, 10_000, -8, -8, -8, -8] {
        addr += delta;
        let a = Address::new(addr as u64);
        assert_eq!(
            production.observe(pc, a),
            reference.observe(pc, a),
            "divergence at {a}"
        );
    }
}
