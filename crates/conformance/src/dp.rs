//! Brute-force minimizers over per-interval mode assignments.
//!
//! Theorem 1 says the greedy choice — pick each interval's mode from its
//! length against the inflection points — achieves the *global* minimum
//! over all ways of assigning a mode to every interval. The production
//! code embodies the greedy side (`EnergyContext::optimal_energy`,
//! `OptHybrid`); this module embodies the other side of the theorem:
//!
//! * [`min_energy_dp`] — a dynamic program over the interval sequence
//!   whose state is the interval index and whose choice set is the mode
//!   of that interval. Intervals do not interact (every interval's
//!   energy includes its own ramps back to full voltage, Eq. 1/Eq. 2),
//!   so the DP is exact, and it scales to the millions of interval
//!   classes a workload profile produces.
//! * [`min_energy_exhaustive`] — literal enumeration of all `3^n` mode
//!   assignments for small `n`, the ground truth the DP itself is
//!   checked against.
//!
//! Both treat a mode that cannot physically fit an interval (too short
//! for its transition latencies) as unavailable, exactly like the
//! production feasibility rule (`EnergyContext::mode_energy` returning
//! `None`). Active is always feasible, so a minimum always exists.

use leakage_core::{EnergyContext, PowerMode};
use leakage_intervals::{CompactIntervalDist, IntervalClass};

/// Minimum total energy over all per-interval mode assignments, by
/// dynamic programming over the interval sequence.
///
/// `dp[i][m]` is the least energy of the first `i` interval classes with
/// class `i` resting in mode `m`; because interval energies are
/// self-contained, the transition cost between stages is zero and the
/// recurrence is `dp[i][m] = min_m' dp[i-1][m'] + count_i * E(m, class_i)`.
/// The answer is `min_m dp[n][m]`.
pub fn min_energy_dp(ctx: &EnergyContext, dist: &CompactIntervalDist) -> f64 {
    // One DP stage per class; the running value is min_m' dp[i-1][m'].
    let mut best_prev = 0.0f64;
    for (class, count) in dist.iter() {
        let mut stage_best = f64::INFINITY;
        for &mode in &PowerMode::ALL {
            if let Some(e) = ctx.mode_energy(mode, class) {
                let candidate = best_prev + e * count as f64;
                if candidate < stage_best {
                    stage_best = candidate;
                }
            }
        }
        best_prev = stage_best;
    }
    best_prev
}

/// Minimum total energy over all `3^n` mode assignments, by literal
/// enumeration. Ground truth for [`min_energy_dp`] and for the greedy
/// production policies on small instances.
///
/// Assignments containing a mode that is infeasible for its interval
/// are skipped (that schedule cannot physically execute). The all-active
/// assignment is always feasible.
///
/// # Panics
///
/// Panics if `classes.len() > 16` — `3^17` assignments is past the
/// point where "brute force" stops being a test strategy.
pub fn min_energy_exhaustive(ctx: &EnergyContext, classes: &[IntervalClass]) -> f64 {
    assert!(
        classes.len() <= 16,
        "exhaustive enumeration capped at 16 intervals, got {}",
        classes.len()
    );
    let n = classes.len();
    let total_assignments = 3usize.pow(n as u32);
    let mut best = f64::INFINITY;
    for assignment in 0..total_assignments {
        let mut code = assignment;
        let mut total = 0.0f64;
        let mut feasible = true;
        for class in classes {
            let mode = PowerMode::ALL[code % 3];
            code /= 3;
            match ctx.mode_energy(mode, class) {
                Some(e) => total += e,
                None => {
                    feasible = false;
                    break;
                }
            }
        }
        if feasible && total < best {
            best = total;
        }
    }
    best
}

/// Total energy of the production greedy choice: each interval
/// independently takes its feasible argmin mode
/// (`EnergyContext::optimal_energy`). Theorem 1 claims this equals
/// [`min_energy_dp`] / [`min_energy_exhaustive`].
pub fn greedy_energy(ctx: &EnergyContext, dist: &CompactIntervalDist) -> f64 {
    dist.iter()
        .map(|(class, count)| ctx.optimal_energy(class) * count as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy_close;
    use leakage_core::RefetchAccounting;
    use leakage_energy::{CircuitParams, TechnologyNode};
    use leakage_intervals::{IntervalKind, WakeHints};

    fn ctx() -> EnergyContext {
        EnergyContext::new(
            CircuitParams::for_node(TechnologyNode::N70),
            RefetchAccounting::PaperStrict,
        )
    }

    fn interior(length: u64) -> IntervalClass {
        IntervalClass {
            length,
            kind: IntervalKind::Interior { reaccess: true },
            wake: WakeHints::NONE,
            dirty: false,
        }
    }

    #[test]
    fn dp_matches_exhaustive_on_mixed_lengths() {
        let ctx = ctx();
        let classes: Vec<_> = [3, 6, 7, 500, 1057, 1058, 50_000]
            .iter()
            .map(|&l| interior(l))
            .collect();
        let mut dist = CompactIntervalDist::new();
        for class in &classes {
            dist.add(*class, 1);
        }
        let dp = min_energy_dp(&ctx, &dist);
        let exhaustive = min_energy_exhaustive(&ctx, &classes);
        assert!(energy_close(dp, exhaustive), "dp {dp} vs exhaustive {exhaustive}");
    }

    #[test]
    fn greedy_achieves_the_dp_minimum() {
        let ctx = ctx();
        let mut dist = CompactIntervalDist::new();
        for (length, count) in [(4, 100), (300, 50), (5_000, 20), (2_000_000, 2)] {
            dist.add(interior(length), count);
        }
        let greedy = greedy_energy(&ctx, &dist);
        let dp = min_energy_dp(&ctx, &dist);
        assert!(energy_close(greedy, dp), "greedy {greedy} vs dp {dp}");
    }

    #[test]
    fn empty_distribution_costs_nothing() {
        let ctx = ctx();
        assert_eq!(min_energy_dp(&ctx, &CompactIntervalDist::new()), 0.0);
        assert_eq!(min_energy_exhaustive(&ctx, &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "capped at 16")]
    fn exhaustive_refuses_large_instances() {
        let classes = vec![interior(10); 17];
        let _ = min_energy_exhaustive(&ctx(), &classes);
    }
}
