//! A literal interpreter of the paper's Fig. 6 state machine.
//!
//! Fig. 6 draws three states — Active, Drowsy, Sleep — annotated with
//! static powers `P(·)`, connected by four edges annotated with
//! transition energies (`E_AD`, `E_DA`, `E_AS`, `E_SA`), plus the
//! dynamic refetch cost `C_D` charged on the miss a sleep induces.
//! There are no `Drowsy ↔ Sleep` edges.
//!
//! [`Fig6Machine`] transcribes that figure directly from
//! [`CircuitParams`]: a power per state, an energy per edge, and an
//! interpreter that walks an explicit timeline of edges and rests,
//! summing energy term by term. It shares no code with
//! `leakage-core`'s closed-form accounting — the point is that two
//! independent transcriptions of the same figure agree.

use leakage_core::PowerMode;
use leakage_energy::CircuitParams;
use leakage_intervals::IntervalClass;

/// One step of an explicit Fig. 6 timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Step {
    /// Traverse the edge `from → to` (must exist in Fig. 6).
    Edge(PowerMode, PowerMode),
    /// Rest in a state for a number of cycles.
    Rest(PowerMode, u64),
}

/// The transcribed state machine. See the module docs.
#[derive(Debug, Clone)]
pub struct Fig6Machine {
    /// `P(Active)`, `P(Drowsy)`, `P(Sleep)` in PowerMode::ALL order.
    power: [f64; 3],
    /// `edge[from][to]`; `None` where Fig. 6 has no edge.
    edge: [[Option<f64>; 3]; 3],
    /// `C_D`.
    refetch: f64,
}

fn mode_index(mode: PowerMode) -> usize {
    PowerMode::ALL
        .iter()
        .position(|&m| m == mode)
        .expect("PowerMode::ALL covers every mode")
}

impl Fig6Machine {
    /// Transcribes Fig. 6 for one set of circuit assumptions.
    pub fn from_params(params: &CircuitParams) -> Self {
        use PowerMode::*;
        let p = params.powers();
        let t = params.timings();
        let ramp = params.transition_model();
        let (pa, pd, ps) = (p.active, p.drowsy, p.sleep);
        let mut edge = [[None; 3]; 3];
        // Self-edges are free; the four drawn edges carry their ramp
        // energies; Sleep→Active additionally waits s4 cycles at full
        // power for the refetch to arrive.
        for mode in PowerMode::ALL {
            edge[mode_index(mode)][mode_index(mode)] = Some(0.0);
        }
        edge[mode_index(Active)][mode_index(Drowsy)] = Some(ramp.ramp_power(pa, pd) * t.d1 as f64);
        edge[mode_index(Drowsy)][mode_index(Active)] = Some(ramp.ramp_power(pd, pa) * t.d3 as f64);
        edge[mode_index(Active)][mode_index(Sleep)] = Some(ramp.ramp_power(pa, ps) * t.s1 as f64);
        edge[mode_index(Sleep)][mode_index(Active)] =
            Some(ramp.ramp_power(ps, pa) * t.s3 as f64 + pa * t.s4 as f64);
        Fig6Machine {
            power: [pa, pd, ps],
            edge,
            refetch: params.refetch_energy(),
        }
    }

    /// `P(state)`.
    pub fn state_power(&self, mode: PowerMode) -> f64 {
        self.power[mode_index(mode)]
    }

    /// The energy of one edge, or `None` where Fig. 6 draws none.
    pub fn edge_energy(&self, from: PowerMode, to: PowerMode) -> Option<f64> {
        self.edge[mode_index(from)][mode_index(to)]
    }

    /// `C_D`, the dynamic energy of the induced refetch miss.
    pub fn refetch_energy(&self) -> f64 {
        self.refetch
    }

    /// Walks a timeline, summing `P(state) * cycles` for rests and edge
    /// energies for transitions. Returns `None` if the timeline uses an
    /// edge Fig. 6 does not have, or rests in a state an edge did not
    /// lead to (a malformed schedule).
    pub fn run(&self, steps: &[Step]) -> Option<f64> {
        let mut total = 0.0;
        let mut state: Option<PowerMode> = None;
        for &step in steps {
            match step {
                Step::Edge(from, to) => {
                    if let Some(current) = state {
                        if current != from {
                            return None;
                        }
                    }
                    total += self.edge_energy(from, to)?;
                    state = Some(to);
                }
                Step::Rest(mode, cycles) => {
                    if let Some(current) = state {
                        if current != mode {
                            return None;
                        }
                    }
                    total += self.state_power(mode) * cycles as f64;
                    state = Some(mode);
                }
            }
        }
        Some(total)
    }

    /// The literal Fig. 6 timeline for spending one interval in `mode`,
    /// following Eq. 1/Eq. 2's edge-aware structure: the entry ramp
    /// exists only when the interval starts after an access (the frame
    /// is at full voltage and must ramp down), the exit ramp only when
    /// it ends with an access (the frame must be back at full voltage).
    ///
    /// Returns `None` when the interval is too short to hold its ramps
    /// — the same infeasibility rule as production.
    pub fn interval_timeline(
        &self,
        mode: PowerMode,
        class: &IntervalClass,
        timings_overhead: (u64, u64),
    ) -> Option<Vec<Step>> {
        use PowerMode::*;
        let entry = class.kind.starts_after_access();
        let exit = class.kind.ends_with_access();
        if mode == Active {
            return Some(vec![Step::Rest(Active, class.length)]);
        }
        let (entry_cycles, exit_cycles) = timings_overhead;
        let entry_cycles = if entry { entry_cycles } else { 0 };
        let exit_cycles = if exit { exit_cycles } else { 0 };
        let overhead = entry_cycles + exit_cycles;
        if class.length < overhead {
            return None;
        }
        let mut steps = Vec::new();
        if entry_cycles > 0 {
            steps.push(Step::Edge(Active, mode));
        }
        steps.push(Step::Rest(mode, class.length - overhead));
        if exit_cycles > 0 {
            steps.push(Step::Edge(mode, Active));
        }
        Some(steps)
    }

    /// Interval energy by literal interpretation: build the timeline,
    /// run it, and add `C_D` when a sleeping interval's closing access
    /// refetches (`charge_refetch` is the accounting decision, made by
    /// the caller). Entry/exit ramp *durations* come from the caller
    /// too ([`CircuitParams`] timings) — the machine itself only knows
    /// edge energies.
    pub fn interval_energy(
        &self,
        mode: PowerMode,
        class: &IntervalClass,
        timings_overhead: (u64, u64),
        charge_refetch: bool,
        writeback: f64,
    ) -> Option<f64> {
        let steps = self.interval_timeline(mode, class, timings_overhead)?;
        let mut total = self.run(&steps)?;
        if mode == PowerMode::Sleep {
            if charge_refetch {
                total += self.refetch;
            }
            if class.dirty {
                total += writeback;
            }
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_energy::TechnologyNode;
    use leakage_intervals::{IntervalKind, WakeHints};

    fn machine() -> Fig6Machine {
        Fig6Machine::from_params(&CircuitParams::for_node(TechnologyNode::N70))
    }

    #[test]
    fn missing_edges_and_malformed_timelines_are_rejected() {
        use PowerMode::*;
        let m = machine();
        assert_eq!(m.edge_energy(Drowsy, Sleep), None);
        assert_eq!(m.edge_energy(Sleep, Drowsy), None);
        assert!(m.run(&[Step::Edge(Drowsy, Sleep)]).is_none());
        // Rest in a state the previous edge did not lead to.
        assert!(m
            .run(&[Step::Edge(Active, Drowsy), Step::Rest(Sleep, 5)])
            .is_none());
    }

    #[test]
    fn active_interval_is_pure_residency() {
        let m = machine();
        let class = IntervalClass {
            length: 100,
            kind: IntervalKind::Interior { reaccess: true },
            wake: WakeHints::NONE,
            dirty: false,
        };
        let e = m
            .interval_energy(PowerMode::Active, &class, (0, 0), false, 0.0)
            .unwrap();
        assert_eq!(e, m.state_power(PowerMode::Active) * 100.0);
    }

    #[test]
    fn too_short_for_ramps_is_infeasible() {
        let m = machine();
        let params = CircuitParams::for_node(TechnologyNode::N70);
        let t = params.timings();
        let class = IntervalClass {
            length: t.d1 + t.d3 - 1,
            kind: IntervalKind::Interior { reaccess: true },
            wake: WakeHints::NONE,
            dirty: false,
        };
        assert!(m
            .interval_energy(PowerMode::Drowsy, &class, (t.d1, t.d3), false, 0.0)
            .is_none());
    }
}
