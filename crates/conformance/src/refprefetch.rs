//! Naive reference predictors for `leakage-prefetch`.
//!
//! * [`ReferenceNextLine`] — remembers only the previous line and
//!   predicts its successor on every line change, exactly the
//!   one-block-lookahead rule of §5.1.
//! * [`ReferenceStride`] — an *unbounded, collision-free* reference
//!   prediction table: a map keyed by full PC, applying the two-strike
//!   confirmation rule (predict `addr + stride` once the same nonzero
//!   stride has been seen twice in a row). The production table is
//!   direct-mapped and finite, so it can only differ by *suppressing*
//!   predictions after a collision evicts training state — never by
//!   predicting something the reference would not.

use std::collections::HashMap;

use leakage_trace::{Address, LineAddr, Pc};

/// Reference one-block-lookahead predictor.
#[derive(Debug, Clone, Default)]
pub struct ReferenceNextLine {
    last: Option<LineAddr>,
}

impl ReferenceNextLine {
    /// A predictor with no history.
    pub fn new() -> Self {
        ReferenceNextLine::default()
    }

    /// Observes an access; predicts the successor line on line change
    /// (including the very first access).
    pub fn observe(&mut self, line: LineAddr) -> Option<LineAddr> {
        if self.last == Some(line) {
            return None;
        }
        self.last = Some(line);
        Some(line.succ(1))
    }
}

/// Per-PC training state of [`ReferenceStride`].
#[derive(Debug, Clone, Copy)]
struct Training {
    last_addr: Address,
    stride: i64,
    confirmations: u32,
}

/// Reference stride predictor: unbounded table, full-PC keys, no
/// collisions, no eviction.
#[derive(Debug, Clone, Default)]
pub struct ReferenceStride {
    table: HashMap<u64, Training>,
}

impl ReferenceStride {
    /// An empty table.
    pub fn new() -> Self {
        ReferenceStride::default()
    }

    /// Observes one access by `pc` to `addr`; returns the prediction
    /// once the two-strike rule confirms the stride.
    pub fn observe(&mut self, pc: Pc, addr: Address) -> Option<Address> {
        match self.table.get_mut(&pc.raw()) {
            None => {
                self.table.insert(
                    pc.raw(),
                    Training {
                        last_addr: addr,
                        stride: 0,
                        confirmations: 0,
                    },
                );
                None
            }
            Some(t) => {
                let stride = addr.raw().wrapping_sub(t.last_addr.raw()) as i64;
                if stride != 0 && stride == t.stride {
                    t.confirmations += 1;
                } else {
                    t.stride = stride;
                    t.confirmations = if stride == 0 { 0 } else { 1 };
                }
                t.last_addr = addr;
                if t.confirmations >= 2 {
                    Some(addr.offset(t.stride))
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nextline_predicts_on_change_only() {
        let mut p = ReferenceNextLine::new();
        assert_eq!(p.observe(LineAddr::new(9)), Some(LineAddr::new(10)));
        assert_eq!(p.observe(LineAddr::new(9)), None);
        assert_eq!(p.observe(LineAddr::new(4)), Some(LineAddr::new(5)));
    }

    #[test]
    fn stride_two_strike_rule() {
        let mut p = ReferenceStride::new();
        let pc = Pc::new(0x40);
        assert_eq!(p.observe(pc, Address::new(0)), None);
        assert_eq!(p.observe(pc, Address::new(64)), None);
        assert_eq!(p.observe(pc, Address::new(128)), Some(Address::new(192)));
    }

    #[test]
    fn negative_stride_confirms_too() {
        let mut p = ReferenceStride::new();
        let pc = Pc::new(0x40);
        p.observe(pc, Address::new(3000));
        p.observe(pc, Address::new(2900));
        assert_eq!(p.observe(pc, Address::new(2800)), Some(Address::new(2700)));
    }
}
