//! Golden-artifact locking: byte-exact snapshots with readable diffs.
//!
//! A golden file pins the rendered output of a deterministic artifact
//! (a table's CSV at a fixed scale). [`check_golden`] compares a fresh
//! regeneration against the committed snapshot and, on mismatch,
//! produces a per-line diff a human can act on — not just "files
//! differ". Setting `LEAKAGE_BLESS=1` rewrites the snapshot instead,
//! which is how goldens are created and intentionally updated.

use std::fmt::Write as _;
use std::path::Path;

/// Compares `actual` against the golden file at `path`.
///
/// * With `LEAKAGE_BLESS=1` in the environment, writes `actual` to
///   `path` (creating parent directories) and returns `Ok`.
/// * A missing golden file is an error telling the operator to bless.
/// * A mismatch is an error carrying the [`diff_lines`] rendering.
pub fn check_golden(path: &Path, actual: &str) -> Result<(), String> {
    if std::env::var("LEAKAGE_BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("{}: creating golden dir: {e}", path.display()))?;
        }
        return std::fs::write(path, actual)
            .map_err(|e| format!("{}: blessing golden: {e}", path.display()));
    }
    let expected = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "{}: cannot read golden ({e}); run with LEAKAGE_BLESS=1 to create it",
            path.display()
        )
    })?;
    match diff_lines(&expected, actual) {
        None => Ok(()),
        Some(diff) => Err(format!(
            "{} diverged from golden (LEAKAGE_BLESS=1 re-blesses):\n{diff}",
            path.display()
        )),
    }
}

/// Line-by-line comparison: `None` when equal, otherwise a rendering
/// where each differing line shows `-` (golden) and `+` (actual).
pub fn diff_lines(expected: &str, actual: &str) -> Option<String> {
    if expected == actual {
        return None;
    }
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    let mut shown = 0usize;
    for i in 0..exp.len().max(act.len()) {
        let e = exp.get(i);
        let a = act.get(i);
        if e == a {
            continue;
        }
        if shown == 20 {
            let _ = writeln!(out, "  … further differences elided");
            break;
        }
        shown += 1;
        match (e, a) {
            (Some(e), Some(a)) => {
                let _ = writeln!(out, "  line {}:\n  - {e}\n  + {a}", i + 1);
            }
            (Some(e), None) => {
                let _ = writeln!(out, "  line {} only in golden:\n  - {e}", i + 1);
            }
            (None, Some(a)) => {
                let _ = writeln!(out, "  line {} only in actual:\n  + {a}", i + 1);
            }
            (None, None) => unreachable!(),
        }
    }
    if out.is_empty() {
        // Same lines but different trailing whitespace/newlines.
        let _ = writeln!(
            out,
            "  contents differ only in line endings or trailing whitespace \
             (golden {} bytes, actual {} bytes)",
            expected.len(),
            actual.len()
        );
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_strings_have_no_diff() {
        assert_eq!(diff_lines("a\nb\n", "a\nb\n"), None);
    }

    #[test]
    fn diff_pinpoints_lines() {
        let d = diff_lines("a\nb\nc\n", "a\nX\nc\nd\n").unwrap();
        assert!(d.contains("line 2"), "{d}");
        assert!(d.contains("- b") && d.contains("+ X"), "{d}");
        assert!(d.contains("line 4 only in actual"), "{d}");
    }

    #[test]
    fn whitespace_only_difference_is_reported() {
        let d = diff_lines("a\n", "a").unwrap();
        assert!(d.contains("line endings"), "{d}");
    }

    #[test]
    fn missing_golden_mentions_bless() {
        let err = check_golden(Path::new("/nonexistent/golden.csv"), "x").unwrap_err();
        assert!(err.contains("LEAKAGE_BLESS"), "{err}");
    }
}
