//! The differential harness: replay the same traces through production
//! and reference paths and demand agreement.
//!
//! Each `check_*` function runs one family of comparisons and returns a
//! [`CheckOutcome`]; [`run_conformance`] bundles the full suite into a
//! [`ConformanceReport`] (the payload of `repro --conformance` and of
//! the conformance CI job). All random inputs come from the vendored
//! proptest's deterministic [`TestRng`], so every run replays the same
//! instances.

use leakage_cachesim::{Cache, CacheConfig};
use leakage_core::envelope;
use leakage_core::policy::OptHybrid;
use leakage_core::{EnergyContext, GeneralizedModel, PowerMode, RefetchAccounting};
use leakage_energy::{CircuitParams, ModePowers, ModeTimings, TechnologyNode};
use leakage_intervals::{
    CompactIntervalDist, IntervalClass, IntervalExtractor, IntervalKind, LineCentricExtractor,
    StreamingExtractor, WakeHints,
};
use leakage_isa::{IsaSource, PROGRAMS};
use leakage_prefetch::{NextLinePrefetcher, StridePrefetcher};
use leakage_trace::{AccessKind, Cycle, LineAddr, MemoryAccess, Pc};
use leakage_workloads::{suite, Scale};
use proptest::TestRng;

use crate::dp::{greedy_energy, min_energy_dp, min_energy_exhaustive};
use crate::fig6::Fig6Machine;
use crate::refcache::ReferenceCache;
use crate::refextract::{
    reference_intervals, reference_line_intervals_quadratic, AccessEvent,
};
use crate::refprefetch::{ReferenceNextLine, ReferenceStride};
use crate::energy_close;

/// The verdict of one conformance check.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Stable check name (the manifest verdict key).
    pub name: &'static str,
    /// Whether production and reference agreed everywhere.
    pub passed: bool,
    /// What was compared — instance counts on success, the first
    /// divergence on failure.
    pub detail: String,
}

impl CheckOutcome {
    fn pass(name: &'static str, detail: String) -> Self {
        CheckOutcome { name, passed: true, detail }
    }

    fn fail(name: &'static str, detail: String) -> Self {
        CheckOutcome { name, passed: false, detail }
    }
}

/// The outcome of the full differential suite.
#[derive(Debug, Clone, Default)]
pub struct ConformanceReport {
    /// Every check that ran, in execution order.
    pub checks: Vec<CheckOutcome>,
}

impl ConformanceReport {
    /// Whether every check passed.
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// The names of failing checks.
    pub fn failures(&self) -> Vec<&'static str> {
        self.checks.iter().filter(|c| !c.passed).map(|c| c.name).collect()
    }
}

/// Deterministic RNG for one named check.
fn rng_for(check: &str) -> TestRng {
    TestRng::for_test(&format!("leakage_conformance::{check}"))
}

/// Random but physically sensible circuit parameters (the same envelope
/// of assumptions as `tests/theorem_properties.rs`).
fn sample_params(rng: &mut TestRng) -> CircuitParams {
    let active = 0.001 + rng.unit_f64() * 10.0;
    let sleep_ratio = rng.unit_f64() * 0.04;
    let drowsy_ratio = (0.05 + rng.unit_f64() * 0.85).max(sleep_ratio + 0.01);
    let refetch_units = 1.0 + rng.unit_f64() * 100_000.0;
    let d = 1 + rng.below(3);
    let s1 = d + 2 + rng.below(48);
    let s4 = rng.below(20);
    CircuitParams::builder()
        .powers(ModePowers::from_ratios(active, drowsy_ratio, sleep_ratio))
        .timings(ModeTimings { s1, s3: d, s4, d1: d, d3: d })
        .refetch_energy(refetch_units * active)
        .build()
}

/// A random interval class spanning every length regime and kind.
fn sample_class(rng: &mut TestRng, points_b: u64) -> IntervalClass {
    let length = match rng.below(5) {
        0 => rng.below(64),                          // around/below a
        1 => rng.below(2_048),                       // drowsy band
        2 => points_b.saturating_sub(rng.below(32)), // just below b
        3 => points_b + rng.below(64),               // just above b
        _ => rng.below(5_000_000),                   // deep sleep band
    };
    let kind = match rng.below(5) {
        0 => IntervalKind::Interior { reaccess: true },
        1 => IntervalKind::Interior { reaccess: false },
        2 => IntervalKind::Leading,
        3 => IntervalKind::Trailing,
        _ => IntervalKind::Untouched,
    };
    IntervalClass {
        length,
        kind,
        wake: WakeHints::NONE,
        dirty: rng.below(2) == 1,
    }
}

/// Theorem 1 end-to-end: on random (params, interval-set) instances the
/// greedy per-interval choice, the interval-sequence DP, the `3^n`
/// exhaustive enumeration (small instances), and the inflection-point
/// classification of `core::envelope` all land on the same minimum
/// total energy.
pub fn check_theorem_dp(instances: u32) -> CheckOutcome {
    const NAME: &str = "theorem1-dp";
    let mut rng = rng_for(NAME);
    let mut exhaustive_checked = 0u32;
    for instance in 0..instances {
        let params = sample_params(&mut rng);
        let accounting = if rng.below(2) == 0 {
            RefetchAccounting::PaperStrict
        } else {
            RefetchAccounting::DeadAware
        };
        let ctx = EnergyContext::new(params, accounting);
        let points = ctx.inflection_points();
        let n = 1 + rng.below(12) as usize;
        let classes: Vec<IntervalClass> = (0..n)
            .map(|_| sample_class(&mut rng, points.drowsy_sleep))
            .collect();
        let mut dist = CompactIntervalDist::new();
        for class in &classes {
            dist.add(*class, 1 + rng.below(1_000));
        }

        let greedy = greedy_energy(&ctx, &dist);
        let dp = min_energy_dp(&ctx, &dist);
        if !energy_close(greedy, dp) {
            return CheckOutcome::fail(
                NAME,
                format!("instance {instance}: greedy {greedy} != dp {dp} ({accounting:?})"),
            );
        }
        // The production policy framework must land on the same total.
        let hybrid = ctx.evaluate(&OptHybrid::new(), &dist).energy;
        if !energy_close(hybrid, dp) {
            return CheckOutcome::fail(
                NAME,
                format!("instance {instance}: OptHybrid {hybrid} != dp {dp}"),
            );
        }
        // Ground-truth enumeration on small instances.
        if n <= 6 && exhaustive_checked < 500 {
            exhaustive_checked += 1;
            let exhaustive = min_energy_exhaustive(&ctx, &classes);
            let dp_single: f64 = classes
                .iter()
                .map(|c| {
                    PowerMode::ALL
                        .iter()
                        .filter_map(|&m| ctx.mode_energy(m, c))
                        .fold(f64::INFINITY, f64::min)
                })
                .sum();
            if !energy_close(exhaustive, dp_single) {
                return CheckOutcome::fail(
                    NAME,
                    format!("instance {instance}: exhaustive {exhaustive} != per-interval {dp_single}"),
                );
            }
        }
        // Inflection-point classification (Theorem 1's statement) on
        // interior intervals, away from the exact tie lengths.
        for class in &classes {
            if class.kind != (IntervalKind::Interior { reaccess: true })
                || class.dirty
                || accounting != RefetchAccounting::PaperStrict
                || class.length == points.active_drowsy
                || class.length == points.drowsy_sleep
            {
                continue;
            }
            let mode = envelope::optimal_mode(class.length, &points);
            let (classified, _) = ctx.mode_energy_or_active(mode, class);
            let optimal = ctx.optimal_energy(class);
            if !energy_close(classified, optimal) {
                return CheckOutcome::fail(
                    NAME,
                    format!(
                        "instance {instance}: classification {mode:?} at length {} gives {classified}, optimum {optimal}",
                        class.length
                    ),
                );
            }
        }
    }
    CheckOutcome::pass(
        NAME,
        format!("{instances} instances (greedy == DP == OptHybrid; {exhaustive_checked} exhaustively enumerated)"),
    )
}

/// Random cache geometry small enough to force conflicts.
fn sample_cache_config(rng: &mut TestRng) -> CacheConfig {
    // Total size must be a power of two, so ways and sets both are.
    let ways = 1u32 << rng.below(3);
    let sets = 1u64 << rng.below(4);
    CacheConfig::new("fuzz", sets * u64::from(ways) * 64, ways, 64, 1)
        .expect("fuzz geometry is valid")
}

/// Differential cache check on fuzzed access streams: every access must
/// agree on hit/miss, evicted line, prior dirtiness and writeback, and
/// final counters must match exactly.
pub fn check_cache_fuzz(traces: u32) -> CheckOutcome {
    const NAME: &str = "cachesim-fuzz";
    let mut rng = rng_for(NAME);
    let mut accesses_checked = 0u64;
    for trace in 0..traces {
        let config = sample_cache_config(&mut rng);
        let mut production = Cache::new(config.clone());
        let mut reference = ReferenceCache::new(&config);
        let len = 50 + rng.below(400);
        for step in 0..len {
            // A small line universe keeps hits and conflicts frequent.
            let line = LineAddr::new(rng.below(48));
            let store = rng.below(4) == 0;
            let prod = production.access_with(line, store);
            let refr = reference.access(line, store);
            accesses_checked += 1;
            if (prod.hit, prod.evicted, prod.was_dirty, prod.writeback)
                != (refr.hit, refr.evicted, refr.was_dirty, refr.writeback)
            {
                return CheckOutcome::fail(
                    NAME,
                    format!(
                        "trace {trace} step {step} line {line}: production {prod:?} vs reference {refr:?} ({config})"
                    ),
                );
            }
        }
        let stats = production.stats();
        let prod_counts = (stats.hits, stats.misses, stats.evictions, stats.writebacks);
        if prod_counts != reference.counts() {
            return CheckOutcome::fail(
                NAME,
                format!(
                    "trace {trace}: counters {prod_counts:?} vs reference {:?}",
                    reference.counts()
                ),
            );
        }
    }
    CheckOutcome::pass(NAME, format!("{traces} fuzz traces, {accesses_checked} accesses"))
}

/// One benchmark side's replay through production cache + extractor,
/// recording the event list the references consume.
struct SideReplay {
    prod_dist: CompactIntervalDist,
    events: Vec<AccessEvent>,
    num_frames: u32,
    end: u64,
    counts: (u64, u64, u64, u64),
    ref_counts: (u64, u64, u64, u64),
    mismatches: u64,
}

fn replay_side(accesses: &[MemoryAccess], config: CacheConfig) -> SideReplay {
    let num_frames = config.num_frames();
    let line_bits = config.line_bits();
    let mut production = Cache::new(config.clone());
    let mut reference = ReferenceCache::new(&config);
    let mut extractor = IntervalExtractor::new(num_frames);
    let mut dist = CompactIntervalDist::new();
    let mut events = Vec::with_capacity(accesses.len());
    let mut mismatches = 0u64;
    let mut end = 0u64;
    for access in accesses {
        let line = access.addr.line(line_bits);
        let store = access.kind == AccessKind::Store;
        let prod = production.access_with(line, store);
        let refr = reference.access(line, store);
        if (prod.hit, prod.evicted, prod.was_dirty, prod.writeback)
            != (refr.hit, refr.evicted, refr.was_dirty, refr.writeback)
        {
            mismatches += 1;
        }
        let dirty = production.frame_dirty(prod.frame);
        extractor.on_access_full(prod.frame, access.cycle, prod.hit, dirty, &mut dist);
        events.push(AccessEvent {
            frame: prod.frame.index(),
            line,
            cycle: access.cycle.raw(),
            hit: prod.hit,
            dirty,
        });
        end = end.max(access.cycle.raw() + 1);
    }
    extractor.finish(Cycle::new(end), &mut dist);
    let stats = production.stats();
    SideReplay {
        prod_dist: dist,
        events,
        num_frames,
        end,
        counts: (stats.hits, stats.misses, stats.evictions, stats.writebacks),
        ref_counts: reference.counts(),
        mismatches,
    }
}

/// Differential replay of the six synthetic workloads: the production
/// cache must agree with the naive LRU on every access of both L1
/// sides, and the streaming interval extractor must produce exactly the
/// interval multiset the batch reference derives from the recorded
/// events. Returns the cache check and the extractor check.
pub fn check_workloads(scale: Scale) -> (CheckOutcome, CheckOutcome) {
    const CACHE_NAME: &str = "cachesim-workloads";
    const EXTRACT_NAME: &str = "extractor-workloads";
    let mut cache_detail = Vec::new();
    let mut extract_detail = Vec::new();
    let mut cache_failed = None;
    let mut extract_failed = None;
    for bench in &mut suite(scale) {
        let mut trace: Vec<MemoryAccess> = Vec::new();
        leakage_trace::TraceSource::run(bench, &mut trace);
        let (fetches, data): (Vec<MemoryAccess>, Vec<MemoryAccess>) =
            trace.iter().partition(|a| a.kind.is_fetch());
        for (side, accesses, config) in [
            ("l1i", &fetches, CacheConfig::alpha_l1i()),
            ("l1d", &data, CacheConfig::alpha_l1d()),
        ] {
            let replay = replay_side(accesses, config);
            if replay.mismatches > 0 || replay.counts != replay.ref_counts {
                cache_failed.get_or_insert(format!(
                    "{}/{side}: {} per-access mismatches, counters {:?} vs {:?}",
                    bench.name(),
                    replay.mismatches,
                    replay.counts,
                    replay.ref_counts
                ));
            }
            let reference = reference_intervals(replay.num_frames, &replay.events, replay.end);
            if replay.prod_dist != reference {
                extract_failed.get_or_insert(format!(
                    "{}/{side}: production dist ({} classes, {} cycles) != reference ({} classes, {} cycles)",
                    bench.name(),
                    replay.prod_dist.num_classes(),
                    replay.prod_dist.total_cycles(),
                    reference.num_classes(),
                    reference.total_cycles()
                ));
            }
            // Coverage invariant: per-frame lengths tile the timeline.
            let expected_cycles = u64::from(replay.num_frames) * replay.end;
            if replay.prod_dist.total_cycles() != expected_cycles {
                extract_failed.get_or_insert(format!(
                    "{}/{side}: coverage {} != frames x end {}",
                    bench.name(),
                    replay.prod_dist.total_cycles(),
                    expected_cycles
                ));
            }
            cache_detail.push(format!("{}/{side}: {} accesses", bench.name(), accesses.len()));
            extract_detail.push(format!(
                "{}/{side}: {} intervals",
                bench.name(),
                replay.prod_dist.total_intervals()
            ));
        }
    }
    let cache = match cache_failed {
        Some(detail) => CheckOutcome::fail(CACHE_NAME, detail),
        None => CheckOutcome::pass(CACHE_NAME, cache_detail.join("; ")),
    };
    let extract = match extract_failed {
        Some(detail) => CheckOutcome::fail(EXTRACT_NAME, detail),
        None => CheckOutcome::pass(EXTRACT_NAME, extract_detail.join("; ")),
    };
    (cache, extract)
}

/// Differential check of the streaming extractors on fuzzed traces,
/// against the O(n²) references — including the line-centric variant.
pub fn check_extractor_fuzz(traces: u32) -> CheckOutcome {
    const NAME: &str = "extractor-fuzz";
    let mut rng = rng_for(NAME);
    for trace in 0..traces {
        let num_frames = 1 + rng.below(8) as u32;
        let len = rng.below(200) as usize;
        let mut cycle = 0u64;
        let mut events = Vec::with_capacity(len);
        for _ in 0..len {
            // Nondecreasing cycles; frequent same-cycle repeats to
            // exercise zero-length intervals.
            cycle += rng.below(4);
            events.push(AccessEvent {
                frame: rng.below(u64::from(num_frames)) as u32,
                line: LineAddr::new(rng.below(6)),
                cycle,
                hit: rng.below(2) == 1,
                dirty: rng.below(2) == 1,
            });
        }
        let end = cycle + rng.below(10);

        // Frame-keyed streaming extractor vs quadratic reference.
        let mut extractor = IntervalExtractor::new(num_frames);
        let mut prod = CompactIntervalDist::new();
        for e in &events {
            extractor.on_access_full(
                leakage_cachesim::FrameId::new(e.frame),
                Cycle::new(e.cycle),
                e.hit,
                e.dirty,
                &mut prod,
            );
        }
        extractor.finish(Cycle::new(end), &mut prod);
        let reference = crate::refextract::reference_intervals_quadratic(num_frames, &events, end);
        if prod != reference {
            return CheckOutcome::fail(
                NAME,
                format!("trace {trace}: frame-keyed dist diverges ({len} events, {num_frames} frames)"),
            );
        }

        // Line-keyed streaming extractor vs quadratic reference.
        let mut line_extractor = LineCentricExtractor::new();
        let mut line_prod = CompactIntervalDist::new();
        for e in &events {
            line_extractor.on_access(e.line, Cycle::new(e.cycle), &mut line_prod);
        }
        line_extractor.finish(Cycle::new(end), &mut line_prod);
        let line_reference = reference_line_intervals_quadratic(&events, end);
        if line_prod != line_reference {
            return CheckOutcome::fail(
                NAME,
                format!("trace {trace}: line-centric dist diverges ({len} events)"),
            );
        }
    }
    CheckOutcome::pass(NAME, format!("{traces} fuzz traces (frame-keyed and line-centric)"))
}

/// The bounded-state streaming extractor against the line-keyed O(n²)
/// oracle: fuzzed finite traces (explicit ends, same-cycle repeats,
/// zero-length tails) plus the executed trace of every ISA program,
/// demanding exact structural equality and resident state bounded by
/// the number of live lines.
pub fn check_streaming_intervals(traces: u32) -> CheckOutcome {
    const NAME: &str = "streaming_intervals";
    let mut rng = rng_for(NAME);
    // Fuzzed traces over a 6-line universe, nondecreasing cycles.
    for trace in 0..traces {
        let len = rng.below(200) as usize;
        let mut cycle = 0u64;
        let mut events = Vec::with_capacity(len);
        for _ in 0..len {
            cycle += rng.below(4);
            events.push(AccessEvent {
                frame: 0,
                line: LineAddr::new(rng.below(6)),
                cycle,
                hit: rng.below(2) == 1,
                dirty: rng.below(2) == 1,
            });
        }
        let end = cycle + rng.below(10);
        let mut streaming = StreamingExtractor::new(6, CompactIntervalDist::new());
        for e in &events {
            streaming.on_access(e.line, Cycle::new(e.cycle));
        }
        let peak = streaming.peak_resident_lines();
        if peak > 6 {
            return CheckOutcome::fail(
                NAME,
                format!("fuzz trace {trace}: {peak} resident lines from a 6-line universe"),
            );
        }
        let prod = streaming.finish_at(Cycle::new(end));
        let reference = reference_line_intervals_quadratic(&events, end);
        if prod != reference {
            return CheckOutcome::fail(
                NAME,
                format!("fuzz trace {trace}: streaming dist diverges ({len} events, end {end})"),
            );
        }
    }
    // Executed ISA programs through the TraceSink adapter (64-byte
    // lines), watermark finalization on both sides.
    let mut program_detail = Vec::new();
    for program in &PROGRAMS {
        let mut accesses: Vec<MemoryAccess> = Vec::new();
        leakage_trace::TraceSource::run(&mut IsaSource::new(program, 25_000, 7), &mut accesses);
        let events: Vec<AccessEvent> = accesses
            .iter()
            .map(|a| AccessEvent {
                frame: 0,
                line: a.addr.line(6),
                cycle: a.cycle.raw(),
                hit: false,
                dirty: false,
            })
            .collect();
        let live_lines: std::collections::HashSet<LineAddr> =
            events.iter().map(|e| e.line).collect();
        let end = events.last().map_or(0, |e| e.cycle + 1);
        let mut streaming = StreamingExtractor::new(6, CompactIntervalDist::new());
        for access in &accesses {
            leakage_trace::TraceSink::accept(&mut streaming, *access);
        }
        let peak = streaming.peak_resident_lines();
        if peak > live_lines.len() {
            return CheckOutcome::fail(
                NAME,
                format!(
                    "{}: {peak} resident lines exceed the {} lines the program touches",
                    program.name,
                    live_lines.len()
                ),
            );
        }
        let prod = streaming.finish();
        let reference = reference_line_intervals_quadratic(&events, end);
        if prod != reference {
            return CheckOutcome::fail(
                NAME,
                format!(
                    "{}: streaming dist ({} classes, {} cycles) != oracle ({} classes, {} cycles)",
                    program.name,
                    prod.num_classes(),
                    prod.total_cycles(),
                    reference.num_classes(),
                    reference.total_cycles()
                ),
            );
        }
        program_detail.push(format!("{}: {} events, {} lines", program.name, events.len(), live_lines.len()));
    }
    CheckOutcome::pass(
        NAME,
        format!("{traces} fuzz traces; {}", program_detail.join("; ")),
    )
}

/// The generalized model against the literal Fig. 6 interpreter: state
/// powers, the four edge energies (and the two missing edges), and
/// interval energies across modes, kinds, dirtiness and both refetch
/// accountings, for every technology node.
pub fn check_fig6() -> CheckOutcome {
    const NAME: &str = "fig6-interpreter";
    let mut compared = 0u64;
    for node in TechnologyNode::ALL {
        let params = CircuitParams::for_node(node);
        let machine = Fig6Machine::from_params(&params);
        let t = params.timings();
        for accounting in [RefetchAccounting::PaperStrict, RefetchAccounting::DeadAware] {
            let model = GeneralizedModel::with_accounting(params.clone(), accounting);
            let ctx = model.context();
            // Edges.
            for from in PowerMode::ALL {
                for to in PowerMode::ALL {
                    let prod = model.try_transition_energy(from, to);
                    let refr = machine.edge_energy(from, to);
                    let agree = match (prod, refr) {
                        (None, None) => true,
                        (Some(p), Some(r)) => energy_close(p, r),
                        _ => false,
                    };
                    if !agree {
                        return CheckOutcome::fail(
                            NAME,
                            format!("{node:?} edge {from:?}->{to:?}: {prod:?} vs {refr:?}"),
                        );
                    }
                    compared += 1;
                }
                if !energy_close(model.state_power(from), machine.state_power(from)) {
                    return CheckOutcome::fail(
                        NAME,
                        format!("{node:?} state power {from:?} diverges"),
                    );
                }
            }
            if !energy_close(model.refetch_energy(), machine.refetch_energy()) {
                return CheckOutcome::fail(NAME, format!("{node:?} refetch energy diverges"));
            }
            // Interval energies across the length grid.
            let points = ctx.inflection_points();
            let lengths = [
                0,
                1,
                t.d1 + t.d3,
                t.s1 + t.s3 + t.s4,
                points.active_drowsy,
                points.active_drowsy + 1,
                points.drowsy_sleep,
                points.drowsy_sleep + 1,
                100_000,
                10_000_000,
            ];
            let kinds = [
                IntervalKind::Interior { reaccess: true },
                IntervalKind::Interior { reaccess: false },
                IntervalKind::Leading,
                IntervalKind::Trailing,
                IntervalKind::Untouched,
            ];
            for &length in &lengths {
                for kind in kinds {
                    for dirty in [false, true] {
                        let class = IntervalClass { length, kind, wake: WakeHints::NONE, dirty };
                        for mode in PowerMode::ALL {
                            let overhead = match mode {
                                PowerMode::Active => (0, 0),
                                PowerMode::Drowsy => (t.d1, t.d3),
                                PowerMode::Sleep => (t.s1, t.s3 + t.s4),
                            };
                            let prod = ctx.mode_energy(mode, &class);
                            let refr = machine.interval_energy(
                                mode,
                                &class,
                                overhead,
                                ctx.charges_refetch(&class),
                                0.0,
                            );
                            let agree = match (prod, refr) {
                                (None, None) => true,
                                (Some(p), Some(r)) => energy_close(p, r),
                                _ => false,
                            };
                            if !agree {
                                return CheckOutcome::fail(
                                    NAME,
                                    format!(
                                        "{node:?} {accounting:?} {mode:?} length {length} {kind:?} dirty {dirty}: {prod:?} vs {refr:?}"
                                    ),
                                );
                            }
                            compared += 1;
                        }
                    }
                }
            }
        }
    }
    CheckOutcome::pass(NAME, format!("{compared} energies across {} nodes", TechnologyNode::ALL.len()))
}

/// Production prefetchers against the naive references on fuzzed
/// streams: next-line must agree exactly; the stride table, sized so
/// the fuzzed PCs cannot collide, must agree exactly too.
pub fn check_prefetch_fuzz(streams: u32) -> CheckOutcome {
    const NAME: &str = "prefetch-fuzz";
    let mut rng = rng_for(NAME);
    let mut observations = 0u64;
    for stream in 0..streams {
        let mut prod_next = NextLinePrefetcher::new();
        let mut ref_next = ReferenceNextLine::new();
        // 1024 slots, PCs of the form (slot * 4) with slot < 64: each PC
        // owns its slot, so the direct-mapped table behaves like a map.
        let mut prod_stride = StridePrefetcher::new(1024);
        let mut ref_stride = ReferenceStride::new();
        let len = 20 + rng.below(200);
        let mut walker = rng.below(1u64 << 30);
        for step in 0..len {
            let line = LineAddr::new(rng.below(64));
            if prod_next.observe(line) != ref_next.observe(line) {
                return CheckOutcome::fail(
                    NAME,
                    format!("stream {stream} step {step}: next-line diverges at {line}"),
                );
            }
            let pc = Pc::new(rng.below(64) * 4);
            // Mix strided walks with random jumps so confirmation state
            // is built and broken mid-stream; negative strides included.
            match rng.below(4) {
                0 => walker = rng.below(1u64 << 30),
                1 => walker = walker.wrapping_add_signed(-64),
                _ => walker = walker.wrapping_add(64),
            }
            let addr = leakage_trace::Address::new(walker);
            let prod = prod_stride.observe(pc, addr);
            let refr = ref_stride.observe(pc, addr);
            if prod != refr {
                return CheckOutcome::fail(
                    NAME,
                    format!("stream {stream} step {step}: stride diverges at {pc} {addr} ({prod:?} vs {refr:?})"),
                );
            }
            observations += 2;
        }
    }
    CheckOutcome::pass(NAME, format!("{streams} streams, {observations} observations"))
}

/// Runs the full differential suite. `scale` bounds the workload
/// replays (the fuzz and analytic checks are scale-independent);
/// `theorem_instances` sizes the Theorem 1 sweep — the acceptance
/// threshold is 10 000.
pub fn run_conformance(scale: Scale, theorem_instances: u32) -> ConformanceReport {
    let mut report = ConformanceReport::default();
    report.checks.push(check_theorem_dp(theorem_instances));
    report.checks.push(check_fig6());
    report.checks.push(check_cache_fuzz(200));
    report.checks.push(check_extractor_fuzz(200));
    report.checks.push(check_streaming_intervals(200));
    report.checks.push(check_prefetch_fuzz(200));
    let (cache, extract) = check_workloads(scale);
    report.checks.push(cache);
    report.checks.push(extract);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_aggregates_verdicts() {
        let mut report = ConformanceReport::default();
        report.checks.push(CheckOutcome::pass("a", String::new()));
        assert!(report.all_passed());
        report.checks.push(CheckOutcome::fail("b", "broke".into()));
        assert!(!report.all_passed());
        assert_eq!(report.failures(), vec!["b"]);
    }
}
