//! Differential conformance oracles for the leakage-limit study.
//!
//! Every number in the reproduction flows through a stack of simulators
//! — cache model, interval extractor, energy accounting, prefetch
//! analysis — and a silent divergence in any layer corrupts the results
//! without failing a test. This crate holds the *reference
//! implementations*: small, brute-force, obviously-correct versions of
//! each production component, plus a [`harness`] that replays the same
//! traces through both paths and demands agreement.
//!
//! | reference | checks | module |
//! |-----------|--------|--------|
//! | mode-assignment DP / exhaustive enumeration | Theorem 1 greedy optimality (`leakage-core`) | [`dp`] |
//! | naive MRU-list LRU cache | `leakage-cachesim` hit/miss/eviction/writeback | [`refcache`] |
//! | batch + O(n²) interval extractors | `leakage-intervals` streaming extractors | [`refextract`] |
//! | literal Fig. 6 state-machine interpreter | `leakage-core` generalized model | [`fig6`] |
//! | unbounded-table next-line / stride predictors | `leakage-prefetch` analyzers | [`refprefetch`] |
//!
//! The references deliberately trade every efficiency concern for
//! transparency: they buffer whole traces, scan quadratically, and
//! enumerate exponentially. They are test oracles, not simulators.
//!
//! Tolerance policy: structural quantities (hits, misses, interval
//! multisets, mode choices) must match **exactly**; energy totals are
//! compared to a relative tolerance of `1e-9` ([`ENERGY_RTOL`]), which
//! admits floating-point reassociation between the two accounting paths
//! and nothing else.
//!
//! The `repro --conformance` mode runs the full [`harness`] suite and
//! records one verdict per check in the telemetry manifest; the same
//! checks back the `leakage-conformance` integration tests in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dp;
pub mod fig6;
pub mod golden;
pub mod harness;
pub mod refcache;
pub mod refextract;
pub mod refprefetch;

pub use harness::{run_conformance, CheckOutcome, ConformanceReport};

/// Relative tolerance for energy-total comparisons between production
/// and reference accounting. Structural comparisons are exact.
pub const ENERGY_RTOL: f64 = 1e-9;

/// Whether two energy totals agree to [`ENERGY_RTOL`].
pub fn energy_close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= ENERGY_RTOL * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_close_is_relative() {
        assert!(energy_close(1.0e12, 1.0e12 + 1.0));
        assert!(!energy_close(1.0e12, 1.001e12));
        assert!(energy_close(0.0, 0.0));
        assert!(energy_close(0.0, 1e-10));
    }
}
