//! A naive set-associative LRU cache: the reference for `leakage-cachesim`.
//!
//! The production [`Cache`](leakage_cachesim::Cache) keeps packed way
//! arrays and a byte-encoded per-set recency permutation for speed. The
//! reference keeps, per set, a plain `Vec` of resident lines ordered
//! most-recent-first, and recomputes everything by scanning it. The two
//! must agree on every observable of every access: hit/miss, the
//! displaced line, its dirtiness, and the writeback decision. (Frame
//! *numbers* are a production-side implementation detail — the
//! reference has no physical ways — and are not compared.)

use leakage_cachesim::CacheConfig;
use leakage_trace::LineAddr;

/// One resident line of the reference cache.
#[derive(Debug, Clone, Copy)]
struct RefLine {
    line: LineAddr,
    dirty: bool,
}

/// The observables of one reference-cache access, mirroring the
/// comparable fields of [`AccessResult`](leakage_cachesim::AccessResult).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefAccess {
    /// Whether the line was already resident.
    pub hit: bool,
    /// The displaced line, when the fill evicted a valid one.
    pub evicted: Option<LineAddr>,
    /// Dirtiness of the data the access displaced or re-touched (the
    /// hit line's prior dirtiness, or the victim's).
    pub was_dirty: bool,
    /// Whether the access displaced a dirty line.
    pub writeback: bool,
}

/// The naive LRU model. See the module docs.
#[derive(Debug, Clone)]
pub struct ReferenceCache {
    /// `sets[s]` lists the resident lines of set `s`, most recent first.
    sets: Vec<Vec<RefLine>>,
    ways: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    writebacks: u64,
}

impl ReferenceCache {
    /// Builds an empty reference cache with the production geometry.
    pub fn new(config: &CacheConfig) -> Self {
        ReferenceCache {
            sets: vec![Vec::new(); config.num_sets() as usize],
            ways: config.ways() as usize,
            hits: 0,
            misses: 0,
            evictions: 0,
            writebacks: 0,
        }
    }

    /// The set a line maps to: the low bits of the line index, as in any
    /// power-of-two-indexed cache.
    fn set_of(&self, line: LineAddr) -> usize {
        (line.index() % self.sets.len() as u64) as usize
    }

    /// Performs one access; a `store` marks the line dirty.
    pub fn access(&mut self, line: LineAddr, store: bool) -> RefAccess {
        let set = self.set_of(line);
        let lines = &mut self.sets[set];
        if let Some(pos) = lines.iter().position(|r| r.line == line) {
            // Hit: report prior dirtiness, absorb the store, move to MRU.
            let mut entry = lines.remove(pos);
            let was_dirty = entry.dirty;
            entry.dirty |= store;
            lines.insert(0, entry);
            self.hits += 1;
            return RefAccess {
                hit: true,
                evicted: None,
                was_dirty,
                writeback: false,
            };
        }
        // Miss: fill at MRU; a full set drops its LRU (last) entry.
        self.misses += 1;
        let victim = if lines.len() == self.ways {
            lines.pop()
        } else {
            None
        };
        lines.insert(0, RefLine { line, dirty: store });
        match victim {
            Some(v) => {
                self.evictions += 1;
                if v.dirty {
                    self.writebacks += 1;
                }
                RefAccess {
                    hit: false,
                    evicted: Some(v.line),
                    was_dirty: v.dirty,
                    writeback: v.dirty,
                }
            }
            None => RefAccess {
                hit: false,
                evicted: None,
                was_dirty: false,
                writeback: false,
            },
        }
    }

    /// Whether `line` is resident.
    pub fn resident(&self, line: LineAddr) -> bool {
        self.sets[self.set_of(line)].iter().any(|r| r.line == line)
    }

    /// Dirtiness of `line` if resident.
    pub fn line_dirty(&self, line: LineAddr) -> Option<bool> {
        self.sets[self.set_of(line)]
            .iter()
            .find(|r| r.line == line)
            .map(|r| r.dirty)
    }

    /// (hits, misses, evictions, writebacks) so far.
    pub fn counts(&self) -> (u64, u64, u64, u64) {
        (self.hits, self.misses, self.evictions, self.writebacks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(sets_bytes: u64, ways: u32) -> ReferenceCache {
        ReferenceCache::new(&CacheConfig::new("ref", sets_bytes, ways, 64, 1).unwrap())
    }

    #[test]
    fn hits_after_fill_and_lru_eviction_order() {
        // 2 sets x 2 ways of 64-byte lines.
        let mut c = cache(256, 2);
        assert!(!c.access(LineAddr::new(0), false).hit);
        assert!(!c.access(LineAddr::new(2), false).hit); // same set 0
        assert!(c.access(LineAddr::new(0), false).hit); // 0 now MRU
        let fill = c.access(LineAddr::new(4), false); // evicts LRU = 2
        assert_eq!(fill.evicted, Some(LineAddr::new(2)));
        assert_eq!(c.counts(), (1, 3, 1, 0));
    }

    #[test]
    fn dirty_lines_report_writebacks() {
        let mut c = cache(128, 1); // 2 sets x 1 way: every conflict evicts
        c.access(LineAddr::new(0), true); // dirty fill
        let evicting = c.access(LineAddr::new(2), false);
        assert!(evicting.writeback && evicting.was_dirty);
        assert_eq!(evicting.evicted, Some(LineAddr::new(0)));
        assert_eq!(c.counts().3, 1);
    }

    #[test]
    fn store_hit_dirties_without_writeback() {
        let mut c = cache(128, 2);
        c.access(LineAddr::new(0), false);
        let hit = c.access(LineAddr::new(0), true);
        assert!(hit.hit && !hit.was_dirty && !hit.writeback);
        assert_eq!(c.line_dirty(LineAddr::new(0)), Some(true));
    }
}
