//! Batch reference interval extractors.
//!
//! The production extractors are streaming: `IntervalExtractor` keeps
//! one slot per frame and closes intervals online;
//! `LineCentricExtractor` does the same keyed by line address. The
//! references here buffer the *whole* event list first and then derive
//! each frame's (or line's) intervals by re-reading it — the most
//! literal transcription of the interval definition in the paper: the
//! gaps between consecutive accesses to one frame, plus the leading gap
//! before its first access, the trailing gap after its last, and a
//! full-trace interval for frames never touched.
//!
//! Two variants:
//!
//! * [`reference_intervals`] buckets events by frame in one pass, then
//!   replays each bucket — O(n) memory, fast enough to run against all
//!   six workloads at full test scale.
//! * [`reference_intervals_quadratic`] rescans the entire event list
//!   once per frame — the O(frames · n) "no cleverness whatsoever"
//!   oracle, used on fuzzed traces (and to cross-check the bucketed
//!   variant).
//! * [`reference_line_intervals_quadratic`] does the same per distinct
//!   *line*, mirroring `LineCentricExtractor` (interior intervals are
//!   always re-accesses; no leading/untouched intervals).

use leakage_intervals::{CompactIntervalDist, IntervalClass, IntervalKind, WakeHints};
use leakage_trace::LineAddr;

/// One recorded access event, the replay input for the reference
/// extractors: frame and line resolved by the cache, timestamp, hit
/// flag, and the frame's dirtiness *after* the access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// The frame the access resolved to (hit frame or fill target).
    pub frame: u32,
    /// The line accessed.
    pub line: LineAddr,
    /// Issue cycle.
    pub cycle: u64,
    /// Whether the access hit.
    pub hit: bool,
    /// Whether the frame's resident line is dirty after this access.
    pub dirty: bool,
}

/// Derives a frame's interval classes from its access list (cycles in
/// nondecreasing order) and the trace end.
fn frame_intervals(accesses: &[&AccessEvent], end: u64, dist: &mut CompactIntervalDist) {
    match accesses.split_first() {
        None => dist.add(
            IntervalClass {
                length: end,
                kind: IntervalKind::Untouched,
                wake: WakeHints::NONE,
                dirty: false,
            },
            1,
        ),
        Some((first, rest)) => {
            dist.add(
                IntervalClass {
                    length: first.cycle,
                    kind: IntervalKind::Leading,
                    wake: WakeHints::NONE,
                    dirty: false,
                },
                1,
            );
            let mut prev = *first;
            for event in rest {
                dist.add(
                    IntervalClass {
                        length: event.cycle - prev.cycle,
                        kind: IntervalKind::Interior { reaccess: event.hit },
                        wake: WakeHints::NONE,
                        dirty: prev.dirty,
                    },
                    1,
                );
                prev = *event;
            }
            dist.add(
                IntervalClass {
                    length: end.saturating_sub(prev.cycle),
                    kind: IntervalKind::Trailing,
                    wake: WakeHints::NONE,
                    dirty: prev.dirty,
                },
                1,
            );
        }
    }
}

/// Bucketed reference: one pass to group events by frame (preserving
/// order), then per-frame interval derivation. Checks
/// `IntervalExtractor` exactly (for traces extracted without wake
/// hints).
pub fn reference_intervals(
    num_frames: u32,
    events: &[AccessEvent],
    end: u64,
) -> CompactIntervalDist {
    let mut buckets: Vec<Vec<&AccessEvent>> = vec![Vec::new(); num_frames as usize];
    for event in events {
        buckets[event.frame as usize].push(event);
    }
    let mut dist = CompactIntervalDist::new();
    for bucket in &buckets {
        frame_intervals(bucket, end, &mut dist);
    }
    dist
}

/// Quadratic reference: for every frame, rescan the whole event list.
/// Identical output to [`reference_intervals`]; exists so the oracle
/// used on fuzzed traces has no data-structure cleverness at all.
pub fn reference_intervals_quadratic(
    num_frames: u32,
    events: &[AccessEvent],
    end: u64,
) -> CompactIntervalDist {
    let mut dist = CompactIntervalDist::new();
    for frame in 0..num_frames {
        let mine: Vec<&AccessEvent> = events.iter().filter(|e| e.frame == frame).collect();
        frame_intervals(&mine, end, &mut dist);
    }
    dist
}

/// Quadratic line-centric reference, mirroring `LineCentricExtractor`:
/// for every distinct line, rescan the whole event list; interior
/// intervals are always re-accesses (a line-keyed timeline has no
/// fills-over-other-data), each line contributes a trailing interval,
/// and there are no leading or untouched intervals.
pub fn reference_line_intervals_quadratic(
    events: &[AccessEvent],
    end: u64,
) -> CompactIntervalDist {
    let mut seen: Vec<LineAddr> = Vec::new();
    for event in events {
        if !seen.contains(&event.line) {
            seen.push(event.line);
        }
    }
    let mut dist = CompactIntervalDist::new();
    for &line in &seen {
        let mut prev: Option<u64> = None;
        for event in events.iter().filter(|e| e.line == line) {
            if let Some(last) = prev {
                dist.add(
                    IntervalClass {
                        length: event.cycle - last,
                        kind: IntervalKind::Interior { reaccess: true },
                        wake: WakeHints::NONE,
                        dirty: false,
                    },
                    1,
                );
            }
            prev = Some(event.cycle);
        }
        dist.add(
            IntervalClass {
                length: end.saturating_sub(prev.expect("line was seen")),
                kind: IntervalKind::Trailing,
                wake: WakeHints::NONE,
                dirty: false,
            },
            1,
        );
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(frame: u32, cycle: u64, hit: bool) -> AccessEvent {
        AccessEvent {
            frame,
            line: LineAddr::new(u64::from(frame)),
            cycle,
            hit,
            dirty: false,
        }
    }

    #[test]
    fn covers_leading_interior_trailing_untouched() {
        let events = [ev(0, 10, false), ev(0, 30, true)];
        let dist = reference_intervals(2, &events, 50);
        assert_eq!(dist.total_intervals(), 4); // leading, interior, trailing, untouched
        assert_eq!(dist.total_cycles(), 2 * 50); // coverage per frame
        assert_eq!(
            dist.count_matching(|c| c.kind == IntervalKind::Untouched),
            1
        );
    }

    #[test]
    fn quadratic_and_bucketed_agree() {
        let events = [
            ev(0, 3, false),
            ev(1, 7, false),
            ev(0, 9, true),
            ev(2, 11, false),
            ev(0, 30, false),
            ev(1, 31, true),
        ];
        assert_eq!(
            reference_intervals(4, &events, 64),
            reference_intervals_quadratic(4, &events, 64)
        );
    }

    #[test]
    fn line_reference_counts_only_touched_lines() {
        let events = [ev(0, 5, false), ev(0, 9, true), ev(3, 12, false)];
        let dist = reference_line_intervals_quadratic(&events, 20);
        // line 0: one interior + trailing; line 3: trailing.
        assert_eq!(dist.total_intervals(), 3);
        assert_eq!(
            dist.cycles_matching(|c| c.kind == IntervalKind::Trailing),
            (20 - 9) + (20 - 12)
        );
    }
}
