//! Producers and consumers of access streams.

use crate::{MemoryAccess, TraceStats};

/// A consumer of memory-access events.
///
/// Workload generators push events into a `TraceSink`; the cache
/// hierarchy, statistics collectors and on-disk writers all implement it.
/// Generators must emit events in non-decreasing cycle order.
pub trait TraceSink {
    /// Consumes one access event.
    fn accept(&mut self, access: MemoryAccess);
}

/// Forwarding one event to a pair of sinks.
impl<A: TraceSink, B: TraceSink> TraceSink for (A, B) {
    fn accept(&mut self, access: MemoryAccess) {
        self.0.accept(access);
        self.1.accept(access);
    }
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn accept(&mut self, access: MemoryAccess) {
        (**self).accept(access);
    }
}

impl TraceSink for Vec<MemoryAccess> {
    fn accept(&mut self, access: MemoryAccess) {
        self.push(access);
    }
}

/// A producer of memory-access events.
///
/// A source drives a sink to completion; this push model lets the large
/// synthetic workloads stream through the simulator without ever
/// materializing the trace.
pub trait TraceSource {
    /// Generates the whole trace into `sink`.
    fn run(&mut self, sink: &mut dyn TraceSink);
}

/// An in-memory trace, useful for tests and small examples.
///
/// `VecTrace` is both a [`TraceSink`] (it records what it is fed) and a
/// [`TraceSource`] (it can replay its contents), and it keeps running
/// [`TraceStats`].
///
/// # Examples
///
/// ```
/// use leakage_trace::{Cycle, MemoryAccess, Pc, TraceSink, TraceSource, VecTrace};
///
/// let mut trace = VecTrace::new();
/// trace.accept(MemoryAccess::fetch(Cycle::new(0), Pc::new(0x100)));
/// trace.accept(MemoryAccess::fetch(Cycle::new(1), Pc::new(0x104)));
///
/// let mut replayed = Vec::new();
/// trace.run(&mut replayed);
/// assert_eq!(replayed.len(), 2);
/// assert_eq!(trace.stats().fetches, 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VecTrace {
    events: Vec<MemoryAccess>,
    stats: TraceStats,
}

impl VecTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        VecTrace::default()
    }

    /// Returns the recorded events in issue order.
    pub fn events(&self) -> &[MemoryAccess] {
        &self.events
    }

    /// Returns the running statistics of the recorded events.
    pub fn stats(&self) -> &TraceStats {
        &self.stats
    }

    /// Returns the number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Extracts the underlying event vector.
    pub fn into_events(self) -> Vec<MemoryAccess> {
        self.events
    }

    /// Returns an iterator over recorded events.
    pub fn iter(&self) -> std::slice::Iter<'_, MemoryAccess> {
        self.events.iter()
    }
}

impl TraceSink for VecTrace {
    fn accept(&mut self, access: MemoryAccess) {
        self.stats.observe(&access);
        self.events.push(access);
    }
}

impl TraceSource for VecTrace {
    fn run(&mut self, sink: &mut dyn TraceSink) {
        for event in &self.events {
            sink.accept(*event);
        }
    }
}

impl FromIterator<MemoryAccess> for VecTrace {
    fn from_iter<I: IntoIterator<Item = MemoryAccess>>(iter: I) -> Self {
        let mut trace = VecTrace::new();
        for event in iter {
            trace.accept(event);
        }
        trace
    }
}

impl Extend<MemoryAccess> for VecTrace {
    fn extend<I: IntoIterator<Item = MemoryAccess>>(&mut self, iter: I) {
        for event in iter {
            self.accept(event);
        }
    }
}

impl<'a> IntoIterator for &'a VecTrace {
    type Item = &'a MemoryAccess;
    type IntoIter = std::slice::Iter<'a, MemoryAccess>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl IntoIterator for VecTrace {
    type Item = MemoryAccess;
    type IntoIter = std::vec::IntoIter<MemoryAccess>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Address, Cycle, Pc};

    fn sample() -> Vec<MemoryAccess> {
        vec![
            MemoryAccess::fetch(Cycle::new(0), Pc::new(0x100)),
            MemoryAccess::load(Cycle::new(1), Pc::new(0x104), Address::new(0x9000)),
            MemoryAccess::store(Cycle::new(2), Pc::new(0x108), Address::new(0x9008)),
        ]
    }

    #[test]
    fn collect_and_replay() {
        let trace: VecTrace = sample().into_iter().collect();
        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());

        let mut replay = VecTrace::new();
        trace.clone().run(&mut replay);
        assert_eq!(replay.events(), trace.events());
    }

    #[test]
    fn stats_track_kinds() {
        let trace: VecTrace = sample().into_iter().collect();
        let stats = trace.stats();
        assert_eq!(stats.fetches, 1);
        assert_eq!(stats.loads, 1);
        assert_eq!(stats.stores, 1);
        assert_eq!(stats.total(), 3);
    }

    #[test]
    fn pair_sink_forwards_to_both() {
        let mut a = VecTrace::new();
        let mut b = VecTrace::new();
        {
            let mut pair = (&mut a, &mut b);
            pair.accept(MemoryAccess::fetch(Cycle::new(0), Pc::new(1)));
        }
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn extend_and_iterators() {
        let mut trace = VecTrace::new();
        trace.extend(sample());
        assert_eq!(trace.iter().count(), 3);
        assert_eq!((&trace).into_iter().count(), 3);
        assert_eq!(trace.clone().into_iter().count(), 3);
        assert_eq!(trace.into_events().len(), 3);
    }
}
