//! Binary trace serialization.
//!
//! A compact on-disk format so traces can be captured once and replayed
//! into other tools (or other simulator configurations) without
//! re-running the generator:
//!
//! ```text
//! magic "LKTR" | version: u32 LE | records…
//! record: cycle u64 | pc u64 | addr u64 | kind u8   (25 bytes, LE)
//! ```
//!
//! # Errors
//!
//! Every fallible entry point returns [`TraceError`]
//! (re-exported from `leakage-faults`), which separates *transport*
//! failures ([`TraceError::Io`], possibly transient and retryable)
//! from *structural* ones (bad magic, unsupported version, torn
//! record, invalid kind byte — never retryable). The reader and
//! writer are instrumented as the `trace/read` and `trace/write`
//! fault-injection sites, so `LEAKAGE_FAULTS=trace/read=io` can
//! rehearse transport failure without a faulty disk.
//!
//! # Examples
//!
//! ```
//! use leakage_trace::io::{read_trace, TraceWriter};
//! use leakage_trace::{Cycle, MemoryAccess, Pc, TraceSink, TraceError};
//!
//! # fn main() -> Result<(), TraceError> {
//! let mut buffer = Vec::new();
//! {
//!     let mut writer = TraceWriter::new(&mut buffer)?;
//!     writer.accept(MemoryAccess::fetch(Cycle::new(0), Pc::new(0x100)));
//!     writer.flush()?;
//! }
//! let replayed = read_trace(&buffer[..])?;
//! assert_eq!(replayed.len(), 1);
//! # Ok(())
//! # }
//! ```

use crate::{AccessKind, Address, Cycle, MemoryAccess, Pc, TraceSink, VecTrace};
pub use leakage_faults::TraceError;
use std::io::{BufReader, BufWriter, Read, Write};

/// File magic.
const MAGIC: [u8; 4] = *b"LKTR";
/// Current format version.
const VERSION: u32 = 1;
/// Bytes per record.
const RECORD_BYTES: usize = 25;

/// Fault-injection site covering the read path.
const READ_SITE: &str = "trace/read";
/// Fault-injection site covering the write path.
const WRITE_SITE: &str = "trace/write";

fn kind_to_byte(kind: AccessKind) -> u8 {
    match kind {
        AccessKind::InstFetch => 0,
        AccessKind::Load => 1,
        AccessKind::Store => 2,
    }
}

fn kind_from_byte(byte: u8) -> Result<AccessKind, TraceError> {
    match byte {
        0 => Ok(AccessKind::InstFetch),
        1 => Ok(AccessKind::Load),
        2 => Ok(AccessKind::Store),
        other => Err(TraceError::InvalidKind(other)),
    }
}

/// Reads a little-endian `u64` out of a record without any fallible
/// conversion (the bounds are compile-time facts of the layout).
fn le_u64(record: &[u8; RECORD_BYTES], offset: usize) -> u64 {
    let mut word = [0u8; 8];
    word.copy_from_slice(&record[offset..offset + 8]);
    u64::from_le_bytes(word)
}

/// Streams accesses into a writer in the binary format.
///
/// `TraceWriter` is a [`TraceSink`], so a workload generator can write
/// straight to disk. Call [`flush`](TraceWriter::flush) (or drop) when
/// done; I/O errors during `accept` are deferred and surfaced by
/// `flush`.
pub struct TraceWriter<W: Write> {
    writer: BufWriter<W>,
    deferred_error: Option<TraceError>,
    records: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (injected or real) from writing the
    /// header.
    pub fn new(writer: W) -> Result<Self, TraceError> {
        leakage_faults::io_point(WRITE_SITE)?;
        let mut writer = BufWriter::new(writer);
        writer.write_all(&MAGIC)?;
        writer.write_all(&VERSION.to_le_bytes())?;
        Ok(TraceWriter {
            writer,
            deferred_error: None,
            records: 0,
        })
    }

    /// Number of records accepted so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes buffered records and reports any deferred write error.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered while accepting records, or
    /// any error from the final flush.
    pub fn flush(&mut self) -> Result<(), TraceError> {
        if let Some(err) = self.deferred_error.take() {
            return Err(err);
        }
        self.writer.flush()?;
        Ok(())
    }
}

impl<W: Write> TraceSink for TraceWriter<W> {
    fn accept(&mut self, access: MemoryAccess) {
        if self.deferred_error.is_some() {
            return;
        }
        let mut record = [0u8; RECORD_BYTES];
        record[0..8].copy_from_slice(&access.cycle.raw().to_le_bytes());
        record[8..16].copy_from_slice(&access.pc.raw().to_le_bytes());
        record[16..24].copy_from_slice(&access.addr.raw().to_le_bytes());
        record[24] = kind_to_byte(access.kind);
        if let Err(err) = self.writer.write_all(&record) {
            self.deferred_error = Some(err.into());
        } else {
            self.records += 1;
        }
    }
}

/// Streams a binary trace from a reader into any sink.
///
/// Returns the number of records replayed.
///
/// # Errors
///
/// Fails on a bad header, an unsupported version, a torn final record,
/// an invalid kind byte, or any underlying I/O error.
pub fn replay_trace<R: Read>(reader: R, sink: &mut dyn TraceSink) -> Result<u64, TraceError> {
    leakage_faults::io_point(READ_SITE)?;
    let mut reader = BufReader::new(reader);
    let mut header = [0u8; 8];
    reader
        .read_exact(&mut header)
        .map_err(|err| match err.kind() {
            std::io::ErrorKind::UnexpectedEof => TraceError::TornRecord,
            _ => TraceError::Io(err),
        })?;
    if header[0..4] != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let mut version = [0u8; 4];
    version.copy_from_slice(&header[4..8]);
    let version = u32::from_le_bytes(version);
    if version != VERSION {
        return Err(TraceError::UnsupportedVersion { found: version });
    }
    let mut count = 0;
    let mut record = [0u8; RECORD_BYTES];
    loop {
        match read_record(&mut reader, &mut record)? {
            false => return Ok(count),
            true => {
                let kind = kind_from_byte(record[24])?;
                sink.accept(MemoryAccess::new(
                    Cycle::new(le_u64(&record, 0)),
                    Pc::new(le_u64(&record, 8)),
                    Address::new(le_u64(&record, 16)),
                    kind,
                ));
                count += 1;
            }
        }
    }
}

/// Reads one full record; `Ok(false)` on clean EOF, error on torn data.
fn read_record<R: Read>(
    reader: &mut R,
    record: &mut [u8; RECORD_BYTES],
) -> Result<bool, TraceError> {
    let mut filled = 0;
    while filled < RECORD_BYTES {
        let n = reader.read(&mut record[filled..])?;
        if n == 0 {
            return if filled == 0 {
                Ok(false)
            } else {
                Err(TraceError::TornRecord)
            };
        }
        filled += n;
    }
    Ok(true)
}

/// Reads a whole binary trace into memory.
///
/// # Errors
///
/// See [`replay_trace`].
pub fn read_trace<R: Read>(reader: R) -> Result<VecTrace, TraceError> {
    let mut trace = VecTrace::new();
    replay_trace(reader, &mut trace)?;
    Ok(trace)
}

/// Incremental decoder for the binary trace format, fed arbitrary
/// byte chunks as they arrive off a wire.
///
/// [`replay_trace`] pulls from a blocking `Read` and therefore needs
/// the whole stream behind it; `StreamDecoder` inverts that: the
/// caller pushes whatever bytes it has (network chunks, file pages),
/// decoded events flow to the sink immediately, and the decoder's own
/// state never exceeds one partial record (24 bytes) no matter how
/// long the trace runs. This is what lets the analysis server ingest
/// chunked trace uploads without buffering the body.
///
/// # Examples
///
/// ```
/// use leakage_trace::io::{StreamDecoder, TraceWriter};
/// use leakage_trace::{Cycle, MemoryAccess, Pc, TraceSink, VecTrace};
///
/// let mut wire = Vec::new();
/// {
///     let mut writer = TraceWriter::new(&mut wire).unwrap();
///     writer.accept(MemoryAccess::fetch(Cycle::new(3), Pc::new(0x40)));
///     writer.flush().unwrap();
/// }
///
/// let mut decoder = StreamDecoder::new();
/// let mut replay = VecTrace::new();
/// for byte in &wire {
///     decoder.feed(std::slice::from_ref(byte), &mut replay).unwrap();
/// }
/// decoder.finish().unwrap();
/// assert_eq!(replay.len(), 1);
/// ```
#[derive(Debug)]
pub struct StreamDecoder {
    /// Bytes of the header (8) still missing; records follow once 0.
    header_missing: usize,
    /// The header bytes gathered so far.
    header: [u8; 8],
    /// Partial record bytes straddling a chunk boundary.
    partial: [u8; RECORD_BYTES],
    /// How many bytes of `partial` are valid.
    partial_len: usize,
    /// Records decoded so far.
    records: u64,
}

impl Default for StreamDecoder {
    fn default() -> Self {
        StreamDecoder::new()
    }
}

impl StreamDecoder {
    /// A decoder expecting the header next.
    pub fn new() -> Self {
        StreamDecoder {
            header_missing: 8,
            header: [0u8; 8],
            partial: [0u8; RECORD_BYTES],
            partial_len: 0,
            records: 0,
        }
    }

    /// Records decoded so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Decodes every complete record in `chunk` (joined with any bytes
    /// left over from earlier chunks) into `sink`; a trailing partial
    /// record is retained for the next call.
    ///
    /// # Errors
    ///
    /// Structural errors ([`TraceError::BadMagic`],
    /// [`TraceError::UnsupportedVersion`], [`TraceError::InvalidKind`])
    /// are sticky: the decoder stays failed and further feeding returns
    /// the same class of error.
    pub fn feed(&mut self, mut chunk: &[u8], sink: &mut dyn TraceSink) -> Result<(), TraceError> {
        // Header first: gather 8 bytes, then validate once.
        while self.header_missing > 0 && !chunk.is_empty() {
            let take = self.header_missing.min(chunk.len());
            let at = 8 - self.header_missing;
            self.header[at..at + take].copy_from_slice(&chunk[..take]);
            self.header_missing -= take;
            chunk = &chunk[take..];
            if self.header_missing == 0 {
                if self.header[0..4] != MAGIC {
                    return Err(TraceError::BadMagic);
                }
                let version = u32::from_le_bytes([
                    self.header[4],
                    self.header[5],
                    self.header[6],
                    self.header[7],
                ]);
                if version != VERSION {
                    return Err(TraceError::UnsupportedVersion { found: version });
                }
            }
        }
        // Complete the straddling record, if any.
        if self.partial_len > 0 {
            let take = (RECORD_BYTES - self.partial_len).min(chunk.len());
            self.partial[self.partial_len..self.partial_len + take]
                .copy_from_slice(&chunk[..take]);
            self.partial_len += take;
            chunk = &chunk[take..];
            if self.partial_len < RECORD_BYTES {
                return Ok(()); // Chunk exhausted, record still open.
            }
            self.partial_len = 0;
            let record = self.partial;
            self.emit(&record, sink)?;
        }
        // Whole records straight out of the chunk, no copy.
        while chunk.len() >= RECORD_BYTES {
            let record: [u8; RECORD_BYTES] =
                chunk[..RECORD_BYTES].try_into().expect("record-sized window");
            self.emit(&record, sink)?;
            chunk = &chunk[RECORD_BYTES..];
        }
        // Retain the tail.
        self.partial[..chunk.len()].copy_from_slice(chunk);
        self.partial_len = chunk.len();
        Ok(())
    }

    fn emit(&mut self, record: &[u8; RECORD_BYTES], sink: &mut dyn TraceSink) -> Result<(), TraceError> {
        let kind = kind_from_byte(record[24])?;
        sink.accept(MemoryAccess::new(
            Cycle::new(le_u64(record, 0)),
            Pc::new(le_u64(record, 8)),
            Address::new(le_u64(record, 16)),
            kind,
        ));
        self.records += 1;
        Ok(())
    }

    /// Declares end of stream.
    ///
    /// # Errors
    ///
    /// [`TraceError::TornRecord`] when the stream ended mid-header or
    /// mid-record.
    pub fn finish(&self) -> Result<(), TraceError> {
        if self.header_missing > 0 || self.partial_len > 0 {
            return Err(TraceError::TornRecord);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<MemoryAccess> {
        vec![
            MemoryAccess::fetch(Cycle::new(0), Pc::new(0x1000)),
            MemoryAccess::load(Cycle::new(5), Pc::new(0x1004), Address::new(0xdead_beef)),
            MemoryAccess::store(Cycle::new(u64::MAX), Pc::new(u64::MAX), Address::new(0)),
        ]
    }

    /// Builds an encoded sample trace, asserting the happy path.
    fn encoded_sample() -> Vec<u8> {
        let mut buffer = Vec::new();
        {
            let mut writer = TraceWriter::new(&mut buffer).expect("in-memory header write");
            for access in sample() {
                writer.accept(access);
            }
            writer.flush().expect("in-memory flush");
        }
        buffer
    }

    #[test]
    fn roundtrip() {
        let buffer = encoded_sample();
        assert_eq!(buffer.len(), 8 + 3 * RECORD_BYTES);
        let replayed = read_trace(&buffer[..]).expect("clean trace replays");
        assert_eq!(replayed.events(), &sample()[..]);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, TraceError::BadMagic));
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(&MAGIC);
        buffer.extend_from_slice(&99u32.to_le_bytes());
        let err = read_trace(&buffer[..]).unwrap_err();
        assert!(matches!(err, TraceError::UnsupportedVersion { found: 99 }));
    }

    #[test]
    fn torn_record_rejected() {
        let mut buffer = encoded_sample();
        buffer.truncate(buffer.len() - 3);
        let err = read_trace(&buffer[..]).unwrap_err();
        assert!(matches!(err, TraceError::TornRecord));
    }

    #[test]
    fn torn_header_rejected() {
        let err = read_trace(&b"LKTR\x01"[..]).unwrap_err();
        assert!(matches!(err, TraceError::TornRecord));
    }

    #[test]
    fn invalid_kind_rejected() {
        let mut buffer = encoded_sample();
        // Corrupt the kind byte of the first record.
        buffer[8 + RECORD_BYTES - 1] = 7;
        let err = read_trace(&buffer[..]).unwrap_err();
        assert!(matches!(err, TraceError::InvalidKind(7)));
    }

    #[test]
    fn empty_trace_roundtrip() {
        let mut buffer = Vec::new();
        TraceWriter::new(&mut buffer)
            .expect("header")
            .flush()
            .expect("flush");
        let replayed = read_trace(&buffer[..]).expect("empty trace replays");
        assert!(replayed.is_empty());
    }

    #[test]
    fn replay_into_custom_sink() {
        let buffer = encoded_sample();
        struct Counter(u64);
        impl TraceSink for Counter {
            fn accept(&mut self, _access: MemoryAccess) {
                self.0 += 1;
            }
        }
        let mut counter = Counter(0);
        let n = replay_trace(&buffer[..], &mut counter).expect("replay");
        assert_eq!(n, 3);
        assert_eq!(counter.0, 3);
    }

    /// The incremental decoder agrees with the batch reader on every
    /// chunking of the same wire bytes.
    #[test]
    fn stream_decoder_matches_batch_reader_across_chunkings() {
        let buffer = encoded_sample();
        let batch = read_trace(&buffer[..]).expect("batch replay");
        for chunk_size in [1, 2, 7, 24, 25, 26, buffer.len()] {
            let mut decoder = StreamDecoder::new();
            let mut replay = VecTrace::new();
            for chunk in buffer.chunks(chunk_size) {
                decoder.feed(chunk, &mut replay).expect("feed");
            }
            decoder.finish().expect("finish");
            assert_eq!(replay.events(), batch.events(), "chunk size {chunk_size}");
            assert_eq!(decoder.records(), 3);
        }
    }

    #[test]
    fn stream_decoder_rejects_bad_magic_and_version() {
        let mut decoder = StreamDecoder::new();
        let err = decoder
            .feed(b"NOPE\x01\x00\x00\x00", &mut VecTrace::new())
            .unwrap_err();
        assert!(matches!(err, TraceError::BadMagic));

        let mut decoder = StreamDecoder::new();
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.extend_from_slice(&9u32.to_le_bytes());
        let err = decoder.feed(&wire, &mut VecTrace::new()).unwrap_err();
        assert!(matches!(err, TraceError::UnsupportedVersion { found: 9 }));
    }

    #[test]
    fn stream_decoder_reports_torn_streams() {
        let buffer = encoded_sample();
        let mut decoder = StreamDecoder::new();
        let mut replay = VecTrace::new();
        decoder
            .feed(&buffer[..buffer.len() - 3], &mut replay)
            .expect("feed");
        assert!(matches!(decoder.finish(), Err(TraceError::TornRecord)));
        // Mid-header, likewise.
        let decoder = StreamDecoder::new();
        assert!(matches!(decoder.finish(), Err(TraceError::TornRecord)));
    }

    #[test]
    fn stream_decoder_rejects_invalid_kind() {
        let mut buffer = encoded_sample();
        buffer[8 + RECORD_BYTES - 1] = 9;
        let mut decoder = StreamDecoder::new();
        let err = decoder.feed(&buffer, &mut VecTrace::new()).unwrap_err();
        assert!(matches!(err, TraceError::InvalidKind(9)));
    }

    /// A writer over a failing sink defers the error to `flush` and
    /// stops counting records, rather than panicking mid-stream.
    #[test]
    fn write_errors_defer_to_flush() {
        struct Failing {
            budget: usize,
        }
        impl Write for Failing {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.budget == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::Other,
                        "sink died",
                    ));
                }
                let n = buf.len().min(self.budget);
                self.budget -= n;
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        // Room for the header only; BufWriter's spill then fails.
        let mut writer = TraceWriter::new(Failing { budget: 8 }).expect("header buffered");
        for _ in 0..10_000 {
            for access in sample() {
                writer.accept(access);
            }
        }
        let err = writer.flush().unwrap_err();
        assert!(matches!(err, TraceError::Io(_)), "{err}");
        assert!(writer.records() < 30_000, "records stop counting after the error");
    }
}
