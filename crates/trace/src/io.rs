//! Binary trace serialization.
//!
//! A compact on-disk format so traces can be captured once and replayed
//! into other tools (or other simulator configurations) without
//! re-running the generator:
//!
//! ```text
//! magic "LKTR" | version: u32 LE | records…
//! record: cycle u64 | pc u64 | addr u64 | kind u8   (25 bytes, LE)
//! ```
//!
//! # Examples
//!
//! ```
//! use leakage_trace::io::{read_trace, TraceWriter};
//! use leakage_trace::{Cycle, MemoryAccess, Pc, TraceSink};
//!
//! # fn main() -> std::io::Result<()> {
//! let mut buffer = Vec::new();
//! {
//!     let mut writer = TraceWriter::new(&mut buffer)?;
//!     writer.accept(MemoryAccess::fetch(Cycle::new(0), Pc::new(0x100)));
//!     writer.flush()?;
//! }
//! let replayed = read_trace(&buffer[..])?;
//! assert_eq!(replayed.len(), 1);
//! # Ok(())
//! # }
//! ```

use crate::{AccessKind, Address, Cycle, MemoryAccess, Pc, TraceSink, VecTrace};
use std::io::{self, BufReader, BufWriter, Read, Write};

/// File magic.
const MAGIC: [u8; 4] = *b"LKTR";
/// Current format version.
const VERSION: u32 = 1;
/// Bytes per record.
const RECORD_BYTES: usize = 25;

fn kind_to_byte(kind: AccessKind) -> u8 {
    match kind {
        AccessKind::InstFetch => 0,
        AccessKind::Load => 1,
        AccessKind::Store => 2,
    }
}

fn kind_from_byte(byte: u8) -> io::Result<AccessKind> {
    match byte {
        0 => Ok(AccessKind::InstFetch),
        1 => Ok(AccessKind::Load),
        2 => Ok(AccessKind::Store),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("invalid access kind byte {other}"),
        )),
    }
}

/// Streams accesses into a writer in the binary format.
///
/// `TraceWriter` is a [`TraceSink`], so a workload generator can write
/// straight to disk. Call [`flush`](TraceWriter::flush) (or drop) when
/// done; I/O errors during `accept` are deferred and surfaced by
/// `flush`.
pub struct TraceWriter<W: Write> {
    writer: BufWriter<W>,
    deferred_error: Option<io::Error>,
    records: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the header.
    pub fn new(writer: W) -> io::Result<Self> {
        let mut writer = BufWriter::new(writer);
        writer.write_all(&MAGIC)?;
        writer.write_all(&VERSION.to_le_bytes())?;
        Ok(TraceWriter {
            writer,
            deferred_error: None,
            records: 0,
        })
    }

    /// Number of records accepted so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes buffered records and reports any deferred write error.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered while accepting records, or
    /// any error from the final flush.
    pub fn flush(&mut self) -> io::Result<()> {
        if let Some(err) = self.deferred_error.take() {
            return Err(err);
        }
        self.writer.flush()
    }
}

impl<W: Write> TraceSink for TraceWriter<W> {
    fn accept(&mut self, access: MemoryAccess) {
        if self.deferred_error.is_some() {
            return;
        }
        let mut record = [0u8; RECORD_BYTES];
        record[0..8].copy_from_slice(&access.cycle.raw().to_le_bytes());
        record[8..16].copy_from_slice(&access.pc.raw().to_le_bytes());
        record[16..24].copy_from_slice(&access.addr.raw().to_le_bytes());
        record[24] = kind_to_byte(access.kind);
        if let Err(err) = self.writer.write_all(&record) {
            self.deferred_error = Some(err);
        } else {
            self.records += 1;
        }
    }
}

/// Streams a binary trace from a reader into any sink.
///
/// Returns the number of records replayed.
///
/// # Errors
///
/// Fails on a bad header, an unsupported version, a torn final record,
/// an invalid kind byte, or any underlying I/O error.
pub fn replay_trace<R: Read>(reader: R, sink: &mut dyn TraceSink) -> io::Result<u64> {
    let mut reader = BufReader::new(reader);
    let mut header = [0u8; 8];
    reader.read_exact(&mut header)?;
    if header[0..4] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a leakage trace (bad magic)",
        ));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    let mut count = 0;
    let mut record = [0u8; RECORD_BYTES];
    loop {
        match read_record(&mut reader, &mut record)? {
            false => return Ok(count),
            true => {
                let cycle = u64::from_le_bytes(record[0..8].try_into().expect("8"));
                let pc = u64::from_le_bytes(record[8..16].try_into().expect("8"));
                let addr = u64::from_le_bytes(record[16..24].try_into().expect("8"));
                let kind = kind_from_byte(record[24])?;
                sink.accept(MemoryAccess::new(
                    Cycle::new(cycle),
                    Pc::new(pc),
                    Address::new(addr),
                    kind,
                ));
                count += 1;
            }
        }
    }
}

/// Reads one full record; `Ok(false)` on clean EOF, error on torn data.
fn read_record<R: Read>(reader: &mut R, record: &mut [u8; RECORD_BYTES]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < RECORD_BYTES {
        let n = reader.read(&mut record[filled..])?;
        if n == 0 {
            return if filled == 0 {
                Ok(false)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "torn trace record at end of stream",
                ))
            };
        }
        filled += n;
    }
    Ok(true)
}

/// Reads a whole binary trace into memory.
///
/// # Errors
///
/// See [`replay_trace`].
pub fn read_trace<R: Read>(reader: R) -> io::Result<VecTrace> {
    let mut trace = VecTrace::new();
    replay_trace(reader, &mut trace)?;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<MemoryAccess> {
        vec![
            MemoryAccess::fetch(Cycle::new(0), Pc::new(0x1000)),
            MemoryAccess::load(Cycle::new(5), Pc::new(0x1004), Address::new(0xdead_beef)),
            MemoryAccess::store(Cycle::new(u64::MAX), Pc::new(u64::MAX), Address::new(0)),
        ]
    }

    #[test]
    fn roundtrip() {
        let mut buffer = Vec::new();
        {
            let mut writer = TraceWriter::new(&mut buffer).unwrap();
            for access in sample() {
                writer.accept(access);
            }
            assert_eq!(writer.records(), 3);
            writer.flush().unwrap();
        }
        assert_eq!(buffer.len(), 8 + 3 * RECORD_BYTES);
        let replayed = read_trace(&buffer[..]).unwrap();
        assert_eq!(replayed.events(), &sample()[..]);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(&MAGIC);
        buffer.extend_from_slice(&99u32.to_le_bytes());
        let err = read_trace(&buffer[..]).unwrap_err();
        assert!(err.to_string().contains("version 99"));
    }

    #[test]
    fn torn_record_rejected() {
        let mut buffer = Vec::new();
        {
            let mut writer = TraceWriter::new(&mut buffer).unwrap();
            writer.accept(sample()[0]);
            writer.flush().unwrap();
        }
        buffer.truncate(buffer.len() - 3);
        let err = read_trace(&buffer[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn invalid_kind_rejected() {
        let mut buffer = Vec::new();
        {
            let mut writer = TraceWriter::new(&mut buffer).unwrap();
            writer.accept(sample()[0]);
            writer.flush().unwrap();
        }
        let last = buffer.len() - 1;
        buffer[last] = 7;
        let err = read_trace(&buffer[..]).unwrap_err();
        assert!(err.to_string().contains("kind byte 7"));
    }

    #[test]
    fn empty_trace_roundtrip() {
        let mut buffer = Vec::new();
        TraceWriter::new(&mut buffer).unwrap().flush().unwrap();
        let replayed = read_trace(&buffer[..]).unwrap();
        assert!(replayed.is_empty());
    }

    #[test]
    fn replay_into_custom_sink() {
        let mut buffer = Vec::new();
        {
            let mut writer = TraceWriter::new(&mut buffer).unwrap();
            for access in sample() {
                writer.accept(access);
            }
            writer.flush().unwrap();
        }
        struct Counter(u64);
        impl TraceSink for Counter {
            fn accept(&mut self, _access: MemoryAccess) {
                self.0 += 1;
            }
        }
        let mut counter = Counter(0);
        let n = replay_trace(&buffer[..], &mut counter).unwrap();
        assert_eq!(n, 3);
        assert_eq!(counter.0, 3);
    }
}
