//! Binary trace serialization.
//!
//! A compact on-disk format so traces can be captured once and replayed
//! into other tools (or other simulator configurations) without
//! re-running the generator:
//!
//! ```text
//! magic "LKTR" | version: u32 LE | records…
//! record: cycle u64 | pc u64 | addr u64 | kind u8   (25 bytes, LE)
//! ```
//!
//! # Errors
//!
//! Every fallible entry point returns [`TraceError`]
//! (re-exported from `leakage-faults`), which separates *transport*
//! failures ([`TraceError::Io`], possibly transient and retryable)
//! from *structural* ones (bad magic, unsupported version, torn
//! record, invalid kind byte — never retryable). The reader and
//! writer are instrumented as the `trace/read` and `trace/write`
//! fault-injection sites, so `LEAKAGE_FAULTS=trace/read=io` can
//! rehearse transport failure without a faulty disk.
//!
//! # Examples
//!
//! ```
//! use leakage_trace::io::{read_trace, TraceWriter};
//! use leakage_trace::{Cycle, MemoryAccess, Pc, TraceSink, TraceError};
//!
//! # fn main() -> Result<(), TraceError> {
//! let mut buffer = Vec::new();
//! {
//!     let mut writer = TraceWriter::new(&mut buffer)?;
//!     writer.accept(MemoryAccess::fetch(Cycle::new(0), Pc::new(0x100)));
//!     writer.flush()?;
//! }
//! let replayed = read_trace(&buffer[..])?;
//! assert_eq!(replayed.len(), 1);
//! # Ok(())
//! # }
//! ```

use crate::{AccessKind, Address, Cycle, MemoryAccess, Pc, TraceSink, VecTrace};
pub use leakage_faults::TraceError;
use std::io::{BufReader, BufWriter, Read, Write};

/// File magic.
const MAGIC: [u8; 4] = *b"LKTR";
/// Current format version.
const VERSION: u32 = 1;
/// Bytes per record.
const RECORD_BYTES: usize = 25;

/// Fault-injection site covering the read path.
const READ_SITE: &str = "trace/read";
/// Fault-injection site covering the write path.
const WRITE_SITE: &str = "trace/write";

fn kind_to_byte(kind: AccessKind) -> u8 {
    match kind {
        AccessKind::InstFetch => 0,
        AccessKind::Load => 1,
        AccessKind::Store => 2,
    }
}

fn kind_from_byte(byte: u8) -> Result<AccessKind, TraceError> {
    match byte {
        0 => Ok(AccessKind::InstFetch),
        1 => Ok(AccessKind::Load),
        2 => Ok(AccessKind::Store),
        other => Err(TraceError::InvalidKind(other)),
    }
}

/// Reads a little-endian `u64` out of a record without any fallible
/// conversion (the bounds are compile-time facts of the layout).
fn le_u64(record: &[u8; RECORD_BYTES], offset: usize) -> u64 {
    let mut word = [0u8; 8];
    word.copy_from_slice(&record[offset..offset + 8]);
    u64::from_le_bytes(word)
}

/// Streams accesses into a writer in the binary format.
///
/// `TraceWriter` is a [`TraceSink`], so a workload generator can write
/// straight to disk. Call [`flush`](TraceWriter::flush) (or drop) when
/// done; I/O errors during `accept` are deferred and surfaced by
/// `flush`.
pub struct TraceWriter<W: Write> {
    writer: BufWriter<W>,
    deferred_error: Option<TraceError>,
    records: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (injected or real) from writing the
    /// header.
    pub fn new(writer: W) -> Result<Self, TraceError> {
        leakage_faults::io_point(WRITE_SITE)?;
        let mut writer = BufWriter::new(writer);
        writer.write_all(&MAGIC)?;
        writer.write_all(&VERSION.to_le_bytes())?;
        Ok(TraceWriter {
            writer,
            deferred_error: None,
            records: 0,
        })
    }

    /// Number of records accepted so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes buffered records and reports any deferred write error.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered while accepting records, or
    /// any error from the final flush.
    pub fn flush(&mut self) -> Result<(), TraceError> {
        if let Some(err) = self.deferred_error.take() {
            return Err(err);
        }
        self.writer.flush()?;
        Ok(())
    }
}

impl<W: Write> TraceSink for TraceWriter<W> {
    fn accept(&mut self, access: MemoryAccess) {
        if self.deferred_error.is_some() {
            return;
        }
        let mut record = [0u8; RECORD_BYTES];
        record[0..8].copy_from_slice(&access.cycle.raw().to_le_bytes());
        record[8..16].copy_from_slice(&access.pc.raw().to_le_bytes());
        record[16..24].copy_from_slice(&access.addr.raw().to_le_bytes());
        record[24] = kind_to_byte(access.kind);
        if let Err(err) = self.writer.write_all(&record) {
            self.deferred_error = Some(err.into());
        } else {
            self.records += 1;
        }
    }
}

/// Streams a binary trace from a reader into any sink.
///
/// Returns the number of records replayed.
///
/// # Errors
///
/// Fails on a bad header, an unsupported version, a torn final record,
/// an invalid kind byte, or any underlying I/O error.
pub fn replay_trace<R: Read>(reader: R, sink: &mut dyn TraceSink) -> Result<u64, TraceError> {
    leakage_faults::io_point(READ_SITE)?;
    let mut reader = BufReader::new(reader);
    let mut header = [0u8; 8];
    reader
        .read_exact(&mut header)
        .map_err(|err| match err.kind() {
            std::io::ErrorKind::UnexpectedEof => TraceError::TornRecord,
            _ => TraceError::Io(err),
        })?;
    if header[0..4] != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let mut version = [0u8; 4];
    version.copy_from_slice(&header[4..8]);
    let version = u32::from_le_bytes(version);
    if version != VERSION {
        return Err(TraceError::UnsupportedVersion { found: version });
    }
    let mut count = 0;
    let mut record = [0u8; RECORD_BYTES];
    loop {
        match read_record(&mut reader, &mut record)? {
            false => return Ok(count),
            true => {
                let kind = kind_from_byte(record[24])?;
                sink.accept(MemoryAccess::new(
                    Cycle::new(le_u64(&record, 0)),
                    Pc::new(le_u64(&record, 8)),
                    Address::new(le_u64(&record, 16)),
                    kind,
                ));
                count += 1;
            }
        }
    }
}

/// Reads one full record; `Ok(false)` on clean EOF, error on torn data.
fn read_record<R: Read>(
    reader: &mut R,
    record: &mut [u8; RECORD_BYTES],
) -> Result<bool, TraceError> {
    let mut filled = 0;
    while filled < RECORD_BYTES {
        let n = reader.read(&mut record[filled..])?;
        if n == 0 {
            return if filled == 0 {
                Ok(false)
            } else {
                Err(TraceError::TornRecord)
            };
        }
        filled += n;
    }
    Ok(true)
}

/// Reads a whole binary trace into memory.
///
/// # Errors
///
/// See [`replay_trace`].
pub fn read_trace<R: Read>(reader: R) -> Result<VecTrace, TraceError> {
    let mut trace = VecTrace::new();
    replay_trace(reader, &mut trace)?;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<MemoryAccess> {
        vec![
            MemoryAccess::fetch(Cycle::new(0), Pc::new(0x1000)),
            MemoryAccess::load(Cycle::new(5), Pc::new(0x1004), Address::new(0xdead_beef)),
            MemoryAccess::store(Cycle::new(u64::MAX), Pc::new(u64::MAX), Address::new(0)),
        ]
    }

    /// Builds an encoded sample trace, asserting the happy path.
    fn encoded_sample() -> Vec<u8> {
        let mut buffer = Vec::new();
        {
            let mut writer = TraceWriter::new(&mut buffer).expect("in-memory header write");
            for access in sample() {
                writer.accept(access);
            }
            writer.flush().expect("in-memory flush");
        }
        buffer
    }

    #[test]
    fn roundtrip() {
        let buffer = encoded_sample();
        assert_eq!(buffer.len(), 8 + 3 * RECORD_BYTES);
        let replayed = read_trace(&buffer[..]).expect("clean trace replays");
        assert_eq!(replayed.events(), &sample()[..]);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, TraceError::BadMagic));
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(&MAGIC);
        buffer.extend_from_slice(&99u32.to_le_bytes());
        let err = read_trace(&buffer[..]).unwrap_err();
        assert!(matches!(err, TraceError::UnsupportedVersion { found: 99 }));
    }

    #[test]
    fn torn_record_rejected() {
        let mut buffer = encoded_sample();
        buffer.truncate(buffer.len() - 3);
        let err = read_trace(&buffer[..]).unwrap_err();
        assert!(matches!(err, TraceError::TornRecord));
    }

    #[test]
    fn torn_header_rejected() {
        let err = read_trace(&b"LKTR\x01"[..]).unwrap_err();
        assert!(matches!(err, TraceError::TornRecord));
    }

    #[test]
    fn invalid_kind_rejected() {
        let mut buffer = encoded_sample();
        // Corrupt the kind byte of the first record.
        buffer[8 + RECORD_BYTES - 1] = 7;
        let err = read_trace(&buffer[..]).unwrap_err();
        assert!(matches!(err, TraceError::InvalidKind(7)));
    }

    #[test]
    fn empty_trace_roundtrip() {
        let mut buffer = Vec::new();
        TraceWriter::new(&mut buffer)
            .expect("header")
            .flush()
            .expect("flush");
        let replayed = read_trace(&buffer[..]).expect("empty trace replays");
        assert!(replayed.is_empty());
    }

    #[test]
    fn replay_into_custom_sink() {
        let buffer = encoded_sample();
        struct Counter(u64);
        impl TraceSink for Counter {
            fn accept(&mut self, _access: MemoryAccess) {
                self.0 += 1;
            }
        }
        let mut counter = Counter(0);
        let n = replay_trace(&buffer[..], &mut counter).expect("replay");
        assert_eq!(n, 3);
        assert_eq!(counter.0, 3);
    }

    /// A writer over a failing sink defers the error to `flush` and
    /// stops counting records, rather than panicking mid-stream.
    #[test]
    fn write_errors_defer_to_flush() {
        struct Failing {
            budget: usize,
        }
        impl Write for Failing {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.budget == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::Other,
                        "sink died",
                    ));
                }
                let n = buf.len().min(self.budget);
                self.budget -= n;
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        // Room for the header only; BufWriter's spill then fails.
        let mut writer = TraceWriter::new(Failing { budget: 8 }).expect("header buffered");
        for _ in 0..10_000 {
            for access in sample() {
                writer.accept(access);
            }
        }
        let err = writer.flush().unwrap_err();
        assert!(matches!(err, TraceError::Io(_)), "{err}");
        assert!(writer.records() < 30_000, "records stop counting after the error");
    }
}
