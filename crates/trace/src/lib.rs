//! Timed memory-access traces for the cache leakage limit study.
//!
//! This crate defines the event vocabulary shared by every other crate in
//! the workspace: byte [`Address`]es, cache-line addresses ([`LineAddr`]),
//! [`Cycle`] timestamps, and the [`MemoryAccess`] events a workload
//! generator emits and a cache hierarchy consumes.
//!
//! The leakage limit study of Meng, Sherwood and Kastner (HPCA 2005) only
//! needs *when* (in cycles) and *where* (which cache line) each access
//! lands, so the trace model is deliberately minimal: there is no
//! micro-architectural payload beyond the program counter, which the
//! stride prefetcher needs to correlate accesses issued by the same
//! static load.
//!
//! # Examples
//!
//! ```
//! use leakage_trace::{Address, AccessKind, Cycle, MemoryAccess, Pc};
//!
//! let access = MemoryAccess::new(
//!     Cycle::new(42),
//!     Pc::new(0x1200),
//!     Address::new(0x8000_0040),
//!     AccessKind::Load,
//! );
//! assert_eq!(access.addr.line(6).index(), 0x8000_0040 >> 6);
//! assert!(access.kind.is_data());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod event;
mod footprint;
pub mod io;
mod source;
mod stats;

pub use addr::{Address, LineAddr, Pc};
pub use io::TraceError;
pub use event::{AccessKind, MemoryAccess};
pub use footprint::FootprintTracker;
pub use source::{TraceSink, TraceSource, VecTrace};
pub use stats::TraceStats;

use serde::{Deserialize, Serialize};

/// A point in simulated time, measured in processor clock cycles.
///
/// Cycles start at zero when the simulated program begins. All durations
/// in the leakage model (interval lengths, transition times, inflection
/// points) are expressed in these units.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycle(u64);

impl Cycle {
    /// The first cycle of a simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle timestamp from a raw cycle count.
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the number of cycles from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `earlier` is later than `self`.
    pub fn since(self, earlier: Cycle) -> u64 {
        debug_assert!(earlier.0 <= self.0, "cycle arithmetic went backwards");
        self.0 - earlier.0
    }

    /// Returns the number of cycles from `earlier` to `self`, or zero
    /// when `earlier` is later than `self`.
    ///
    /// The clamping variant of [`since`](Cycle::since) for boundary
    /// arithmetic where a ragged trace end is legitimate — e.g. an
    /// interval extractor flushing at an `end` timestamp that equals
    /// (or, with a truncated trace, precedes) the final access.
    pub const fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Returns this timestamp advanced by `delta` cycles.
    #[must_use]
    pub const fn advanced(self, delta: u64) -> Cycle {
        Cycle(self.0 + delta)
    }
}

impl std::fmt::Display for Cycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(raw: u64) -> Self {
        Cycle(raw)
    }
}

impl From<Cycle> for u64 {
    fn from(cycle: Cycle) -> Self {
        cycle.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_roundtrip() {
        let c = Cycle::new(123);
        assert_eq!(u64::from(c), 123);
        assert_eq!(Cycle::from(123u64), c);
        assert_eq!(c.to_string(), "123");
    }

    #[test]
    fn cycle_since_and_advanced() {
        let start = Cycle::new(10);
        let end = start.advanced(32);
        assert_eq!(end.since(start), 32);
        assert_eq!(end.since(end), 0);
    }

    #[test]
    fn cycle_saturating_since_clamps_to_zero() {
        assert_eq!(Cycle::new(5).saturating_since(Cycle::new(9)), 0);
        assert_eq!(Cycle::new(9).saturating_since(Cycle::new(5)), 4);
        assert_eq!(Cycle::ZERO.saturating_since(Cycle::ZERO), 0);
    }

    #[test]
    fn cycle_ordering() {
        assert!(Cycle::ZERO < Cycle::new(1));
        assert_eq!(Cycle::default(), Cycle::ZERO);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    #[cfg(debug_assertions)]
    fn cycle_since_panics_when_backwards() {
        let _ = Cycle::new(1).since(Cycle::new(2));
    }
}
