//! Memory access events.

use crate::{Address, Cycle, Pc};
use serde::{Deserialize, Serialize};

/// The kind of memory access an instruction performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// An instruction fetch; routed to the L1 instruction cache.
    InstFetch,
    /// A data load; routed to the L1 data cache.
    Load,
    /// A data store; routed to the L1 data cache (write-allocate).
    Store,
}

impl AccessKind {
    /// Returns `true` for loads and stores (accesses served by the data
    /// cache).
    pub const fn is_data(self) -> bool {
        matches!(self, AccessKind::Load | AccessKind::Store)
    }

    /// Returns `true` for instruction fetches.
    pub const fn is_fetch(self) -> bool {
        matches!(self, AccessKind::InstFetch)
    }
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AccessKind::InstFetch => "ifetch",
            AccessKind::Load => "load",
            AccessKind::Store => "store",
        };
        f.write_str(s)
    }
}

/// One timed memory access: the atom of a simulation trace.
///
/// Fields are public in the C-struct spirit: the event is passive data
/// with no invariants beyond its field types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemoryAccess {
    /// The cycle at which the access is issued.
    pub cycle: Cycle,
    /// The static instruction that issued the access. For instruction
    /// fetches this equals the fetch address.
    pub pc: Pc,
    /// The byte address accessed.
    pub addr: Address,
    /// Fetch, load or store.
    pub kind: AccessKind,
}

impl MemoryAccess {
    /// Creates an access event.
    pub const fn new(cycle: Cycle, pc: Pc, addr: Address, kind: AccessKind) -> Self {
        MemoryAccess {
            cycle,
            pc,
            addr,
            kind,
        }
    }

    /// Convenience constructor for an instruction fetch at `pc`.
    pub const fn fetch(cycle: Cycle, pc: Pc) -> Self {
        MemoryAccess::new(cycle, pc, pc.as_address(), AccessKind::InstFetch)
    }

    /// Convenience constructor for a data load.
    pub const fn load(cycle: Cycle, pc: Pc, addr: Address) -> Self {
        MemoryAccess::new(cycle, pc, addr, AccessKind::Load)
    }

    /// Convenience constructor for a data store.
    pub const fn store(cycle: Cycle, pc: Pc, addr: Address) -> Self {
        MemoryAccess::new(cycle, pc, addr, AccessKind::Store)
    }
}

impl std::fmt::Display for MemoryAccess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "@{} {} {} ({})",
            self.cycle, self.kind, self.addr, self.pc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification() {
        assert!(AccessKind::Load.is_data());
        assert!(AccessKind::Store.is_data());
        assert!(!AccessKind::InstFetch.is_data());
        assert!(AccessKind::InstFetch.is_fetch());
        assert!(!AccessKind::Load.is_fetch());
    }

    #[test]
    fn fetch_constructor_uses_pc_as_address() {
        let f = MemoryAccess::fetch(Cycle::new(7), Pc::new(0x4000));
        assert_eq!(f.addr, Address::new(0x4000));
        assert_eq!(f.kind, AccessKind::InstFetch);
    }

    #[test]
    fn load_store_constructors() {
        let l = MemoryAccess::load(Cycle::new(1), Pc::new(2), Address::new(3));
        let s = MemoryAccess::store(Cycle::new(1), Pc::new(2), Address::new(3));
        assert_eq!(l.kind, AccessKind::Load);
        assert_eq!(s.kind, AccessKind::Store);
        assert_eq!(l.addr, s.addr);
    }

    #[test]
    fn display_is_informative() {
        let a = MemoryAccess::load(Cycle::new(5), Pc::new(0x10), Address::new(0x20));
        let text = a.to_string();
        assert!(text.contains("load"));
        assert!(text.contains("0x20"));
    }
}
