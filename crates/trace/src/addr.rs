//! Byte addresses, cache-line addresses and program counters.

use serde::{Deserialize, Serialize};

/// A byte address in the simulated machine's physical address space.
///
/// Addresses are opaque 64-bit values; the only structure the study needs
/// is the mapping onto cache lines, provided by [`Address::line`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw byte address.
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache line this byte falls in, for a line size of
    /// `2^line_bits` bytes.
    ///
    /// ```
    /// use leakage_trace::Address;
    /// // 64-byte lines: bytes 0..=63 share line 0.
    /// assert_eq!(Address::new(63).line(6), Address::new(0).line(6));
    /// assert_ne!(Address::new(64).line(6), Address::new(0).line(6));
    /// ```
    pub const fn line(self, line_bits: u32) -> LineAddr {
        LineAddr(self.0 >> line_bits)
    }

    /// Returns this address offset by `delta` bytes (wrapping).
    #[must_use]
    pub const fn offset(self, delta: i64) -> Address {
        Address(self.0.wrapping_add_signed(delta))
    }
}

impl std::fmt::Display for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl std::fmt::LowerHex for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

impl From<Address> for u64 {
    fn from(addr: Address) -> Self {
        addr.0
    }
}

/// The index of a cache-line-sized block of memory.
///
/// A `LineAddr` is a byte address shifted right by the line-size bits; two
/// byte addresses map to the same `LineAddr` exactly when they fall into
/// the same cache line. Leakage intervals are always defined per line.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line index.
    pub const fn new(index: u64) -> Self {
        LineAddr(index)
    }

    /// Returns the raw line index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the line `delta` lines after this one (wrapping).
    ///
    /// The next-line prefetcher uses `succ(1)`; stride analysis uses
    /// arbitrary deltas.
    #[must_use]
    pub const fn succ(self, delta: i64) -> LineAddr {
        LineAddr(self.0.wrapping_add_signed(delta))
    }

    /// Returns the first byte address of the line, given the line size.
    pub const fn first_byte(self, line_bits: u32) -> Address {
        Address(self.0 << line_bits)
    }
}

impl std::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// A program counter: the address of the static instruction that issued
/// an access.
///
/// The stride prefetcher keys its prediction table on the `Pc`, following
/// Farkas et al.'s per-static-load scheme.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Pc(u64);

impl Pc {
    /// Creates a program counter from a raw instruction address.
    pub const fn new(raw: u64) -> Self {
        Pc(raw)
    }

    /// Returns the raw instruction address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the program counter as a fetch address.
    pub const fn as_address(self) -> Address {
        Address(self.0)
    }
}

impl std::fmt::Display for Pc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pc:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_mapping_respects_line_size() {
        let a = Address::new(0x1000);
        assert_eq!(a.line(6).index(), 0x1000 >> 6);
        assert_eq!(a.line(5).index(), 0x1000 >> 5);
        // All bytes of one 64-byte line agree.
        for off in 0..64 {
            assert_eq!(a.offset(off).line(6), a.line(6));
        }
        assert_ne!(a.offset(64).line(6), a.line(6));
    }

    #[test]
    fn line_succ_and_first_byte() {
        let l = Address::new(0x40).line(6);
        assert_eq!(l.succ(1).index(), l.index() + 1);
        assert_eq!(l.succ(-1).index(), l.index() - 1);
        assert_eq!(l.first_byte(6), Address::new(0x40));
    }

    #[test]
    fn address_offset_is_signed() {
        let a = Address::new(100);
        assert_eq!(a.offset(-100), Address::new(0));
        assert_eq!(a.offset(28), Address::new(128));
    }

    #[test]
    fn address_offset_wraps_at_space_boundaries() {
        // Offsets use two's-complement wrapping: the address space is a
        // ring. Stride predictions near the top of memory wrap to the
        // bottom instead of panicking mid-simulation.
        assert_eq!(Address::new(u64::MAX).offset(1), Address::new(0));
        assert_eq!(Address::new(0).offset(-1), Address::new(u64::MAX));
        assert_eq!(Address::new(u64::MAX).offset(i64::MAX).raw(), (i64::MAX as u64) - 1);
        assert_eq!(Address::new(0).offset(i64::MIN).raw(), 1u64 << 63);
    }

    #[test]
    fn line_succ_wraps_at_space_boundaries() {
        // The next-line prefetcher's succ(1) on the last line of the
        // address space predicts line 0 — a harmless (if useless)
        // prediction, never a crash.
        assert_eq!(LineAddr::new(u64::MAX).succ(1), LineAddr::new(0));
        assert_eq!(LineAddr::new(0).succ(-1), LineAddr::new(u64::MAX));
        assert_eq!(LineAddr::new(5).succ(-8), LineAddr::new(u64::MAX - 2));
    }

    #[test]
    fn line_of_max_address_is_top_line() {
        let top = Address::new(u64::MAX);
        assert_eq!(top.line(6).index(), u64::MAX >> 6);
        // first_byte of the top line truncates back into range.
        assert_eq!(top.line(6).first_byte(6).raw(), (u64::MAX >> 6) << 6);
        // line_bits = 0: byte == line, identity round trip.
        assert_eq!(top.line(0).index(), u64::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Address::new(0xff).to_string(), "0xff");
        assert_eq!(LineAddr::new(0x3).to_string(), "L0x3");
        assert_eq!(Pc::new(0x10).to_string(), "pc:0x10");
        assert_eq!(format!("{:x}", Address::new(0xab)), "ab");
    }

    #[test]
    fn pc_as_address() {
        assert_eq!(Pc::new(0x400).as_address(), Address::new(0x400));
    }
}
