//! Working-set footprint measurement.

use crate::{MemoryAccess, TraceSink};
use std::collections::HashSet;

/// A [`TraceSink`] that measures a trace's code and data footprints at
/// cache-line granularity — the workload-calibration diagnostic behind
/// the interval statistics (a 64 KB cache holds 1024 such lines; how
/// many does the program actually touch?).
///
/// # Examples
///
/// ```
/// use leakage_trace::{Cycle, FootprintTracker, MemoryAccess, Pc, TraceSink};
///
/// let mut fp = FootprintTracker::new(6); // 64-byte lines
/// fp.accept(MemoryAccess::fetch(Cycle::new(0), Pc::new(0x1000)));
/// fp.accept(MemoryAccess::fetch(Cycle::new(1), Pc::new(0x1010))); // same line
/// assert_eq!(fp.code_lines(), 1);
/// assert_eq!(fp.code_bytes(), 64);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FootprintTracker {
    line_bits: u32,
    code: HashSet<u64>,
    data: HashSet<u64>,
}

impl FootprintTracker {
    /// Creates a tracker for `2^line_bits`-byte lines.
    pub fn new(line_bits: u32) -> Self {
        FootprintTracker {
            line_bits,
            code: HashSet::new(),
            data: HashSet::new(),
        }
    }

    /// Distinct instruction lines touched.
    pub fn code_lines(&self) -> u64 {
        self.code.len() as u64
    }

    /// Distinct data lines touched.
    pub fn data_lines(&self) -> u64 {
        self.data.len() as u64
    }

    /// Instruction footprint in bytes.
    pub fn code_bytes(&self) -> u64 {
        self.code_lines() << self.line_bits
    }

    /// Data footprint in bytes.
    pub fn data_bytes(&self) -> u64 {
        self.data_lines() << self.line_bits
    }
}

impl TraceSink for FootprintTracker {
    fn accept(&mut self, access: MemoryAccess) {
        let line = access.addr.line(self.line_bits).index();
        if access.kind.is_fetch() {
            self.code.insert(line);
        } else {
            self.data.insert(line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Address, Cycle, Pc};

    #[test]
    fn splits_code_and_data() {
        let mut fp = FootprintTracker::new(6);
        fp.accept(MemoryAccess::fetch(Cycle::new(0), Pc::new(0)));
        fp.accept(MemoryAccess::load(Cycle::new(1), Pc::new(4), Address::new(0)));
        fp.accept(MemoryAccess::store(Cycle::new(2), Pc::new(8), Address::new(64)));
        assert_eq!(fp.code_lines(), 1);
        assert_eq!(fp.data_lines(), 2);
        assert_eq!(fp.data_bytes(), 128);
    }

    #[test]
    fn line_granularity_respected() {
        let mut fp = FootprintTracker::new(5); // 32-byte lines
        fp.accept(MemoryAccess::load(Cycle::new(0), Pc::new(0), Address::new(0)));
        fp.accept(MemoryAccess::load(Cycle::new(1), Pc::new(0), Address::new(40)));
        assert_eq!(fp.data_lines(), 2, "40 crosses a 32-byte boundary");
        assert_eq!(fp.data_bytes(), 64);
    }

    #[test]
    fn empty_tracker() {
        let fp = FootprintTracker::new(6);
        assert_eq!(fp.code_lines(), 0);
        assert_eq!(fp.data_bytes(), 0);
    }
}
