//! Aggregate statistics over a trace.

use crate::{AccessKind, Cycle, MemoryAccess};
use leakage_faults::TraceError;
use serde::{Deserialize, Serialize};

/// Running statistics for a stream of [`MemoryAccess`] events.
///
/// `TraceStats` is cheap to update per event and summarizes the
/// properties the experiment harness reports: event counts per kind and
/// the cycle span of the trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of instruction fetches observed.
    pub fetches: u64,
    /// Number of loads observed.
    pub loads: u64,
    /// Number of stores observed.
    pub stores: u64,
    /// Timestamp of the first event, if any was observed.
    pub first_cycle: Option<Cycle>,
    /// Timestamp of the last event, if any was observed.
    pub last_cycle: Option<Cycle>,
}

impl TraceStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        TraceStats::default()
    }

    /// Folds one event into the statistics.
    pub fn observe(&mut self, access: &MemoryAccess) {
        match access.kind {
            AccessKind::InstFetch => self.fetches += 1,
            AccessKind::Load => self.loads += 1,
            AccessKind::Store => self.stores += 1,
        }
        if self.first_cycle.is_none() {
            self.first_cycle = Some(access.cycle);
        }
        self.last_cycle = Some(access.cycle);
    }

    /// Total number of events of any kind.
    pub fn total(&self) -> u64 {
        self.fetches + self.loads + self.stores
    }

    /// Number of data (load + store) events.
    pub fn data_accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// The exclusive end-of-trace timestamp for interval extraction:
    /// one cycle past the last observed event.
    ///
    /// The panicking shape of this query (`stats.last_cycle.unwrap()`)
    /// used to be repeated at every call site that needed a trace end;
    /// this accessor is the fallible replacement, so sources fed an
    /// empty trace report [`TraceError::Empty`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`TraceError::Empty`] when no event has been observed.
    pub fn end_cycle(&self) -> Result<Cycle, TraceError> {
        match self.last_cycle {
            Some(last) => Ok(last.advanced(1)),
            None => Err(TraceError::Empty),
        }
    }

    /// Number of cycles spanned from the first to the last event,
    /// inclusive of the final cycle. Zero for an empty trace.
    pub fn span_cycles(&self) -> u64 {
        match (self.first_cycle, self.last_cycle) {
            (Some(first), Some(last)) => last.since(first) + 1,
            _ => 0,
        }
    }

    /// Merges another statistics block into this one, as if the two event
    /// streams had been observed by a single collector.
    pub fn merge(&mut self, other: &TraceStats) {
        self.fetches += other.fetches;
        self.loads += other.loads;
        self.stores += other.stores;
        self.first_cycle = match (self.first_cycle, other.first_cycle) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last_cycle = match (self.last_cycle, other.last_cycle) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} events ({} ifetch, {} load, {} store) over {} cycles",
            self.total(),
            self.fetches,
            self.loads,
            self.stores,
            self.span_cycles()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Address, Pc};

    #[test]
    fn empty_stats() {
        let stats = TraceStats::new();
        assert_eq!(stats.total(), 0);
        assert_eq!(stats.span_cycles(), 0);
        assert_eq!(stats.first_cycle, None);
        assert!(matches!(stats.end_cycle(), Err(TraceError::Empty)));
    }

    #[test]
    fn end_cycle_is_one_past_the_last_event() {
        let mut stats = TraceStats::new();
        stats.observe(&MemoryAccess::fetch(Cycle::new(41), Pc::new(0)));
        assert_eq!(stats.end_cycle().expect("non-empty"), Cycle::new(42));
    }

    #[test]
    fn observe_counts_and_span() {
        let mut stats = TraceStats::new();
        stats.observe(&MemoryAccess::fetch(Cycle::new(10), Pc::new(0)));
        stats.observe(&MemoryAccess::load(Cycle::new(12), Pc::new(4), Address::new(8)));
        stats.observe(&MemoryAccess::store(Cycle::new(19), Pc::new(8), Address::new(8)));
        assert_eq!(stats.total(), 3);
        assert_eq!(stats.data_accesses(), 2);
        assert_eq!(stats.span_cycles(), 10);
        assert_eq!(stats.first_cycle, Some(Cycle::new(10)));
        assert_eq!(stats.last_cycle, Some(Cycle::new(19)));
    }

    #[test]
    fn merge_combines_disjoint_streams() {
        let mut a = TraceStats::new();
        a.observe(&MemoryAccess::fetch(Cycle::new(5), Pc::new(0)));
        let mut b = TraceStats::new();
        b.observe(&MemoryAccess::load(Cycle::new(2), Pc::new(0), Address::new(0)));
        b.observe(&MemoryAccess::store(Cycle::new(9), Pc::new(0), Address::new(0)));

        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.first_cycle, Some(Cycle::new(2)));
        assert_eq!(a.last_cycle, Some(Cycle::new(9)));
        assert_eq!(a.span_cycles(), 8);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = TraceStats::new();
        a.observe(&MemoryAccess::fetch(Cycle::new(1), Pc::new(0)));
        let before = a;
        a.merge(&TraceStats::new());
        assert_eq!(a, before);

        let mut empty = TraceStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn display_mentions_counts() {
        let mut stats = TraceStats::new();
        stats.observe(&MemoryAccess::fetch(Cycle::new(0), Pc::new(0)));
        assert!(stats.to_string().contains("1 ifetch"));
    }
}
