//! Property tests on the circuit-level models.

use leakage_energy::{
    calibrate_refetch_energy, CircuitParams, DynamicEnergyModel, IntervalEnergyModel, ModePowers,
    ModeTimings, SubthresholdModel, TransitionModel,
};
use proptest::prelude::*;

fn arb_powers() -> impl Strategy<Value = ModePowers> {
    (0.001f64..100.0, 0.05f64..0.9, 0.0f64..0.04)
        .prop_map(|(active, dr, sr)| ModePowers::from_ratios(active, dr.max(sr + 0.01), sr))
}

fn arb_timings() -> impl Strategy<Value = ModeTimings> {
    (1u64..5, 1u64..40, 0u64..20).prop_map(|(d, s1_extra, s4)| ModeTimings {
        s1: d + s1_extra,
        s3: d,
        s4,
        d1: d,
        d3: d,
    })
}

fn arb_transition() -> impl Strategy<Value = TransitionModel> {
    prop::sample::select(vec![
        TransitionModel::Trapezoidal,
        TransitionModel::HighEndpoint,
        TransitionModel::LowEndpoint,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Calibration is the inverse of the inflection solve: aiming the
    /// refetch energy at any reachable target recovers that target.
    #[test]
    fn calibration_roundtrips_the_solver(
        powers in arb_powers(),
        timings in arb_timings(),
        transition in arb_transition(),
        target in 200u64..10_000_000,
    ) {
        // The target must be reachable: beyond the feasibility clamp and
        // with a nonnegative refetch energy.
        prop_assume!(target > timings.sleep_overhead() * 2);
        let refetch = calibrate_refetch_energy(&powers, &timings, transition, target);
        prop_assume!(refetch >= 0.0);
        let params = CircuitParams::builder()
            .powers(powers)
            .timings(timings)
            .transition_model(transition)
            .refetch_energy(refetch)
            .build();
        let solved = IntervalEnergyModel::new(params).inflection_points().drowsy_sleep;
        prop_assert!(
            solved.abs_diff(target) <= 1,
            "target {target} vs solved {solved}"
        );
    }

    /// The solved inflection point is scale-free: multiplying every
    /// power and energy by the same factor leaves it unchanged.
    #[test]
    fn inflection_point_is_scale_free(
        powers in arb_powers(),
        timings in arb_timings(),
        refetch_units in 1.0f64..10_000.0,
        factor in 0.01f64..1000.0,
    ) {
        let refetch = refetch_units * powers.active;
        let base = CircuitParams::builder()
            .powers(powers)
            .timings(timings)
            .refetch_energy(refetch)
            .build();
        let scaled_powers =
            ModePowers::from_ratios(powers.active * factor, powers.drowsy_ratio(), powers.sleep_ratio());
        let scaled = CircuitParams::builder()
            .powers(scaled_powers)
            .timings(timings)
            .refetch_energy(refetch * factor)
            .build();
        let a = IntervalEnergyModel::new(base).drowsy_sleep_point_exact();
        let b = IntervalEnergyModel::new(scaled).drowsy_sleep_point_exact();
        prop_assert!((a - b).abs() <= a.abs() * 1e-6 + 1e-6, "{a} vs {b}");
    }

    /// More refetch energy can only push the crossover later.
    #[test]
    fn inflection_point_monotone_in_refetch(
        powers in arb_powers(),
        timings in arb_timings(),
        refetch_units in 1.0f64..1_000.0,
        extra_units in 0.1f64..1_000.0,
    ) {
        let mk = |units: f64| {
            let params = CircuitParams::builder()
                .powers(powers)
                .timings(timings)
                .refetch_energy(units * powers.active)
                .build();
            IntervalEnergyModel::new(params).drowsy_sleep_point_exact()
        };
        prop_assert!(mk(refetch_units + extra_units) >= mk(refetch_units));
    }

    /// Subthreshold leakage is monotone: leakier with higher Vdd, lower
    /// Vth, and the drowsy voltage always helps.
    #[test]
    fn subthreshold_monotonicity(
        vdd in 0.5f64..2.5,
        vth in 0.05f64..0.5,
        dv in 0.01f64..0.5,
        vdd_low_frac in 0.1f64..0.9,
    ) {
        let model = SubthresholdModel::default();
        prop_assert!(model.leakage_power(vdd + dv, vth) > model.leakage_power(vdd, vth));
        prop_assert!(model.leakage_power(vdd, vth) > model.leakage_power(vdd, vth + dv));
        let drowsy = model.drowsy_leakage_power(vdd, vdd * vdd_low_frac, vth, 0.15);
        prop_assert!(drowsy < model.leakage_power(vdd, vth));
    }

    /// Dynamic refetch energy scales as nm · Vdd².
    #[test]
    fn dynamic_energy_scaling_law(
        nm in 10.0f64..500.0,
        vdd in 0.3f64..3.0,
        k in 0.001f64..10.0,
    ) {
        let model = DynamicEnergyModel::new(k);
        let base = model.refetch_energy(nm, vdd);
        prop_assert!((model.refetch_energy(2.0 * nm, vdd) - 2.0 * base).abs() < base * 1e-9);
        prop_assert!(
            (model.refetch_energy(nm, 2.0 * vdd) - 4.0 * base).abs() < 4.0 * base * 1e-9
        );
    }
}
