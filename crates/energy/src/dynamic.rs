//! A CACTI-analog dynamic-energy model for induced misses.

use crate::{circuit::calibrate_refetch_energy, Energy, ModePowers, ModeTimings};
use crate::{TechnologyNode, TransitionModel};
use serde::{Deserialize, Serialize};

/// First-order dynamic energy of refetching one line from L2 after an
/// induced miss.
///
/// CACTI computes switched capacitance from detailed array geometry; the
/// limit study only needs the induced-miss energy `C_D`, which to first
/// order scales with the switched capacitance (proportional to feature
/// size for a fixed-capacity cache) and the square of the supply voltage:
///
/// ```text
/// C_D(nm, Vdd) = k · nm · Vdd²
/// ```
///
/// The default anchors `k` so the 70 nm estimate equals the calibrated
/// 70 nm preset. At other nodes the paper's Table 1 calibration is
/// authoritative ([`CircuitParams::for_node`](crate::CircuitParams::for_node));
/// this model exists for what-if exploration with the generalized model,
/// and deviates from the calibrated values most at 130 nm, where the
/// paper's inflection point grows slower than pure capacitance scaling
/// would predict.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicEnergyModel {
    /// pJ per (nm · V²).
    pub k: f64,
}

impl Default for DynamicEnergyModel {
    fn default() -> Self {
        // Anchor at the calibrated 70 nm refetch energy.
        let node = TechnologyNode::N70;
        let active = crate::SubthresholdModel::default().leakage_power(node.vdd(), node.vth());
        let powers = ModePowers::from_ratios(
            active,
            crate::circuit::PRESET_DROWSY_RATIO,
            crate::circuit::PRESET_SLEEP_RATIO,
        );
        let anchor = calibrate_refetch_energy(
            &powers,
            &ModeTimings::paper_defaults(),
            TransitionModel::Trapezoidal,
            node.paper_drowsy_sleep_point(),
        );
        DynamicEnergyModel {
            k: anchor / (f64::from(node.feature_nm()) * node.vdd() * node.vdd()),
        }
    }
}

impl DynamicEnergyModel {
    /// Creates a model with an explicit scale constant.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not strictly positive.
    pub fn new(k: f64) -> Self {
        assert!(k > 0.0, "scale constant must be positive");
        DynamicEnergyModel { k }
    }

    /// Estimated refetch energy at the given feature size (nm) and
    /// supply voltage (V), in pJ.
    pub fn refetch_energy(&self, nm: f64, vdd: f64) -> Energy {
        self.k * nm * vdd * vdd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitParams;

    #[test]
    fn anchored_at_70nm_preset() {
        let model = DynamicEnergyModel::default();
        let preset = CircuitParams::for_node(TechnologyNode::N70);
        let est = model.refetch_energy(70.0, TechnologyNode::N70.vdd());
        assert!((est - preset.refetch_energy()).abs() / preset.refetch_energy() < 1e-9);
    }

    #[test]
    fn grows_with_feature_size_and_vdd() {
        let m = DynamicEnergyModel::default();
        assert!(m.refetch_energy(180.0, 2.0) > m.refetch_energy(70.0, 0.9));
        assert!(m.refetch_energy(70.0, 1.2) > m.refetch_energy(70.0, 0.9));
    }

    #[test]
    fn quadratic_in_vdd() {
        let m = DynamicEnergyModel::new(1.0);
        assert!((m.refetch_energy(100.0, 2.0) / m.refetch_energy(100.0, 1.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_k() {
        let _ = DynamicEnergyModel::new(-1.0);
    }
}
