//! Technology, leakage-power and dynamic-energy models.
//!
//! This crate is the circuit-level substrate of the leakage limit study.
//! The paper takes its per-line leakage powers from HotLeakage, its
//! induced-miss dynamic energy from CACTI 3.0, and its mode-transition
//! timings from Li et al. (DATE 2004). None of those artifacts are
//! available offline, so this crate provides:
//!
//! * **Calibrated per-node presets** ([`CircuitParams::for_node`]) whose
//!   solved drowsy–sleep inflection points reproduce the paper's Table 1
//!   exactly (1057 / 5088 / 10328 / 103084 cycles at 70/100/130/180 nm),
//! * the **interval energy equations** (Eq. 1 and Eq. 2 of the paper) in
//!   [`IntervalEnergyModel`], together with the inflection-point solver
//!   (Eq. 3),
//! * a **physical subthreshold-leakage model** ([`SubthresholdModel`],
//!   the HotLeakage analog) and a **capacitance-scaling dynamic-energy
//!   model** ([`DynamicEnergyModel`], the CACTI analog) for extrapolating
//!   to technology points the paper never measured, and
//! * the **ITRS leakage-fraction projection** behind the paper's Fig. 1
//!   ([`itrs::leakage_fraction`]).
//!
//! Units: energies are picojoules (pJ) per cache line, powers are pJ per
//! clock cycle per line, durations are cycles. Only *ratios* of these
//! quantities affect the study's results, so the absolute scale is a
//! documented normalization (see `DESIGN.md`).
//!
//! # Examples
//!
//! ```
//! use leakage_energy::{CircuitParams, IntervalEnergyModel, TechnologyNode};
//!
//! let model = IntervalEnergyModel::new(CircuitParams::for_node(TechnologyNode::N70));
//! let points = model.inflection_points();
//! assert_eq!(points.active_drowsy, 6);
//! assert_eq!(points.drowsy_sleep, 1057);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod dynamic;
mod interval_energy;
pub mod itrs;
mod leakage;
mod node;
mod power;
mod timings;

pub use circuit::{
    calibrate_refetch_energy, CircuitParams, CircuitParamsBuilder, PRESET_DROWSY_RATIO,
    PRESET_SLEEP_RATIO,
};
pub use dynamic::DynamicEnergyModel;
pub use interval_energy::{InflectionPoints, IntervalEnergyModel};
pub use leakage::SubthresholdModel;
pub use node::TechnologyNode;
pub use power::{ModePowers, PowerMode};
pub use timings::{ModeTimings, TimingError, TransitionModel};

/// Energy in picojoules.
pub type Energy = f64;

/// Power in picojoules per clock cycle (per cache line).
pub type Power = f64;
