//! The full set of circuit parameters driving the limit analysis.

use crate::{
    DynamicEnergyModel, Energy, ModePowers, ModeTimings, SubthresholdModel, TechnologyNode,
    TransitionModel,
};
use serde::{Deserialize, Serialize};

/// Drowsy leakage as a fraction of active leakage used by the presets.
///
/// The paper's OPT-Drowsy limit sits at 66.1–66.7 % across every node and
/// both caches (Table 2), which pins this ratio at one third: an
/// always-drowsy line saves at most `1 − 1/3` of the baseline.
pub const PRESET_DROWSY_RATIO: f64 = 1.0 / 3.0;

/// Sleep (gated-Vdd) residual leakage as a fraction of active leakage
/// used by the presets. Gated-Vdd leaves only stacked-transistor
/// subthreshold leakage; half a percent keeps OPT-Hybrid's data-cache
/// ceiling at the paper's 99.1 %.
pub const PRESET_SLEEP_RATIO: f64 = 0.005;

/// Everything the interval energy equations need: static powers, ramp
/// timings, the transition-power rule and the induced-miss refetch
/// energy `C_D`.
///
/// Use [`CircuitParams::for_node`] for the paper's calibrated operating
/// points, or [`CircuitParams::builder`] to explore arbitrary
/// technologies with the generalized model.
///
/// # Examples
///
/// ```
/// use leakage_energy::{CircuitParams, ModePowers, ModeTimings, TechnologyNode};
///
/// // A hypothetical future node: leakier, cheaper refetch.
/// let custom = CircuitParams::builder()
///     .powers(ModePowers::from_ratios(0.08, 0.25, 0.002))
///     .timings(ModeTimings::with_l2_latency(9))
///     .refetch_energy(6.0)
///     .build();
/// assert!(custom.refetch_energy() > 0.0);
/// # let _ = CircuitParams::for_node(TechnologyNode::N70);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitParams {
    node: Option<TechnologyNode>,
    powers: ModePowers,
    timings: ModeTimings,
    transition: TransitionModel,
    refetch_energy: Energy,
}

impl CircuitParams {
    /// The calibrated operating point for one of the paper's technology
    /// nodes.
    ///
    /// Active leakage power comes from the [`SubthresholdModel`] at the
    /// node's Table 2 voltages; drowsy and sleep powers use the preset
    /// ratios; and the refetch energy is calibrated so the solved
    /// drowsy–sleep inflection point reproduces Table 1 exactly (see
    /// `DESIGN.md` for the calibration argument).
    pub fn for_node(node: TechnologyNode) -> Self {
        let active = SubthresholdModel::default().leakage_power(node.vdd(), node.vth());
        let powers = ModePowers::from_ratios(active, PRESET_DROWSY_RATIO, PRESET_SLEEP_RATIO);
        let timings = ModeTimings::paper_defaults();
        let transition = TransitionModel::Trapezoidal;
        let refetch_energy = calibrate_refetch_energy(
            &powers,
            &timings,
            transition,
            node.paper_drowsy_sleep_point(),
        );
        CircuitParams {
            node: Some(node),
            powers,
            timings,
            transition,
            refetch_energy,
        }
    }

    /// Starts building a custom parameter set.
    pub fn builder() -> CircuitParamsBuilder {
        CircuitParamsBuilder::default()
    }

    /// The technology node this parameter set was derived from, if any.
    pub fn node(&self) -> Option<TechnologyNode> {
        self.node
    }

    /// Static power per line in each mode.
    pub fn powers(&self) -> &ModePowers {
        &self.powers
    }

    /// Mode transition timings.
    pub fn timings(&self) -> &ModeTimings {
        &self.timings
    }

    /// How ramp energy is charged.
    pub fn transition_model(&self) -> TransitionModel {
        self.transition
    }

    /// Dynamic energy `C_D` of an induced miss (refetching a slept line
    /// from L2), in pJ.
    pub fn refetch_energy(&self) -> Energy {
        self.refetch_energy
    }
}

/// Computes the refetch energy that places the drowsy–sleep inflection
/// point exactly at `target_b` cycles for the given powers and timings.
///
/// This inverts Eq. 3: `C_D = E_D(b) − (E_S(b) − C_D)`. It is how the
/// per-node presets absorb the absolute scale of HotLeakage/CACTI, which
/// are unavailable; see `DESIGN.md`.
pub fn calibrate_refetch_energy(
    powers: &ModePowers,
    timings: &ModeTimings,
    transition: TransitionModel,
    target_b: u64,
) -> Energy {
    let pa = powers.active;
    let pd = powers.drowsy;
    let ps = powers.sleep;
    let b = target_b as f64;
    let e_d = transition.ramp_power(pa, pd) * timings.d1 as f64
        + pd * (b - timings.drowsy_overhead() as f64)
        + transition.ramp_power(pd, pa) * timings.d3 as f64;
    let e_s_no_refetch = transition.ramp_power(pa, ps) * timings.s1 as f64
        + ps * (b - timings.sleep_overhead() as f64)
        + transition.ramp_power(ps, pa) * timings.s3 as f64
        + pa * timings.s4 as f64;
    e_d - e_s_no_refetch
}

/// Builder for [`CircuitParams`]; see [`CircuitParams::builder`].
#[derive(Debug, Clone)]
pub struct CircuitParamsBuilder {
    node: Option<TechnologyNode>,
    powers: ModePowers,
    timings: ModeTimings,
    transition: TransitionModel,
    refetch_energy: Option<Energy>,
}

impl Default for CircuitParamsBuilder {
    fn default() -> Self {
        CircuitParamsBuilder {
            node: None,
            powers: ModePowers::from_ratios(0.05, PRESET_DROWSY_RATIO, PRESET_SLEEP_RATIO),
            timings: ModeTimings::paper_defaults(),
            transition: TransitionModel::Trapezoidal,
            refetch_energy: None,
        }
    }
}

impl CircuitParamsBuilder {
    /// Tags the parameters with a technology node (informational only).
    pub fn derived_from(mut self, node: TechnologyNode) -> Self {
        self.node = Some(node);
        self
    }

    /// Sets the per-mode static powers.
    pub fn powers(mut self, powers: ModePowers) -> Self {
        self.powers = powers;
        self
    }

    /// Sets the transition timings.
    pub fn timings(mut self, timings: ModeTimings) -> Self {
        self.timings = timings;
        self
    }

    /// Sets the transition-power rule.
    pub fn transition_model(mut self, transition: TransitionModel) -> Self {
        self.transition = transition;
        self
    }

    /// Sets the induced-miss dynamic energy directly.
    pub fn refetch_energy(mut self, energy: Energy) -> Self {
        self.refetch_energy = Some(energy);
        self
    }

    /// Takes the refetch energy from a [`DynamicEnergyModel`] at the
    /// given feature size and supply voltage.
    pub fn refetch_from_model(mut self, model: &DynamicEnergyModel, nm: f64, vdd: f64) -> Self {
        self.refetch_energy = Some(model.refetch_energy(nm, vdd));
        self
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if the timings violate Lemma 1's ordering
    /// ([`ModeTimings::validate`]), if the powers are not strictly
    /// ordered, or if no refetch energy was provided.
    pub fn build(self) -> CircuitParams {
        self.timings
            .validate()
            .expect("transition timings violate Lemma 1");
        assert!(
            self.powers.is_strictly_ordered(),
            "mode powers must satisfy active > drowsy > sleep >= 0"
        );
        let refetch_energy = self
            .refetch_energy
            .expect("a refetch energy is required; set refetch_energy() or refetch_from_model()");
        assert!(refetch_energy >= 0.0, "refetch energy cannot be negative");
        CircuitParams {
            node: self.node,
            powers: self.powers,
            timings: self.timings,
            transition: self.transition,
            refetch_energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_carry_their_node() {
        for node in TechnologyNode::ALL {
            let p = CircuitParams::for_node(node);
            assert_eq!(p.node(), Some(node));
            assert!(p.powers().is_strictly_ordered());
            assert!(p.refetch_energy() > 0.0);
        }
    }

    #[test]
    fn preset_active_power_decreases_with_feature_size() {
        let powers: Vec<f64> = TechnologyNode::ALL
            .iter()
            .map(|&n| CircuitParams::for_node(n).powers().active)
            .collect();
        for pair in powers.windows(2) {
            assert!(
                pair[0] > pair[1],
                "leakage should drop at older nodes: {powers:?}"
            );
        }
    }

    #[test]
    fn preset_refetch_energy_grows_with_feature_size() {
        // Dynamic energy scales with capacitance and Vdd², so older
        // (larger) nodes pay more per refetch.
        let energies: Vec<f64> = TechnologyNode::ALL
            .iter()
            .map(|&n| CircuitParams::for_node(n).refetch_energy())
            .collect();
        for pair in energies.windows(2) {
            assert!(
                pair[0] < pair[1],
                "refetch energy should grow at older nodes: {energies:?}"
            );
        }
    }

    #[test]
    fn builder_rejects_missing_refetch() {
        let result = std::panic::catch_unwind(|| CircuitParams::builder().build());
        assert!(result.is_err());
    }

    #[test]
    #[should_panic(expected = "Lemma 1")]
    fn builder_rejects_bad_timings() {
        let mut t = ModeTimings::paper_defaults();
        t.d1 = 100;
        let _ = CircuitParams::builder()
            .timings(t)
            .refetch_energy(1.0)
            .build();
    }

    #[test]
    fn builder_roundtrip() {
        let p = CircuitParams::builder()
            .derived_from(TechnologyNode::N100)
            .powers(ModePowers::from_ratios(2.0, 0.4, 0.01))
            .timings(ModeTimings::with_l2_latency(12))
            .transition_model(TransitionModel::HighEndpoint)
            .refetch_energy(50.0)
            .build();
        assert_eq!(p.node(), Some(TechnologyNode::N100));
        assert_eq!(p.timings().s4, 9);
        assert_eq!(p.transition_model(), TransitionModel::HighEndpoint);
        assert_eq!(p.refetch_energy(), 50.0);
    }

    #[test]
    fn calibration_is_scale_invariant_in_ratio_terms() {
        let powers = ModePowers::from_ratios(1.0, PRESET_DROWSY_RATIO, PRESET_SLEEP_RATIO);
        let timings = ModeTimings::paper_defaults();
        let c1 = calibrate_refetch_energy(&powers, &timings, TransitionModel::Trapezoidal, 1057);
        let powers2 = ModePowers::from_ratios(3.0, PRESET_DROWSY_RATIO, PRESET_SLEEP_RATIO);
        let c2 = calibrate_refetch_energy(&powers2, &timings, TransitionModel::Trapezoidal, 1057);
        assert!((c2 / c1 - 3.0).abs() < 1e-9);
    }
}
