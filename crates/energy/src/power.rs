//! Operating modes and their static power draw.

use crate::Power;
use serde::{Deserialize, Serialize};

/// The three operating modes a cache line can be in (paper §2–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerMode {
    /// Full supply voltage; the line is immediately accessible.
    Active,
    /// Reduced supply voltage (state-preserving, Kim et al.'s drowsy
    /// cache). Data survives but a 1–2 cycle wakeup is needed before an
    /// access.
    Drowsy,
    /// Supply gated off (state-destroying, Powell et al.'s gated-Vdd).
    /// Near-zero leakage, but the data is lost and must be refetched.
    Sleep,
}

impl PowerMode {
    /// All modes, highest power first.
    pub const ALL: [PowerMode; 3] = [PowerMode::Active, PowerMode::Drowsy, PowerMode::Sleep];

    /// Whether data stored in the line survives this mode.
    pub const fn preserves_state(self) -> bool {
        !matches!(self, PowerMode::Sleep)
    }
}

impl std::fmt::Display for PowerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PowerMode::Active => "active",
            PowerMode::Drowsy => "drowsy",
            PowerMode::Sleep => "sleep",
        })
    }
}

/// Static (leakage) power drawn by one cache line in each mode,
/// in pJ/cycle.
///
/// The paper's results constrain the *ratios*: OPT-Drowsy savings of
/// ~66.5% across every node and both caches pin `drowsy/active ≈ 1/3`,
/// and the near-total savings of OPT-Hybrid on the data cache pin
/// `sleep/active` below about 1%.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModePowers {
    /// Leakage power at full Vdd.
    pub active: Power,
    /// Leakage power at the reduced drowsy voltage.
    pub drowsy: Power,
    /// Residual leakage with the supply gated.
    pub sleep: Power,
}

impl ModePowers {
    /// Creates a power table from the active power and the two ratios.
    ///
    /// # Panics
    ///
    /// Panics if `active` is not strictly positive, or the ratios do not
    /// satisfy `0 <= sleep_ratio < drowsy_ratio < 1` (Lemma 1's ordering
    /// of the modes requires strictly decreasing powers).
    pub fn from_ratios(active: Power, drowsy_ratio: f64, sleep_ratio: f64) -> Self {
        assert!(active > 0.0, "active leakage power must be positive");
        assert!(
            (0.0..1.0).contains(&drowsy_ratio) && drowsy_ratio > sleep_ratio,
            "need 0 <= sleep_ratio < drowsy_ratio < 1"
        );
        assert!(sleep_ratio >= 0.0, "sleep ratio cannot be negative");
        ModePowers {
            active,
            drowsy: active * drowsy_ratio,
            sleep: active * sleep_ratio,
        }
    }

    /// Power drawn while resting in `mode`.
    pub fn of(&self, mode: PowerMode) -> Power {
        match mode {
            PowerMode::Active => self.active,
            PowerMode::Drowsy => self.drowsy,
            PowerMode::Sleep => self.sleep,
        }
    }

    /// `drowsy / active`.
    pub fn drowsy_ratio(&self) -> f64 {
        self.drowsy / self.active
    }

    /// `sleep / active`.
    pub fn sleep_ratio(&self) -> f64 {
        self.sleep / self.active
    }

    /// Checks the strict power ordering `active > drowsy > sleep >= 0`
    /// that the optimality theorem relies on.
    pub fn is_strictly_ordered(&self) -> bool {
        self.active > self.drowsy && self.drowsy > self.sleep && self.sleep >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_roundtrip() {
        let p = ModePowers::from_ratios(0.05, 1.0 / 3.0, 0.005);
        assert!((p.drowsy_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert!((p.sleep_ratio() - 0.005).abs() < 1e-12);
        assert!(p.is_strictly_ordered());
    }

    #[test]
    fn of_selects_mode() {
        let p = ModePowers::from_ratios(1.0, 0.5, 0.1);
        assert_eq!(p.of(PowerMode::Active), 1.0);
        assert_eq!(p.of(PowerMode::Drowsy), 0.5);
        assert!((p.of(PowerMode::Sleep) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn state_preservation() {
        assert!(PowerMode::Active.preserves_state());
        assert!(PowerMode::Drowsy.preserves_state());
        assert!(!PowerMode::Sleep.preserves_state());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_active() {
        let _ = ModePowers::from_ratios(0.0, 0.3, 0.0);
    }

    #[test]
    #[should_panic(expected = "drowsy_ratio")]
    fn rejects_inverted_ratios() {
        let _ = ModePowers::from_ratios(1.0, 0.1, 0.3);
    }

    #[test]
    fn mode_display() {
        assert_eq!(PowerMode::Sleep.to_string(), "sleep");
        assert_eq!(PowerMode::ALL.len(), 3);
    }
}
