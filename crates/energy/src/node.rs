//! Process technology nodes.

use serde::{Deserialize, Serialize};

/// A process technology node studied in the paper (its Table 1/Table 2).
///
/// Supply and threshold voltages are the paper's Table 2 values, which in
/// turn come from the HotLeakage technology files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TechnologyNode {
    /// 70 nm: Vdd = 0.9 V, Vth = 0.1902 V. The paper's headline node.
    N70,
    /// 100 nm: Vdd = 1.0 V, Vth = 0.2607 V.
    N100,
    /// 130 nm: Vdd = 1.5 V, Vth = 0.3353 V.
    N130,
    /// 180 nm: Vdd = 2.0 V, Vth = 0.3979 V.
    N180,
}

impl TechnologyNode {
    /// All four nodes, smallest feature size first (the order of Table 1
    /// and Table 2).
    pub const ALL: [TechnologyNode; 4] = [
        TechnologyNode::N70,
        TechnologyNode::N100,
        TechnologyNode::N130,
        TechnologyNode::N180,
    ];

    /// Feature size in nanometres.
    pub const fn feature_nm(self) -> u32 {
        match self {
            TechnologyNode::N70 => 70,
            TechnologyNode::N100 => 100,
            TechnologyNode::N130 => 130,
            TechnologyNode::N180 => 180,
        }
    }

    /// Supply voltage in volts (paper Table 2).
    pub const fn vdd(self) -> f64 {
        match self {
            TechnologyNode::N70 => 0.9,
            TechnologyNode::N100 => 1.0,
            TechnologyNode::N130 => 1.5,
            TechnologyNode::N180 => 2.0,
        }
    }

    /// Threshold voltage in volts (paper Table 2).
    pub const fn vth(self) -> f64 {
        match self {
            TechnologyNode::N70 => 0.1902,
            TechnologyNode::N100 => 0.2607,
            TechnologyNode::N130 => 0.3353,
            TechnologyNode::N180 => 0.3979,
        }
    }

    /// The drowsy–sleep inflection point the paper reports for this node
    /// in Table 1 (in cycles); preset calibration targets this value.
    pub const fn paper_drowsy_sleep_point(self) -> u64 {
        match self {
            TechnologyNode::N70 => 1057,
            TechnologyNode::N100 => 5088,
            TechnologyNode::N130 => 10328,
            TechnologyNode::N180 => 103084,
        }
    }

    /// The active–drowsy inflection point of Table 1 (6 cycles at every
    /// node: the sum of the drowsy entry and exit transition times).
    pub const fn paper_active_drowsy_point(self) -> u64 {
        6
    }
}

impl std::fmt::Display for TechnologyNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}nm", self.feature_nm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_voltages() {
        assert_eq!(TechnologyNode::N70.vdd(), 0.9);
        assert_eq!(TechnologyNode::N70.vth(), 0.1902);
        assert_eq!(TechnologyNode::N180.vdd(), 2.0);
        assert_eq!(TechnologyNode::N180.vth(), 0.3979);
    }

    #[test]
    fn voltages_scale_monotonically() {
        for pair in TechnologyNode::ALL.windows(2) {
            assert!(pair[0].vdd() < pair[1].vdd());
            assert!(pair[0].vth() < pair[1].vth());
            assert!(pair[0].feature_nm() < pair[1].feature_nm());
        }
    }

    #[test]
    fn table1_targets() {
        assert_eq!(TechnologyNode::N70.paper_drowsy_sleep_point(), 1057);
        assert_eq!(TechnologyNode::N100.paper_drowsy_sleep_point(), 5088);
        assert_eq!(TechnologyNode::N130.paper_drowsy_sleep_point(), 10328);
        assert_eq!(TechnologyNode::N180.paper_drowsy_sleep_point(), 103084);
        for node in TechnologyNode::ALL {
            assert_eq!(node.paper_active_drowsy_point(), 6);
        }
    }

    #[test]
    fn display() {
        assert_eq!(TechnologyNode::N70.to_string(), "70nm");
    }
}
