//! The paper's interval energy equations (Eq. 1–3) and inflection points.

use crate::{CircuitParams, Energy, PowerMode};
use serde::{Deserialize, Serialize};

/// The two inflection points of Definition 3, in cycles.
///
/// * Intervals no longer than `active_drowsy` must stay active.
/// * Intervals in `(active_drowsy, drowsy_sleep]` are cheapest drowsy.
/// * Intervals longer than `drowsy_sleep` are cheapest asleep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InflectionPoints {
    /// The active–drowsy point `a = d1 + d3`.
    pub active_drowsy: u64,
    /// The drowsy–sleep point `b`, where `E_S(b) = E_D(b)`.
    pub drowsy_sleep: u64,
}

impl std::fmt::Display for InflectionPoints {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "a = {} cycles, b = {} cycles",
            self.active_drowsy, self.drowsy_sleep
        )
    }
}

/// Evaluates the energy a cache line consumes over one access interval in
/// each operating mode — the paper's Equations 1 and 2 — and solves for
/// the inflection points (Equation 3).
///
/// For an interval of `t` cycles between two accesses:
///
/// ```text
/// E_A(t) = P_active · t
/// E_D(t) = ramp(P_a→P_d)·d1 + P_d·(t − d1 − d3) + ramp(P_d→P_a)·d3
/// E_S(t) = ramp(P_a→P_s)·s1 + P_s·(t − s1 − s3 − s4)
///          + ramp(P_s→P_a)·s3 + P_a·s4 + C_D
/// ```
///
/// where `ramp` charges transition power according to the configured
/// [`TransitionModel`](crate::TransitionModel) and `C_D` is the dynamic
/// energy of the induced miss (refetch from L2).
///
/// # Examples
///
/// ```
/// use leakage_energy::{CircuitParams, IntervalEnergyModel, TechnologyNode};
///
/// let m = IntervalEnergyModel::new(CircuitParams::for_node(TechnologyNode::N70));
/// let b = m.inflection_points().drowsy_sleep;
/// // At the inflection point the two modes cost the same energy:
/// let ed = m.energy_drowsy(b).unwrap();
/// let es = m.energy_sleep(b, true).unwrap();
/// assert!((ed - es).abs() / ed < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalEnergyModel {
    params: CircuitParams,
}

impl IntervalEnergyModel {
    /// Wraps a set of circuit parameters.
    pub fn new(params: CircuitParams) -> Self {
        IntervalEnergyModel { params }
    }

    /// The underlying circuit parameters.
    pub fn params(&self) -> &CircuitParams {
        &self.params
    }

    /// Energy of resting fully active for `t` cycles (the baseline).
    pub fn energy_active(&self, t: u64) -> Energy {
        self.params.powers().active * t as f64
    }

    /// Energy of spending an interval of `t` cycles in drowsy mode
    /// (Eq. 2). Returns `None` when the interval is too short to hold the
    /// two voltage ramps (`t < d1 + d3`).
    pub fn energy_drowsy(&self, t: u64) -> Option<Energy> {
        let p = &self.params;
        let timings = p.timings();
        let overhead = timings.drowsy_overhead();
        if t < overhead {
            return None;
        }
        let pa = p.powers().active;
        let pd = p.powers().drowsy;
        let ramp = p.transition_model();
        Some(
            ramp.ramp_power(pa, pd) * timings.d1 as f64
                + pd * (t - overhead) as f64
                + ramp.ramp_power(pd, pa) * timings.d3 as f64,
        )
    }

    /// Energy of spending an interval of `t` cycles asleep (Eq. 1).
    ///
    /// `charge_refetch` controls whether the induced-miss dynamic energy
    /// `C_D` is included: it is for an interval that ends with a re-access
    /// to the line (the paper's model), and is not for intervals whose
    /// data would have been evicted anyway (the dead-interval refinement)
    /// or for the leading/trailing edges of a trace.
    ///
    /// Returns `None` when the interval cannot hold the transitions
    /// (`t < s1 + s3 + s4`).
    pub fn energy_sleep(&self, t: u64, charge_refetch: bool) -> Option<Energy> {
        let p = &self.params;
        let timings = p.timings();
        let overhead = timings.sleep_overhead();
        if t < overhead {
            return None;
        }
        let pa = p.powers().active;
        let ps = p.powers().sleep;
        let ramp = p.transition_model();
        let refetch = if charge_refetch {
            p.refetch_energy()
        } else {
            0.0
        };
        Some(
            ramp.ramp_power(pa, ps) * timings.s1 as f64
                + ps * (t - overhead) as f64
                + ramp.ramp_power(ps, pa) * timings.s3 as f64
                + pa * timings.s4 as f64
                + refetch,
        )
    }

    /// Energy of spending `t` cycles in `mode`, charging the refetch on
    /// sleep. `None` when the mode is infeasible at this length.
    pub fn energy(&self, mode: PowerMode, t: u64) -> Option<Energy> {
        match mode {
            PowerMode::Active => Some(self.energy_active(t)),
            PowerMode::Drowsy => self.energy_drowsy(t),
            PowerMode::Sleep => self.energy_sleep(t, true),
        }
    }

    /// Solves Eq. 3 for the exact (fractional) drowsy–sleep inflection
    /// point: the interval length where `E_S(b) = E_D(b)`.
    ///
    /// Both energies are linear in `t` beyond their overheads, so the
    /// crossing is closed-form. The result is clamped from below to the
    /// sleep feasibility bound `s1 + s3 + s4`.
    pub fn drowsy_sleep_point_exact(&self) -> f64 {
        let p = &self.params;
        let t = p.timings();
        let pa = p.powers().active;
        let pd = p.powers().drowsy;
        let ps = p.powers().sleep;
        let ramp = p.transition_model();

        // E_S(b) = K_s + ps·b with
        // K_s = ramp(a→s)·s1 − ps·(s1+s3+s4) + ramp(s→a)·s3 + pa·s4 + C_D
        let k_s = ramp.ramp_power(pa, ps) * t.s1 as f64 - ps * t.sleep_overhead() as f64
            + ramp.ramp_power(ps, pa) * t.s3 as f64
            + pa * t.s4 as f64
            + p.refetch_energy();
        // E_D(b) = K_d + pd·b with
        // K_d = ramp(a→d)·d1 − pd·(d1+d3) + ramp(d→a)·d3
        let k_d = ramp.ramp_power(pa, pd) * t.d1 as f64 - pd * t.drowsy_overhead() as f64
            + ramp.ramp_power(pd, pa) * t.d3 as f64;

        let b = (k_s - k_d) / (pd - ps);
        b.max(t.sleep_overhead() as f64)
    }

    /// The interval length beyond which sleeping beats staying *active*
    /// (used by the sleep-only ablation; always at most the drowsy–sleep
    /// point).
    pub fn sleep_active_point_exact(&self) -> f64 {
        let p = &self.params;
        let t = p.timings();
        let pa = p.powers().active;
        let ps = p.powers().sleep;
        let ramp = p.transition_model();
        let k_s = ramp.ramp_power(pa, ps) * t.s1 as f64 - ps * t.sleep_overhead() as f64
            + ramp.ramp_power(ps, pa) * t.s3 as f64
            + pa * t.s4 as f64
            + p.refetch_energy();
        // Solve K_s + ps·t = pa·t.
        let b = k_s / (pa - ps);
        b.max(t.sleep_overhead() as f64)
    }

    /// Both inflection points of Definition 3, rounded to whole cycles —
    /// the quantities the paper reports in Table 1.
    pub fn inflection_points(&self) -> InflectionPoints {
        InflectionPoints {
            active_drowsy: self.params.timings().drowsy_overhead(),
            drowsy_sleep: self.drowsy_sleep_point_exact().round() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModePowers, ModeTimings, TechnologyNode, TransitionModel};

    fn model_70nm() -> IntervalEnergyModel {
        IntervalEnergyModel::new(CircuitParams::for_node(TechnologyNode::N70))
    }

    #[test]
    fn table1_inflection_points_all_nodes() {
        for node in TechnologyNode::ALL {
            let m = IntervalEnergyModel::new(CircuitParams::for_node(node));
            let pts = m.inflection_points();
            assert_eq!(
                pts.active_drowsy,
                node.paper_active_drowsy_point(),
                "{node}: active-drowsy"
            );
            assert_eq!(
                pts.drowsy_sleep,
                node.paper_drowsy_sleep_point(),
                "{node}: drowsy-sleep"
            );
        }
    }

    #[test]
    fn energies_agree_at_inflection() {
        let m = model_70nm();
        let b = m.inflection_points().drowsy_sleep;
        let ed = m.energy_drowsy(b).unwrap();
        let es = m.energy_sleep(b, true).unwrap();
        assert!((ed - es).abs() / ed < 1e-6);
    }

    #[test]
    fn ordering_below_and_above_inflection() {
        let m = model_70nm();
        let b = m.inflection_points().drowsy_sleep;
        // Below b (but feasible for both): drowsy cheaper.
        let t = b - 10;
        assert!(m.energy_drowsy(t).unwrap() < m.energy_sleep(t, true).unwrap());
        // Above b: sleep cheaper.
        let t = b + 10;
        assert!(m.energy_sleep(t, true).unwrap() < m.energy_drowsy(t).unwrap());
    }

    #[test]
    fn drowsy_beats_active_beyond_a() {
        let m = model_70nm();
        let a = m.inflection_points().active_drowsy;
        for t in [a, a + 1, 100, 1_000_000] {
            assert!(m.energy_drowsy(t).unwrap() < m.energy_active(t), "t={t}");
        }
    }

    #[test]
    fn infeasible_lengths_return_none() {
        let m = model_70nm();
        assert_eq!(m.energy_drowsy(5), None);
        assert!(m.energy_drowsy(6).is_some());
        assert_eq!(m.energy_sleep(36, true), None);
        assert!(m.energy_sleep(37, true).is_some());
        assert_eq!(m.energy(PowerMode::Drowsy, 1), None);
        assert!(m.energy(PowerMode::Active, 1).is_some());
    }

    #[test]
    fn refetch_flag_removes_exactly_cd() {
        let m = model_70nm();
        let with = m.energy_sleep(1000, true).unwrap();
        let without = m.energy_sleep(1000, false).unwrap();
        assert!((with - without - m.params().refetch_energy()).abs() < 1e-12);
    }

    #[test]
    fn sleep_active_point_below_drowsy_sleep_point() {
        for node in TechnologyNode::ALL {
            let m = IntervalEnergyModel::new(CircuitParams::for_node(node));
            assert!(m.sleep_active_point_exact() < m.drowsy_sleep_point_exact());
        }
    }

    #[test]
    fn transition_model_bounds_inflection() {
        // HighEndpoint charges ramps more for sleep (bigger swing), so the
        // crossover moves later; LowEndpoint moves it earlier.
        let base = CircuitParams::for_node(TechnologyNode::N70);
        let mk = |tm: TransitionModel| {
            IntervalEnergyModel::new(
                CircuitParams::builder()
                    .powers(*base.powers())
                    .timings(*base.timings())
                    .refetch_energy(base.refetch_energy())
                    .transition_model(tm)
                    .build(),
            )
            .drowsy_sleep_point_exact()
        };
        let lo = mk(TransitionModel::LowEndpoint);
        let mid = mk(TransitionModel::Trapezoidal);
        let hi = mk(TransitionModel::HighEndpoint);
        assert!(lo < mid && mid < hi, "{lo} < {mid} < {hi}");
    }

    #[test]
    fn custom_params_scale_free() {
        // Scaling all powers and energies by the same factor leaves the
        // inflection points unchanged (only ratios matter).
        let powers = ModePowers::from_ratios(1.0, 1.0 / 3.0, 0.005);
        let scaled = ModePowers::from_ratios(17.0, 1.0 / 3.0, 0.005);
        let a = IntervalEnergyModel::new(
            CircuitParams::builder()
                .powers(powers)
                .timings(ModeTimings::paper_defaults())
                .refetch_energy(100.0)
                .build(),
        );
        let b = IntervalEnergyModel::new(
            CircuitParams::builder()
                .powers(scaled)
                .timings(ModeTimings::paper_defaults())
                .refetch_energy(1700.0)
                .build(),
        );
        assert!(
            (a.drowsy_sleep_point_exact() - b.drowsy_sleep_point_exact()).abs() < 1e-6
        );
    }

    #[test]
    fn display_inflection_points() {
        let pts = model_70nm().inflection_points();
        assert!(pts.to_string().contains("1057"));
    }
}
