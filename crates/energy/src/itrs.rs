//! The ITRS leakage projection behind the paper's Fig. 1.
//!
//! Fig. 1 plots leakage power as a fraction of total power, 1999–2009,
//! "according to the International Technology Roadmap for
//! Semiconductors". The roadmap itself is not redistributable, so this
//! module encodes the widely cited shape of that projection — leakage
//! rising from a few percent of the total in 1999 toward parity with
//! dynamic power by the end of the decade — as an interpolated table.

/// Projection anchor points: (year, leakage fraction of total power).
const PROJECTION: [(u32, f64); 6] = [
    (1999, 0.06),
    (2001, 0.12),
    (2003, 0.22),
    (2005, 0.38),
    (2007, 0.55),
    (2009, 0.68),
];

/// Returns the projected leakage fraction of total power for `year`,
/// linearly interpolating between roadmap anchor years and clamping
/// outside 1999–2009.
///
/// # Examples
///
/// ```
/// let f2005 = leakage_energy::itrs::leakage_fraction(2005);
/// assert!(f2005 > leakage_energy::itrs::leakage_fraction(1999));
/// assert!(f2005 < leakage_energy::itrs::leakage_fraction(2009));
/// ```
pub fn leakage_fraction(year: u32) -> f64 {
    let (first_year, first) = PROJECTION[0];
    let (last_year, last) = PROJECTION[PROJECTION.len() - 1];
    if year <= first_year {
        return first;
    }
    if year >= last_year {
        return last;
    }
    for window in PROJECTION.windows(2) {
        let (y0, f0) = window[0];
        let (y1, f1) = window[1];
        if (y0..=y1).contains(&year) {
            let t = f64::from(year - y0) / f64::from(y1 - y0);
            return f0 + t * (f1 - f0);
        }
    }
    unreachable!("interpolation covers the full projection range")
}

/// The projection series (every year 1999–2009), as plotted in Fig. 1.
pub fn projection() -> Vec<(u32, f64)> {
    (1999..=2009).map(|y| (y, leakage_fraction(y))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_are_exact() {
        for &(year, fraction) in &PROJECTION {
            assert!((leakage_fraction(year) - fraction).abs() < 1e-12);
        }
    }

    #[test]
    fn monotonically_increasing() {
        let series = projection();
        assert_eq!(series.len(), 11);
        for pair in series.windows(2) {
            assert!(pair[0].1 < pair[1].1, "{pair:?}");
        }
    }

    #[test]
    fn clamps_outside_range() {
        assert_eq!(leakage_fraction(1990), leakage_fraction(1999));
        assert_eq!(leakage_fraction(2020), leakage_fraction(2009));
    }

    #[test]
    fn interpolates_between_anchors() {
        let mid = leakage_fraction(2000);
        assert!(mid > 0.06 && mid < 0.12);
        assert!((mid - 0.09).abs() < 1e-12);
    }

    #[test]
    fn fractions_are_valid_probabilities() {
        for (_, f) in projection() {
            assert!((0.0..=1.0).contains(&f));
        }
    }
}
