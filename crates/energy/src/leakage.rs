//! A HotLeakage-analog subthreshold leakage model.

use crate::Power;
use serde::{Deserialize, Serialize};

/// Simplified subthreshold leakage model for one cache line.
///
/// HotLeakage evaluates BSIM3 leakage equations per transistor; for the
/// limit study only the per-line leakage *power* enters the analysis, so
/// this model keeps the dominant exponential dependence:
///
/// ```text
/// P_leak(Vdd, Vth) = scale · Vdd · exp(−Vth / n_vt)
/// ```
///
/// `n_vt` is the subthreshold slope factor times the thermal voltage; the
/// default of 0.07 V corresponds to an effective slope (including DIBL)
/// of roughly `n ≈ 2.3` at 85 °C, chosen so that leakage ratios across
/// the paper's four nodes are consistent with its Table 1 calibration
/// (see `DESIGN.md`). `scale` anchors the absolute value: the default
/// puts the 70 nm node at 0.05 pJ/cycle per 64-byte line.
///
/// # Examples
///
/// ```
/// use leakage_energy::{SubthresholdModel, TechnologyNode};
///
/// let model = SubthresholdModel::default();
/// let p70 = model.leakage_power(TechnologyNode::N70.vdd(), TechnologyNode::N70.vth());
/// let p180 = model.leakage_power(TechnologyNode::N180.vdd(), TechnologyNode::N180.vth());
/// assert!(p70 > 5.0 * p180, "newer nodes leak far more");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubthresholdModel {
    /// Absolute scale in pJ/cycle per volt of Vdd.
    pub scale: f64,
    /// Effective `n · vT` in volts.
    pub n_vt: f64,
}

/// Anchor: active leakage per line at the 70 nm node, pJ/cycle.
const ANCHOR_70NM_POWER: f64 = 0.05;

impl Default for SubthresholdModel {
    fn default() -> Self {
        let n_vt = 0.07;
        // scale · 0.9 · exp(−0.1902 / n_vt) = ANCHOR_70NM_POWER
        let scale = ANCHOR_70NM_POWER / (0.9 * (-0.1902f64 / n_vt).exp());
        SubthresholdModel { scale, n_vt }
    }
}

impl SubthresholdModel {
    /// Creates a model with explicit scale and slope parameters.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not strictly positive.
    pub fn new(scale: f64, n_vt: f64) -> Self {
        assert!(scale > 0.0 && n_vt > 0.0, "parameters must be positive");
        SubthresholdModel { scale, n_vt }
    }

    /// Leakage power of one line at the given supply and threshold
    /// voltages, in pJ/cycle.
    pub fn leakage_power(&self, vdd: f64, vth: f64) -> Power {
        self.scale * vdd * (-vth / self.n_vt).exp()
    }

    /// Leakage power at a reduced (drowsy) supply voltage, modeling the
    /// first-order effect: leakage scales with the supply and the
    /// threshold rises slightly from the body effect (`dibl_factor`
    /// volts of extra Vth per volt of Vdd reduction).
    pub fn drowsy_leakage_power(
        &self,
        vdd: f64,
        vdd_low: f64,
        vth: f64,
        dibl_factor: f64,
    ) -> Power {
        let delta = (vdd - vdd_low).max(0.0);
        self.leakage_power(vdd_low, vth + dibl_factor * delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TechnologyNode;

    #[test]
    fn anchored_at_70nm() {
        let m = SubthresholdModel::default();
        let p = m.leakage_power(0.9, 0.1902);
        assert!((p - ANCHOR_70NM_POWER).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_vth() {
        let m = SubthresholdModel::default();
        assert!(m.leakage_power(1.0, 0.2) > m.leakage_power(1.0, 0.3));
    }

    #[test]
    fn monotone_in_vdd() {
        let m = SubthresholdModel::default();
        assert!(m.leakage_power(1.2, 0.25) > m.leakage_power(1.0, 0.25));
    }

    #[test]
    fn node_ordering_matches_technology_trend() {
        let m = SubthresholdModel::default();
        let p: Vec<f64> = TechnologyNode::ALL
            .iter()
            .map(|n| m.leakage_power(n.vdd(), n.vth()))
            .collect();
        for pair in p.windows(2) {
            assert!(pair[0] > pair[1], "newer nodes leak more: {p:?}");
        }
    }

    #[test]
    fn drowsy_voltage_cuts_leakage() {
        let m = SubthresholdModel::default();
        let full = m.leakage_power(0.9, 0.1902);
        let drowsy = m.drowsy_leakage_power(0.9, 0.3, 0.1902, 0.15);
        assert!(drowsy < full / 2.0);
        // Zero reduction is the identity.
        let same = m.drowsy_leakage_power(0.9, 0.9, 0.1902, 0.15);
        assert!((same - full).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_parameters() {
        let _ = SubthresholdModel::new(0.0, 0.07);
    }
}
