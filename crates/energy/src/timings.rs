//! Mode-transition timings (the paper's Fig. 4 durations).

use serde::{Deserialize, Serialize};

/// How much leakage power is charged while the supply voltage ramps
/// between two levels.
///
/// The paper's diagrams (Fig. 4) show a linear voltage ramp; the energy
/// charged during the ramp depends on how the power is integrated. The
/// default trapezoidal rule charges the mean of the endpoint powers; the
/// other variants bound it from above and below and exist for the
/// transition-model ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TransitionModel {
    /// Mean of source and destination power over the ramp (default).
    #[default]
    Trapezoidal,
    /// The whole ramp is charged at the *higher* of the two powers
    /// (pessimistic bound).
    HighEndpoint,
    /// The whole ramp is charged at the *lower* of the two powers
    /// (optimistic bound).
    LowEndpoint,
}

impl TransitionModel {
    /// Power charged during a ramp between power levels `from` and `to`.
    pub fn ramp_power(self, from: f64, to: f64) -> f64 {
        match self {
            TransitionModel::Trapezoidal => 0.5 * (from + to),
            TransitionModel::HighEndpoint => from.max(to),
            TransitionModel::LowEndpoint => from.min(to),
        }
    }
}

/// The fixed durations of the sleep and drowsy mode transitions, in
/// cycles, following the paper's Fig. 4:
///
/// * `s1` — high → off ramp entering sleep,
/// * `s3` — off → high ramp leaving sleep,
/// * `s4` — extra wait for the L2 refetch (`D − s3` for L2 latency `D`),
/// * `d1` — high → low ramp entering drowsy,
/// * `d3` — low → high wakeup leaving drowsy.
///
/// (`s2` and `d2` are the variable rest portions of an interval and are
/// derived from the interval length.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModeTimings {
    /// Cycles to ramp from full Vdd to gated-off.
    pub s1: u64,
    /// Cycles to ramp from gated-off back to full Vdd.
    pub s3: u64,
    /// Residual refetch latency after the wakeup ramp (`D − s3`).
    pub s4: u64,
    /// Cycles to ramp from full Vdd down to the drowsy voltage.
    pub d1: u64,
    /// Cycles to wake from the drowsy voltage back to full Vdd.
    pub d3: u64,
}

/// Errors from validating [`ModeTimings`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingError {
    /// Lemma 1 requires the drowsy entry ramp to be faster than the sleep
    /// entry ramp (`d1 < s1`).
    DrowsyEntrySlower,
    /// Lemma 1 requires the drowsy wakeup to be faster than the sleep
    /// wakeup (`d3 < s3` — smaller voltage swing, less charging).
    DrowsyExitSlower,
    /// Ramps cannot take zero time.
    ZeroDuration,
}

impl std::fmt::Display for TimingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimingError::DrowsyEntrySlower => {
                write!(f, "drowsy entry (d1) must be faster than sleep entry (s1)")
            }
            TimingError::DrowsyExitSlower => write!(
                f,
                "drowsy wakeup (d3) must not be slower than sleep wakeup (s3)"
            ),
            TimingError::ZeroDuration => write!(f, "transition durations must be nonzero"),
        }
    }
}

impl std::error::Error for TimingError {}

impl ModeTimings {
    /// The paper's durations (§4.2, citing Li et al. DATE 2004):
    /// `s1 = 30`, `s3 = d1 = d3 = 3`, `s4 = D − s3 = 4` with the 7-cycle
    /// L2 of the studied configuration.
    pub const fn paper_defaults() -> Self {
        ModeTimings {
            s1: 30,
            s3: 3,
            s4: 4,
            d1: 3,
            d3: 3,
        }
    }

    /// Builds timings for a different L2 (refetch) latency, keeping the
    /// paper's ramp durations. `s4` becomes `l2_latency − s3`, saturating
    /// at zero if the L2 responds faster than the wakeup ramp.
    pub const fn with_l2_latency(l2_latency: u64) -> Self {
        let base = ModeTimings::paper_defaults();
        ModeTimings {
            s4: l2_latency.saturating_sub(base.s3),
            ..base
        }
    }

    /// Validates Lemma 1's duration ordering.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint. `d3 == s3` is accepted (the
    /// paper itself uses `d3 = s3 = 3`); the lemma's conclusion `a < b`
    /// still holds because the refetch cost keeps the sleep curve above
    /// the drowsy curve at small intervals.
    pub fn validate(&self) -> Result<(), TimingError> {
        if self.s1 == 0 || self.s3 == 0 || self.d1 == 0 || self.d3 == 0 {
            return Err(TimingError::ZeroDuration);
        }
        if self.d1 >= self.s1 {
            return Err(TimingError::DrowsyEntrySlower);
        }
        if self.d3 > self.s3 {
            return Err(TimingError::DrowsyExitSlower);
        }
        Ok(())
    }

    /// Total sleep-mode overhead duration `s1 + s3 + s4`: the shortest
    /// interval that can physically hold a sleep transition.
    pub const fn sleep_overhead(&self) -> u64 {
        self.s1 + self.s3 + self.s4
    }

    /// Total drowsy-mode overhead duration `d1 + d3`. This *is* the
    /// active–drowsy inflection point `a` (paper Definition 3).
    pub const fn drowsy_overhead(&self) -> u64 {
        self.d1 + self.d3
    }
}

impl Default for ModeTimings {
    fn default() -> Self {
        ModeTimings::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_4_2() {
        let t = ModeTimings::paper_defaults();
        assert_eq!((t.s1, t.s3, t.s4, t.d1, t.d3), (30, 3, 4, 3, 3));
        assert_eq!(t.drowsy_overhead(), 6); // Table 1's active-drowsy point
        assert_eq!(t.sleep_overhead(), 37);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn l2_latency_controls_s4() {
        assert_eq!(ModeTimings::with_l2_latency(7).s4, 4);
        assert_eq!(ModeTimings::with_l2_latency(20).s4, 17);
        assert_eq!(ModeTimings::with_l2_latency(2).s4, 0, "saturates");
    }

    #[test]
    fn validation_catches_lemma1_violations() {
        let mut t = ModeTimings::paper_defaults();
        t.d1 = 31;
        assert_eq!(t.validate(), Err(TimingError::DrowsyEntrySlower));

        let mut t = ModeTimings::paper_defaults();
        t.d3 = 5;
        assert_eq!(t.validate(), Err(TimingError::DrowsyExitSlower));

        let mut t = ModeTimings::paper_defaults();
        t.s1 = 0;
        assert_eq!(t.validate(), Err(TimingError::ZeroDuration));
    }

    #[test]
    fn transition_models_order() {
        let (lo, hi) = (0.2, 1.0);
        let trap = TransitionModel::Trapezoidal.ramp_power(hi, lo);
        assert!((trap - 0.6).abs() < 1e-12);
        assert_eq!(TransitionModel::HighEndpoint.ramp_power(hi, lo), 1.0);
        assert_eq!(TransitionModel::LowEndpoint.ramp_power(lo, hi), 0.2);
        assert!(TransitionModel::LowEndpoint.ramp_power(hi, lo) <= trap);
        assert!(trap <= TransitionModel::HighEndpoint.ramp_power(hi, lo));
    }

    #[test]
    fn default_transition_model_is_trapezoidal() {
        assert_eq!(TransitionModel::default(), TransitionModel::Trapezoidal);
    }

    #[test]
    fn error_display() {
        assert!(TimingError::DrowsyEntrySlower.to_string().contains("d1"));
    }
}
