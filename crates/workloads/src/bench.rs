//! The six SPEC2000 benchmark analogs.
//!
//! Each constructor assembles a [`Spec`] whose phase structure, code
//! footprint and data patterns mimic the qualitative cache behaviour of
//! its namesake. Constants were calibrated against the paper's
//! aggregate interval statistics (see `EXPERIMENTS.md`); they are not
//! meant to replicate instruction-level behaviour of the real programs.

use crate::{CodeTier, Phase, Spec, StreamSpec};
use crate::spec::SpecWorkload;
use leakage_trace::{TraceSink, TraceSource};

const KB: u64 = 1024;

/// Version of the synthetic workload generator.
///
/// Any change that alters the trace a benchmark emits for a given
/// `(name, Scale)` — spec constants, the engine's interleaving, the
/// RNG — MUST bump this constant. Profile caches (the experiment
/// layer's `ProfileStore`) mix it into their keys, so a bump
/// invalidates every memoized profile instead of silently serving
/// results from the old generator.
pub const GENERATOR_VERSION: u32 = 1;

/// Simulation length presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[derive(Default)]
pub enum Scale {
    /// ~200K cycles: unit-test sized.
    Test,
    /// ~2M cycles: quick sanity runs.
    Small,
    /// ~12M cycles: the default for regenerating the paper's numbers.
    #[default]
    Paper,
    /// An explicit cycle budget.
    Custom(u64),
}

impl Scale {
    /// The cycle budget of this scale.
    pub fn cycles(self) -> u64 {
        match self {
            Scale::Test => 200_000,
            Scale::Small => 2_000_000,
            Scale::Paper => 12_000_000,
            Scale::Custom(cycles) => cycles,
        }
    }

    /// Parses a scale argument as the `repro` CLI and the analysis
    /// server accept it: a preset name (`test` | `small` | `paper`) or
    /// a raw cycle count. `None` for anything else.
    pub fn parse_arg(arg: &str) -> Option<Scale> {
        match arg {
            "test" => Some(Scale::Test),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            number => number.parse::<u64>().ok().map(Scale::Custom),
        }
    }
}


/// A runnable benchmark analog.
///
/// # Examples
///
/// ```
/// use leakage_trace::{TraceSource, VecTrace};
/// use leakage_workloads::{gzip, Scale};
///
/// let mut workload = gzip(Scale::Test);
/// let mut trace = VecTrace::new();
/// workload.run(&mut trace);
/// assert!(trace.len() > 100_000);
/// ```
#[derive(Debug, Clone)]
pub struct Benchmark {
    inner: Inner,
}

/// The two workload families behind the [`Benchmark`] facade: the
/// declarative synthetic generators and the executed `isa:*` programs.
#[derive(Debug, Clone)]
enum Inner {
    Spec(SpecWorkload),
    Isa(crate::isa::IsaWorkload),
}

impl Benchmark {
    fn new(spec: Spec, scale: Scale) -> Self {
        Benchmark {
            inner: Inner::Spec(SpecWorkload::new(spec, scale.cycles())),
        }
    }

    /// Builds a runnable workload from a user-defined [`Spec`] — the
    /// same machinery the six shipped analogs use (see the
    /// `custom_workload` example).
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`Spec::validate`].
    pub fn from_spec(spec: Spec, scale: Scale) -> Self {
        Benchmark::new(spec, scale)
    }

    /// The benchmark's name (e.g. `"gcc"` or `"isa:matmul"`).
    pub fn name(&self) -> &'static str {
        match &self.inner {
            Inner::Spec(spec) => spec.name(),
            Inner::Isa(isa) => isa.name(),
        }
    }

    /// The underlying declarative spec, for synthetic benchmarks.
    /// Executed `isa:*` benchmarks are programs, not specs.
    ///
    /// # Panics
    ///
    /// Panics for an `isa:*` benchmark.
    pub fn spec(&self) -> &Spec {
        match &self.inner {
            Inner::Spec(spec) => spec.spec(),
            Inner::Isa(isa) => {
                panic!("{} is an executed program, not a declarative spec", isa.name())
            }
        }
    }
}

impl TraceSource for Benchmark {
    fn run(&mut self, sink: &mut dyn TraceSink) {
        match &mut self.inner {
            Inner::Spec(spec) => spec.run(sink),
            Inner::Isa(isa) => isa.run(sink),
        }
    }
}

/// The suite's benchmark names in the paper's figure order.
pub const SUITE_NAMES: [&str; 6] = ["ammp", "applu", "gcc", "gzip", "mesa", "vortex"];

/// The full six-benchmark suite in the paper's figure order:
/// `ammp`, `applu`, `gcc`, `gzip`, `mesa`, `vortex`.
pub fn suite(scale: Scale) -> Vec<Benchmark> {
    vec![
        ammp(scale),
        applu(scale),
        gcc(scale),
        gzip(scale),
        mesa(scale),
        vortex(scale),
    ]
}

/// The executed-program suite: every `isa:*` benchmark at `scale`, in
/// [`crate::ISA_SUITE_NAMES`] order.
pub fn isa_suite(scale: Scale) -> Vec<Benchmark> {
    crate::ISA_SUITE_NAMES
        .iter()
        .map(|name| by_name(name, scale).expect("library program resolves"))
        .collect()
}

/// Constructs a suite benchmark by name — a synthetic analog from
/// [`SUITE_NAMES`] or an executed program from
/// [`crate::ISA_SUITE_NAMES`] — or `None` for anything else. This is
/// the lookup profile caches use to re-simulate a missing entry.
pub fn by_name(name: &str, scale: Scale) -> Option<Benchmark> {
    match name {
        "ammp" => Some(ammp(scale)),
        "applu" => Some(applu(scale)),
        "gcc" => Some(gcc(scale)),
        "gzip" => Some(gzip(scale)),
        "mesa" => Some(mesa(scale)),
        "vortex" => Some(vortex(scale)),
        _ => crate::isa::IsaWorkload::by_name(name, scale.cycles())
            .map(|isa| Benchmark { inner: Inner::Isa(isa) }),
    }
}

// Address-space layout helpers: code regions live in low memory, one
// megabyte apart; data arrays high, sixteen megabytes apart.
const fn code(region: u64) -> u64 {
    0x0100_0000 + region * 0x10_0000
}

const fn data(region: u64) -> u64 {
    0x4000_0000 + region * 0x100_0000
}

/// `ammp` analog: molecular dynamics. Sequential coordinate sweeps mixed
/// with an unprefetchable neighbour-list gather, plus a quiet
/// integration phase over a small working set.
pub fn ammp(scale: Scale) -> Benchmark {
    let spec = Spec {
        name: "ammp",
        seed: 0xA307,
        phases: vec![
            // Force computation: streaming + gather.
            Phase {
                duration: 260_000,
                code: vec![
                    CodeTier { base: code(0), bytes: 3 * KB, every: 1 },
                    CodeTier { base: code(1), bytes: 6 * KB, every: 10 },
                    CodeTier { base: code(2), bytes: 10 * KB, every: 56 },
                    CodeTier { base: code(3), bytes: 12 * KB, every: 160 },
                    CodeTier { base: code(7), bytes: 10 * KB, every: 300 },
                    CodeTier { base: code(8), bytes: 8 * KB, every: 260 },
                ],
                streams: vec![
                    (
                        StreamSpec::HotCold {
                            base: data(2),
                            hot_bytes: KB,
                            cold_bytes: 3 * KB,
                            p_hot: 0.7,
                        },
                        2.8,
                    ),
                    (
                        StreamSpec::Seq {
                            base: data(0),
                            bytes: 512 * KB,
                            stride: 8,
                            store_frac: 0.05,
                        },
                        0.55,
                    ),
                    (
                        StreamSpec::Chase {
                            base: data(1),
                            nodes: 8192,
                            node_bytes: 96,
                            reads_per_node: 4,
                        },
                        0.12,
                    ),
                ],
                data_density: 0.36,
                branchiness: 0.10,
                segment_shuffle: 12,
            },
            // Velocity/position integration: quiet, tiny working set.
            Phase {
                duration: 340_000,
                code: vec![
                    CodeTier { base: code(4), bytes: 2 * KB, every: 1 },
                    CodeTier { base: code(5), bytes: 4 * KB, every: 12 },
                    CodeTier { base: code(6), bytes: 8 * KB, every: 80 },
                ],
                streams: vec![(
                    StreamSpec::HotCold {
                        base: data(3),
                        hot_bytes: KB,
                        cold_bytes: 3 * KB,
                        p_hot: 0.7,
                    },
                    1.0,
                )],
                data_density: 0.12,
                branchiness: 0.08,
                segment_shuffle: 12,
            },
        ],
    };
    Benchmark::new(spec, scale)
}

/// `applu` analog: an implicit CFD solver. Highly regular — sequential
/// grid sweeps plus strided plane walks, the stride prefetcher's best
/// case — alternating with a quieter triangular-solve phase.
pub fn applu(scale: Scale) -> Benchmark {
    let spec = Spec {
        name: "applu",
        seed: 0xAB12,
        phases: vec![
            Phase {
                duration: 250_000,
                code: vec![
                    CodeTier { base: code(0), bytes: 2 * KB, every: 1 },
                    CodeTier { base: code(1), bytes: 5 * KB, every: 12 },
                    CodeTier { base: code(2), bytes: 9 * KB, every: 64 },
                    CodeTier { base: code(3), bytes: 10 * KB, every: 170 },
                    CodeTier { base: code(7), bytes: 8 * KB, every: 320 },
                    CodeTier { base: code(8), bytes: 8 * KB, every: 280 },
                ],
                streams: vec![
                    (
                        StreamSpec::HotCold {
                            base: data(3),
                            hot_bytes: KB,
                            cold_bytes: 3 * KB,
                            p_hot: 0.75,
                        },
                        2.4,
                    ),
                    (
                        StreamSpec::Seq {
                            base: data(0),
                            bytes: 768 * KB,
                            stride: 8,
                            store_frac: 0.1,
                        },
                        0.32,
                    ),
                    (
                        StreamSpec::Seq {
                            base: data(1),
                            bytes: 768 * KB,
                            stride: 8,
                            store_frac: 0.3,
                        },
                        0.32,
                    ),
                    (
                        StreamSpec::Strided {
                            base: data(2),
                            bytes: 768 * KB,
                            stride: 384,
                        },
                        0.1,
                    ),
                ],
                data_density: 0.35,
                branchiness: 0.06,
                segment_shuffle: 12,
            },
            // Lower/upper triangular solve: quiet.
            Phase {
                duration: 360_000,
                code: vec![
                    CodeTier { base: code(4), bytes: 2 * KB + 512, every: 1 },
                    CodeTier { base: code(5), bytes: 5 * KB, every: 16 },
                    CodeTier { base: code(6), bytes: 8 * KB, every: 90 },
                ],
                streams: vec![(
                    StreamSpec::HotCold {
                        base: data(4),
                        hot_bytes: KB,
                        cold_bytes: 3 * KB,
                        p_hot: 0.8,
                    },
                    1.0,
                )],
                data_density: 0.12,
                branchiness: 0.05,
                segment_shuffle: 12,
            },
        ],
    };
    Benchmark::new(spec, scale)
}

/// `gcc` analog: the compiler. Big, branchy code footprint (the
/// instruction cache's hardest case here) and pointer-heavy,
/// unprefetchable data.
pub fn gcc(scale: Scale) -> Benchmark {
    let spec = Spec {
        name: "gcc",
        seed: 0x6CC1,
        phases: vec![
            // Parse: pointer soup.
            Phase {
                duration: 200_000,
                code: vec![
                    CodeTier { base: code(0), bytes: 4 * KB, every: 1 },
                    CodeTier { base: code(1), bytes: 10 * KB, every: 8 },
                    CodeTier { base: code(2), bytes: 12 * KB, every: 48 },
                    CodeTier { base: code(3), bytes: 14 * KB, every: 200 },
                ],
                streams: vec![
                    (
                        StreamSpec::HotCold {
                            base: data(1),
                            hot_bytes: KB,
                            cold_bytes: 3 * KB,
                            p_hot: 0.6,
                        },
                        2.1,
                    ),
                    (
                        StreamSpec::Chase {
                            base: data(0),
                            nodes: 16384,
                            node_bytes: 64,
                            reads_per_node: 4,
                        },
                        0.3,
                    ),
                    (
                        StreamSpec::Seq {
                            base: data(2),
                            bytes: 128 * KB,
                            stride: 8,
                            store_frac: 0.2,
                        },
                        0.45,
                    ),
                ],
                data_density: 0.30,
                branchiness: 0.14,
                segment_shuffle: 12,
            },
            // Optimize: IR walking.
            Phase {
                duration: 210_000,
                code: vec![
                    CodeTier { base: code(4), bytes: 5 * KB, every: 1 },
                    CodeTier { base: code(5), bytes: 12 * KB, every: 10 },
                    CodeTier { base: code(6), bytes: 10 * KB, every: 360 },
                ],
                streams: vec![
                    (
                        StreamSpec::HotCold {
                            base: data(4),
                            hot_bytes: KB,
                            cold_bytes: 3 * KB,
                            p_hot: 0.7,
                        },
                        2.2,
                    ),
                    (
                        StreamSpec::Chase {
                            base: data(3),
                            nodes: 16384,
                            node_bytes: 128,
                            reads_per_node: 4,
                        },
                        0.28,
                    ),
                ],
                data_density: 0.28,
                branchiness: 0.13,
                segment_shuffle: 12,
            },
            // Emit: quiet.
            Phase {
                duration: 270_000,
                code: vec![
                    CodeTier { base: code(7), bytes: 3 * KB, every: 1 },
                    CodeTier { base: code(8), bytes: 6 * KB, every: 14 },
                ],
                streams: vec![(
                    StreamSpec::HotCold {
                        base: data(5),
                        hot_bytes: KB,
                        cold_bytes: 3 * KB,
                        p_hot: 0.7,
                    },
                    1.0,
                )],
                data_density: 0.13,
                branchiness: 0.10,
                segment_shuffle: 12,
            },
        ],
    };
    Benchmark::new(spec, scale)
}

/// `gzip` analog: compression. A tiny hot loop (most of the instruction
/// cache sleeps), a sliding window swept sequentially, and a quiet
/// Huffman-emit phase.
pub fn gzip(scale: Scale) -> Benchmark {
    let spec = Spec {
        name: "gzip",
        seed: 0x6219,
        phases: vec![
            Phase {
                duration: 280_000,
                code: vec![
                    CodeTier { base: code(0), bytes: 2 * KB, every: 1 },
                    CodeTier { base: code(1), bytes: 5 * KB, every: 12 },
                    CodeTier { base: code(2), bytes: 8 * KB, every: 70 },
                    CodeTier { base: code(3), bytes: 10 * KB, every: 190 },
                    CodeTier { base: code(7), bytes: 8 * KB, every: 340 },
                    CodeTier { base: code(8), bytes: 10 * KB, every: 300 },
                ],
                streams: vec![
                    (
                        StreamSpec::HotCold {
                            base: data(1),
                            hot_bytes: KB,
                            cold_bytes: 3 * KB,
                            p_hot: 0.7,
                        },
                        2.9,
                    ),
                    (
                        StreamSpec::Seq {
                            base: data(0),
                            bytes: 512 * KB,
                            stride: 8,
                            store_frac: 0.05,
                        },
                        0.6,
                    ),
                ],
                data_density: 0.40,
                branchiness: 0.09,
                segment_shuffle: 12,
            },
            // Huffman emit: quiet phase, small tables.
            Phase {
                duration: 560_000,
                code: vec![
                    CodeTier { base: code(4), bytes: 2 * KB, every: 1 },
                    CodeTier { base: code(5), bytes: 4 * KB, every: 10 },
                    CodeTier { base: code(6), bytes: 6 * KB, every: 70 },
                ],
                streams: vec![(
                    StreamSpec::HotCold {
                        base: data(2),
                        hot_bytes: KB,
                        cold_bytes: 3 * KB,
                        p_hot: 0.8,
                    },
                    1.0,
                )],
                data_density: 0.10,
                branchiness: 0.07,
                segment_shuffle: 12,
            },
        ],
    };
    Benchmark::new(spec, scale)
}

/// `mesa` analog: software 3D rendering. Streaming vertex sweeps and
/// strided texture fetches, with a quieter per-frame setup phase.
pub fn mesa(scale: Scale) -> Benchmark {
    let spec = Spec {
        name: "mesa",
        seed: 0x3E5A,
        phases: vec![
            Phase {
                duration: 300_000,
                code: vec![
                    CodeTier { base: code(0), bytes: 3 * KB, every: 1 },
                    CodeTier { base: code(1), bytes: 6 * KB, every: 14 },
                    CodeTier { base: code(2), bytes: 10 * KB, every: 72 },
                    CodeTier { base: code(3), bytes: 12 * KB, every: 210 },
                    CodeTier { base: code(7), bytes: 8 * KB, every: 330 },
                    CodeTier { base: code(8), bytes: 8 * KB, every: 290 },
                ],
                streams: vec![
                    (
                        StreamSpec::HotCold {
                            base: data(2),
                            hot_bytes: KB,
                            cold_bytes: 3 * KB,
                            p_hot: 0.8,
                        },
                        2.5,
                    ),
                    (
                        StreamSpec::Seq {
                            base: data(0),
                            bytes: 1024 * KB,
                            stride: 8,
                            store_frac: 0.1,
                        },
                        0.6,
                    ),
                    (
                        StreamSpec::Strided {
                            base: data(1),
                            bytes: 512 * KB,
                            stride: 272,
                        },
                        0.08,
                    ),
                ],
                data_density: 0.42,
                branchiness: 0.08,
                segment_shuffle: 12,
            },
            // Per-frame state setup: quiet.
            Phase {
                duration: 330_000,
                code: vec![
                    CodeTier { base: code(4), bytes: 2 * KB + 512, every: 1 },
                    CodeTier { base: code(5), bytes: 5 * KB, every: 12 },
                    CodeTier { base: code(6), bytes: 5 * KB, every: 85 },
                ],
                streams: vec![(
                    StreamSpec::HotCold {
                        base: data(3),
                        hot_bytes: KB,
                        cold_bytes: 3 * KB,
                        p_hot: 0.8,
                    },
                    1.0,
                )],
                data_density: 0.11,
                branchiness: 0.05,
                segment_shuffle: 12,
            },
        ],
    };
    Benchmark::new(spec, scale)
}

/// `vortex` analog: an object-oriented database. Clustered record
/// traversals (partially next-line friendly inside a record, random
/// between records) over a large heap, plus a quiet commit phase.
pub fn vortex(scale: Scale) -> Benchmark {
    let spec = Spec {
        name: "vortex",
        seed: 0x1109,
        phases: vec![
            Phase {
                duration: 220_000,
                code: vec![
                    CodeTier { base: code(0), bytes: 4 * KB, every: 1 },
                    CodeTier { base: code(1), bytes: 9 * KB, every: 9 },
                    CodeTier { base: code(2), bytes: 11 * KB, every: 56 },
                    CodeTier { base: code(3), bytes: 12 * KB, every: 220 },
                    CodeTier { base: code(7), bytes: 8 * KB, every: 320 },
                ],
                streams: vec![
                    (
                        StreamSpec::HotCold {
                            base: data(1),
                            hot_bytes: KB,
                            cold_bytes: 3 * KB,
                            p_hot: 0.6,
                        },
                        2.2,
                    ),
                    (
                        StreamSpec::Chase {
                            base: data(0),
                            nodes: 4096,
                            node_bytes: 256,
                            reads_per_node: 24,
                        },
                        0.7,
                    ),
                    (
                        StreamSpec::Seq {
                            base: data(2),
                            bytes: 128 * KB,
                            stride: 8,
                            store_frac: 0.7,
                        },
                        0.15,
                    ),
                ],
                data_density: 0.33,
                branchiness: 0.12,
                segment_shuffle: 12,
            },
            // Transaction commit: quiet.
            Phase {
                duration: 310_000,
                code: vec![
                    CodeTier { base: code(4), bytes: 4 * KB, every: 1 },
                    CodeTier { base: code(5), bytes: 8 * KB, every: 11 },
                    CodeTier { base: code(6), bytes: 6 * KB, every: 78 },
                ],
                streams: vec![(
                    StreamSpec::HotCold {
                        base: data(3),
                        hot_bytes: KB,
                        cold_bytes: 3 * KB,
                        p_hot: 0.7,
                    },
                    1.0,
                )],
                data_density: 0.13,
                branchiness: 0.09,
                segment_shuffle: 12,
            },
        ],
    };
    Benchmark::new(spec, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_trace::VecTrace;

    #[test]
    fn suite_has_six_named_benchmarks() {
        let names: Vec<&str> = suite(Scale::Test).iter().map(|b| b.name()).collect();
        assert_eq!(names, SUITE_NAMES);
    }

    #[test]
    fn by_name_round_trips_the_suite() {
        for name in SUITE_NAMES {
            let bench = by_name(name, Scale::Test).expect(name);
            assert_eq!(bench.name(), name);
        }
        assert!(by_name("perlbmk", Scale::Test).is_none());
    }

    #[test]
    fn benchmarks_cross_threads() {
        // The parallel profiling pipeline moves benchmarks into worker
        // threads; this fails to compile if Benchmark loses Send.
        fn assert_send<T: Send>() {}
        assert_send::<Benchmark>();
        assert_send::<Scale>();
    }

    #[test]
    fn all_specs_validate() {
        for bench in suite(Scale::Test) {
            bench.spec().validate().unwrap_or_else(|_| panic!("{}", bench.name()));
        }
    }

    #[test]
    fn scales_order() {
        assert!(Scale::Test.cycles() < Scale::Small.cycles());
        assert!(Scale::Small.cycles() < Scale::Paper.cycles());
        assert_eq!(Scale::Custom(7).cycles(), 7);
        assert_eq!(Scale::default().cycles(), Scale::Paper.cycles());
    }

    #[test]
    fn benchmarks_are_deterministic() {
        for make in [ammp, gcc] {
            let mut a = VecTrace::new();
            let mut b = VecTrace::new();
            make(Scale::Test).run(&mut a);
            make(Scale::Test).run(&mut b);
            assert_eq!(a.events(), b.events());
        }
    }

    #[test]
    fn scale_arguments_parse() {
        assert_eq!(Scale::parse_arg("test"), Some(Scale::Test));
        assert_eq!(Scale::parse_arg("small"), Some(Scale::Small));
        assert_eq!(Scale::parse_arg("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse_arg("123456"), Some(Scale::Custom(123_456)));
        assert_eq!(Scale::parse_arg("huge"), None);
        assert_eq!(Scale::parse_arg(""), None);
    }

    #[test]
    fn benchmarks_differ_from_each_other() {
        let mut a = VecTrace::new();
        let mut b = VecTrace::new();
        gzip(Scale::Test).run(&mut a);
        mesa(Scale::Test).run(&mut b);
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn traces_reach_their_cycle_budget() {
        for mut bench in suite(Scale::Test) {
            let name = bench.name();
            let mut trace = VecTrace::new();
            bench.run(&mut trace);
            // An empty trace means the generator emitted nothing at
            // all — report that explicitly instead of unwrapping.
            let Some(last) = trace.stats().last_cycle else {
                panic!("{name}: benchmark produced an empty trace");
            };
            let last = last.raw();
            let budget = Scale::Test.cycles();
            assert!(
                last >= budget - 10 && last < budget + 2_000,
                "{name}: last cycle {last} vs budget {budget}"
            );
        }
    }

    #[test]
    fn data_density_is_roughly_as_specified() {
        let mut trace = VecTrace::new();
        applu(Scale::Test).run(&mut trace);
        let stats = trace.stats();
        let density = stats.data_accesses() as f64 / stats.fetches as f64;
        // applu mixes 0.45 and 0.15 phases; the average must sit between.
        assert!(density > 0.15 && density < 0.45, "density {density}");
    }
}
