//! Deterministic SPEC2000-analog synthetic workloads.
//!
//! The paper drives its limit study with six SPEC2000 benchmarks
//! (`ammp`, `applu`, `gcc`, `gzip`, `mesa`, `vortex`) executed on a
//! SimpleScalar/Alpha model over SimPoint regions. Neither the Alpha
//! binaries nor the SPEC inputs are available offline, so this crate
//! synthesizes *workload analogs*: deterministic generators that emit a
//! timed instruction-fetch + data-access stream whose cache-level
//! behaviour — per-frame interval-length distributions, phase structure,
//! code footprints, and next-line/stride prefetchability — lands in the
//! regimes the paper reports (see `DESIGN.md` for the substitution
//! argument and `EXPERIMENTS.md` for measured-vs-paper numbers).
//!
//! Each analog is built from the same vocabulary real programs are:
//!
//! * **code tiers** — a hot loop nest fetched continuously, warmer/
//!   colder helper regions entered every N supersteps (producing short,
//!   medium and long instruction-cache reuse intervals),
//! * **data streams** — sequential sweeps (next-line friendly), strided
//!   plane walks (stride-prefetchable), pointer chases and hot/cold
//!   record mixes (unprefetchable), and
//! * **phases** — SimPoint-style alternation of large-scale program
//!   behaviours, which creates the very long idle intervals that let
//!   gated-Vdd shine at coarse technology nodes.
//!
//! # Examples
//!
//! ```
//! use leakage_trace::{TraceSink, TraceSource, TraceStats};
//! use leakage_workloads::{suite, Scale};
//!
//! struct Counter(TraceStats);
//! impl TraceSink for Counter {
//!     fn accept(&mut self, a: leakage_trace::MemoryAccess) {
//!         self.0.observe(&a);
//!     }
//! }
//!
//! let mut gzip = suite(Scale::Test).remove(3); // ammp, applu, gcc, gzip, ...
//! assert_eq!(gzip.name(), "gzip");
//! let mut counter = Counter(TraceStats::new());
//! gzip.run(&mut counter);
//! assert!(counter.0.fetches > 0);
//! assert!(counter.0.data_accesses() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bench;
mod engine;
mod isa;
pub mod kernels;
mod rng;
mod spec;
mod streams;

pub use bench::{
    ammp, applu, by_name, gcc, gzip, isa_suite, mesa, suite, vortex, Benchmark, Scale,
    GENERATOR_VERSION, SUITE_NAMES,
};
pub use isa::{generator_version, is_known_benchmark, ISA_GENERATOR_VERSION, ISA_SUITE_NAMES};
pub use engine::Engine;
pub use rng::SplitMix64;
pub use spec::{CodeTier, Phase, Spec};
pub use streams::{DataOp, DataStream, StreamSpec};
