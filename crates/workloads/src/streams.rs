//! Data access pattern generators.

use crate::SplitMix64;

/// One synthesized data operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataOp {
    /// The static instruction issuing the access (one per stream, so the
    /// stride prefetcher can train per-PC).
    pub pc: u64,
    /// Byte address accessed.
    pub addr: u64,
    /// Store rather than load.
    pub store: bool,
}

/// Declarative description of a data access pattern.
///
/// The four shapes cover the behaviours the paper's prefetchability
/// analysis distinguishes: sequential sweeps are next-line prefetchable,
/// strided walks are stride-prefetchable, and pointer chases and hot/cold
/// record accesses are neither.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamSpec {
    /// Sequential sweep over `bytes` from `base` in `stride`-byte steps,
    /// wrapping around (each wrap is one pass over the array).
    Seq {
        /// First byte of the array.
        base: u64,
        /// Array size in bytes.
        bytes: u64,
        /// Step between consecutive accesses, in bytes.
        stride: u64,
        /// Fraction of accesses that are stores.
        store_frac: f64,
    },
    /// Regular non-unit-stride walk (multidimensional array planes);
    /// `stride` should exceed the line size to exercise the stride
    /// prefetcher.
    Strided {
        /// First byte of the array.
        base: u64,
        /// Array size in bytes.
        bytes: u64,
        /// Step between consecutive accesses, in bytes.
        stride: u64,
    },
    /// Pointer chase over `nodes` records of `node_bytes` each, visiting
    /// nodes in a full-period pseudo-random permutation and reading
    /// `reads_per_node` consecutive words inside each record.
    Chase {
        /// First byte of the pool.
        base: u64,
        /// Number of records (rounded up to a power of two).
        nodes: u64,
        /// Record size in bytes.
        node_bytes: u64,
        /// Sequential 8-byte reads per visited record.
        reads_per_node: u32,
    },
    /// Skewed record accesses: with probability `p_hot` touch a random
    /// word of the hot region, otherwise of the cold region.
    HotCold {
        /// First byte of the region (hot bytes first, cold following).
        base: u64,
        /// Size of the hot region in bytes.
        hot_bytes: u64,
        /// Size of the cold region in bytes.
        cold_bytes: u64,
        /// Probability of touching the hot region.
        p_hot: f64,
    },
}

/// Runtime state of one [`StreamSpec`].
#[derive(Debug, Clone)]
pub struct DataStream {
    spec: StreamSpec,
    pc: u64,
    /// Seq/Strided: byte offset of next access. Chase: current node.
    pos: u64,
    /// Chase: reads already issued within the current node.
    node_read: u32,
    /// Chase: permutation modulus (nodes rounded to power of two).
    nodes_pow2: u64,
}

impl DataStream {
    /// Instantiates a stream; `pc` is the static instruction it issues
    /// accesses from.
    pub fn new(spec: StreamSpec, pc: u64) -> Self {
        let nodes_pow2 = match spec {
            StreamSpec::Chase { nodes, .. } => nodes.max(2).next_power_of_two(),
            _ => 0,
        };
        DataStream {
            spec,
            pc,
            pos: 0,
            node_read: 0,
            nodes_pow2,
        }
    }

    /// The static PC of this stream.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// The declarative pattern.
    pub fn spec(&self) -> &StreamSpec {
        &self.spec
    }

    /// Produces the next access of the pattern.
    pub fn next_op(&mut self, rng: &mut SplitMix64) -> DataOp {
        match self.spec {
            StreamSpec::Seq {
                base,
                bytes,
                stride,
                store_frac,
            } => {
                let addr = base + self.pos;
                self.pos += stride;
                if self.pos >= bytes {
                    self.pos = 0;
                }
                DataOp {
                    pc: self.pc,
                    addr,
                    store: rng.chance(store_frac),
                }
            }
            StreamSpec::Strided { base, bytes, stride } => {
                let addr = base + self.pos;
                self.pos += stride;
                if self.pos >= bytes {
                    // Restart the plane walk at a shifted origin so
                    // successive passes touch the interleaved columns.
                    self.pos = (self.pos - bytes + 8) % stride.max(8);
                }
                DataOp {
                    pc: self.pc,
                    addr,
                    store: false,
                }
            }
            StreamSpec::Chase {
                base,
                node_bytes,
                reads_per_node,
                ..
            } => {
                let addr = base + self.pos * node_bytes + u64::from(self.node_read) * 8;
                self.node_read += 1;
                if self.node_read >= reads_per_node.max(1) {
                    self.node_read = 0;
                    // Full-period LCG over a power-of-two node count:
                    // multiplier ≡ 1 (mod 4), odd increment.
                    self.pos = (self
                        .pos
                        .wrapping_mul(2_862_933_555_777_941_757)
                        .wrapping_add(3_037_000_493))
                        & (self.nodes_pow2 - 1);
                }
                DataOp {
                    pc: self.pc,
                    addr,
                    store: false,
                }
            }
            StreamSpec::HotCold {
                base,
                hot_bytes,
                cold_bytes,
                p_hot,
            } => {
                let (lo, span) = if rng.chance(p_hot) {
                    (base, hot_bytes)
                } else {
                    (base + hot_bytes, cold_bytes)
                };
                let addr = lo + rng.below(span / 8) * 8;
                DataOp {
                    pc: self.pc,
                    addr,
                    store: rng.chance(0.25),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SplitMix64 {
        SplitMix64::new(0xDEADBEEF)
    }

    #[test]
    fn seq_sweeps_and_wraps() {
        let mut s = DataStream::new(
            StreamSpec::Seq {
                base: 1000,
                bytes: 32,
                stride: 8,
                store_frac: 0.0,
            },
            4,
        );
        let mut r = rng();
        let addrs: Vec<u64> = (0..6).map(|_| s.next_op(&mut r).addr).collect();
        assert_eq!(addrs, vec![1000, 1008, 1016, 1024, 1000, 1008]);
    }

    #[test]
    fn strided_walk_covers_columns() {
        let mut s = DataStream::new(
            StreamSpec::Strided {
                base: 0,
                bytes: 1024,
                stride: 256,
            },
            4,
        );
        let mut r = rng();
        let addrs: Vec<u64> = (0..5).map(|_| s.next_op(&mut r).addr).collect();
        assert_eq!(&addrs[..4], &[0, 256, 512, 768]);
        // Second pass starts at a shifted column.
        assert_eq!(addrs[4], 8);
    }

    #[test]
    fn chase_visits_all_nodes() {
        let nodes = 64u64;
        let mut s = DataStream::new(
            StreamSpec::Chase {
                base: 0,
                nodes,
                node_bytes: 128,
                reads_per_node: 1,
            },
            4,
        );
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..nodes {
            let op = s.next_op(&mut r);
            seen.insert(op.addr / 128);
        }
        assert_eq!(seen.len() as u64, nodes, "LCG permutation is full-period");
    }

    #[test]
    fn chase_reads_within_node_are_sequential() {
        let mut s = DataStream::new(
            StreamSpec::Chase {
                base: 0,
                nodes: 8,
                node_bytes: 256,
                reads_per_node: 4,
            },
            4,
        );
        let mut r = rng();
        let addrs: Vec<u64> = (0..4).map(|_| s.next_op(&mut r).addr).collect();
        assert_eq!(addrs, vec![0, 8, 16, 24]);
    }

    #[test]
    fn hotcold_respects_regions() {
        let mut s = DataStream::new(
            StreamSpec::HotCold {
                base: 0,
                hot_bytes: 64,
                cold_bytes: 64 * 1024,
                p_hot: 0.9,
            },
            4,
        );
        let mut r = rng();
        let mut hot = 0;
        let n = 10_000;
        for _ in 0..n {
            let op = s.next_op(&mut r);
            assert!(op.addr < 64 + 64 * 1024);
            if op.addr < 64 {
                hot += 1;
            }
        }
        let frac = f64::from(hot) / f64::from(n);
        assert!((frac - 0.9).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    fn streams_carry_their_pc() {
        let mut s = DataStream::new(
            StreamSpec::Seq {
                base: 0,
                bytes: 64,
                stride: 8,
                store_frac: 1.0,
            },
            0x1234,
        );
        assert_eq!(s.pc(), 0x1234);
        let op = s.next_op(&mut rng());
        assert_eq!(op.pc, 0x1234);
        assert!(op.store);
    }
}
