//! Declarative workload structure and its executor.

use crate::{DataStream, Engine, SplitMix64, StreamSpec};
use leakage_trace::{TraceSink, TraceSource};

/// One tier of a phase's code: a contiguous region fetched straight
/// through, entered once every `every` supersteps.
///
/// The hot tier (`every == 1`) forms the inner loop; larger `every`
/// values synthesize progressively colder code whose instruction-cache
/// reuse intervals are correspondingly longer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeTier {
    /// First byte of the region (16-byte fetch blocks from here).
    pub base: u64,
    /// Region size in bytes.
    pub bytes: u64,
    /// Run once per this many supersteps (1 = the inner loop).
    pub every: u64,
}

impl CodeTier {
    /// Number of fetch blocks in one pass of the region.
    pub fn blocks(&self) -> u64 {
        self.bytes / 16
    }
}

/// One program phase: a code-tier schedule plus weighted data streams,
/// executed for `duration` cycles per occurrence.
#[derive(Debug, Clone)]
pub struct Phase {
    /// Cycles per occurrence of this phase.
    pub duration: u64,
    /// Code tiers; at least one must have `every == 1`.
    pub code: Vec<CodeTier>,
    /// Data streams with selection weights.
    pub streams: Vec<(StreamSpec, f64)>,
    /// Average data operations per cycle.
    pub data_density: f64,
    /// Probability per fetch block of a short forward branch (skipping
    /// 1–3 blocks), which breaks perfect next-line coverage of code.
    pub branchiness: f64,
    /// When nonzero, each pass over a code tier executes its
    /// `segment_shuffle`-block segments in a per-pass pseudo-random
    /// order, modelling function-at-a-time control flow: the first line
    /// of a segment is then frequently *not* preceded by its
    /// address-predecessor, which is what makes a real program's code
    /// intervals only partially next-line prefetchable. Zero executes
    /// each region straight through.
    pub segment_shuffle: u32,
}

/// A full workload description: named, seeded, phase-structured.
#[derive(Debug, Clone)]
pub struct Spec {
    /// Workload name (e.g. `"gzip"`).
    pub name: &'static str,
    /// RNG seed; every run with the same spec is identical.
    pub seed: u64,
    /// Phases, cycled round-robin until the cycle budget is exhausted.
    pub phases: Vec<Phase>,
}

impl Spec {
    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant: empty
    /// phase list, a phase without an `every == 1` tier, a zero
    /// duration, a tier not holding at least one block, or a
    /// non-positive stream weight.
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err(format!("workload {} has no phases", self.name));
        }
        for (i, phase) in self.phases.iter().enumerate() {
            if phase.duration == 0 {
                return Err(format!("{} phase {i}: zero duration", self.name));
            }
            if !phase.code.iter().any(|t| t.every == 1) {
                return Err(format!(
                    "{} phase {i}: needs a hot tier (every == 1)",
                    self.name
                ));
            }
            for tier in &phase.code {
                if tier.blocks() == 0 {
                    return Err(format!("{} phase {i}: tier under one block", self.name));
                }
                if tier.every == 0 {
                    return Err(format!("{} phase {i}: tier with every == 0", self.name));
                }
            }
            for (_, w) in &phase.streams {
                if *w <= 0.0 {
                    return Err(format!("{} phase {i}: non-positive weight", self.name));
                }
            }
            if phase.data_density > 0.0 && phase.streams.is_empty() {
                return Err(format!(
                    "{} phase {i}: data density without streams",
                    self.name
                ));
            }
        }
        Ok(())
    }
}

/// Persistent per-phase execution state.
#[derive(Debug)]
struct PhaseState {
    streams: Vec<DataStream>,
    cumulative_weights: Vec<f64>,
    superstep: u64,
    data_debt: f64,
    /// Reused scratch buffer for the per-pass segment order.
    segment_order: Vec<u32>,
}

/// Executes a [`Spec`] for a cycle budget, emitting into a sink.
#[derive(Debug)]
pub(crate) struct Executor {
    spec: Spec,
    target_cycles: u64,
}

impl Executor {
    pub(crate) fn new(spec: Spec, target_cycles: u64) -> Self {
        spec.validate().expect("workload spec is structurally valid");
        Executor {
            spec,
            target_cycles,
        }
    }

    pub(crate) fn run(&self, sink: &mut dyn TraceSink) {
        let mut rng = SplitMix64::new(self.spec.seed);
        let mut engine = Engine::new(sink);
        let mut pc_counter = 0xD000_0000u64;
        let mut states: Vec<PhaseState> = self
            .spec
            .phases
            .iter()
            .map(|phase| {
                let streams: Vec<DataStream> = phase
                    .streams
                    .iter()
                    .map(|(spec, _)| {
                        pc_counter += 8;
                        DataStream::new(*spec, pc_counter)
                    })
                    .collect();
                let mut acc = 0.0;
                let cumulative_weights = phase
                    .streams
                    .iter()
                    .map(|(_, w)| {
                        acc += w;
                        acc
                    })
                    .collect();
                PhaseState {
                    streams,
                    cumulative_weights,
                    superstep: 0,
                    data_debt: 0.0,
                    segment_order: Vec::new(),
                }
            })
            .collect();

        let mut phase_index = 0;
        while engine.cycle() < self.target_cycles {
            let phase = &self.spec.phases[phase_index];
            let state = &mut states[phase_index];
            let phase_end = (engine.cycle() + phase.duration).min(self.target_cycles);
            while engine.cycle() < phase_end {
                state.superstep += 1;
                for tier in &phase.code {
                    if state.superstep.is_multiple_of(tier.every) {
                        run_pass(&mut engine, tier, phase, state, &mut rng);
                        if engine.cycle() >= phase_end {
                            break;
                        }
                    }
                }
            }
            phase_index = (phase_index + 1) % self.spec.phases.len();
        }
    }
}

/// One pass over a code tier, interleaving data operations.
///
/// With `segment_shuffle == 0` the region runs straight through; with a
/// segment size, segments execute in a per-pass shuffled order.
fn run_pass(
    engine: &mut Engine<'_>,
    tier: &CodeTier,
    phase: &Phase,
    state: &mut PhaseState,
    rng: &mut SplitMix64,
) {
    let blocks = tier.blocks();
    let seg = u64::from(phase.segment_shuffle);
    if seg == 0 || blocks <= seg {
        run_segment(engine, tier, 0, blocks, phase, state, rng);
        return;
    }
    let num_segments = blocks.div_ceil(seg);
    state.segment_order.clear();
    state.segment_order.extend(0..num_segments as u32);
    // Fisher–Yates with the workload RNG: deterministic per pass.
    for i in (1..state.segment_order.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        state.segment_order.swap(i, j);
    }
    for index in 0..state.segment_order.len() {
        let segment = u64::from(state.segment_order[index]);
        let start = segment * seg;
        let end = (start + seg).min(blocks);
        run_segment(engine, tier, start, end, phase, state, rng);
    }
}

/// Straight execution of `[start, end)` blocks of a tier.
fn run_segment(
    engine: &mut Engine<'_>,
    tier: &CodeTier,
    start: u64,
    end: u64,
    phase: &Phase,
    state: &mut PhaseState,
    rng: &mut SplitMix64,
) {
    let mut block = start;
    while block < end {
        engine.fetch_block(tier.base + block * 16);
        // Data operations overlap the fetch stream.
        state.data_debt += phase.data_density;
        while state.data_debt >= 1.0 {
            state.data_debt -= 1.0;
            if let Some(stream_index) = pick_stream(&state.cumulative_weights, rng) {
                let op = state.streams[stream_index].next_op(rng);
                engine.data(op.pc, op.addr, op.store);
            }
        }
        // Occasional forward branch: long enough skips can jump a whole
        // cache line, making the landing line's interval non-next-line-
        // prefetchable (the paper's unprefetchable code intervals).
        block += if phase.branchiness > 0.0 && rng.chance(phase.branchiness) {
            2 + rng.below(12)
        } else {
            1
        };
    }
}

fn pick_stream(cumulative: &[f64], rng: &mut SplitMix64) -> Option<usize> {
    let total = *cumulative.last()?;
    let draw = rng.unit() * total;
    Some(cumulative.partition_point(|&c| c < draw).min(cumulative.len() - 1))
}

/// A runnable benchmark analog: a [`Spec`] bound to a cycle budget.
#[derive(Debug, Clone)]
pub(crate) struct SpecWorkload {
    spec: Spec,
    target_cycles: u64,
}

impl SpecWorkload {
    pub(crate) fn new(spec: Spec, target_cycles: u64) -> Self {
        SpecWorkload {
            spec,
            target_cycles,
        }
    }

    pub(crate) fn name(&self) -> &'static str {
        self.spec.name
    }

    pub(crate) fn spec(&self) -> &Spec {
        &self.spec
    }
}

impl TraceSource for SpecWorkload {
    fn run(&mut self, sink: &mut dyn TraceSink) {
        Executor::new(self.spec.clone(), self.target_cycles).run(sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_trace::VecTrace;

    fn tiny_spec() -> Spec {
        Spec {
            name: "tiny",
            seed: 1,
            phases: vec![Phase {
                duration: 1000,
                code: vec![
                    CodeTier {
                        base: 0x1000,
                        bytes: 256,
                        every: 1,
                    },
                    CodeTier {
                        base: 0x8000,
                        bytes: 512,
                        every: 4,
                    },
                ],
                streams: vec![(
                    StreamSpec::Seq {
                        base: 0x10_0000,
                        bytes: 4096,
                        stride: 8,
                        store_frac: 0.1,
                    },
                    1.0,
                )],
                data_density: 0.5,
                branchiness: 0.0,
                segment_shuffle: 16,
            }],
        }
    }

    #[test]
    fn executor_hits_cycle_budget() {
        let mut trace = VecTrace::new();
        Executor::new(tiny_spec(), 5_000).run(&mut trace);
        // An empty trace means the executor emitted nothing at all —
        // report that explicitly instead of unwrapping.
        let Some(last) = trace.stats().last_cycle else {
            panic!("executor produced an empty trace");
        };
        let last = last.raw();
        assert!((4_990..=5_100).contains(&last), "last cycle {last}");
        // Roughly half the cycles carry a data op.
        let data = trace.stats().data_accesses() as f64;
        let fetches = trace.stats().fetches as f64;
        assert!((data / fetches - 0.5).abs() < 0.05);
    }

    #[test]
    fn deterministic_replay() {
        let mut a = VecTrace::new();
        let mut b = VecTrace::new();
        Executor::new(tiny_spec(), 2_000).run(&mut a);
        Executor::new(tiny_spec(), 2_000).run(&mut b);
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn cold_tier_runs_once_per_every_supersteps() {
        let mut trace = VecTrace::new();
        Executor::new(tiny_spec(), 4_000).run(&mut trace);
        let cold_fetches = trace
            .iter()
            .filter(|e| e.kind.is_fetch() && e.addr.raw() >= 0x8000 && e.addr.raw() < 0x8200)
            .count() as f64;
        let hot_fetches = trace
            .iter()
            .filter(|e| e.kind.is_fetch() && e.addr.raw() < 0x2000)
            .count() as f64;
        // Hot tier: 16 blocks every superstep; cold: 32 blocks every 4th.
        let ratio = cold_fetches / hot_fetches;
        assert!((ratio - 0.5).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn branchiness_skips_blocks() {
        let mut spec = tiny_spec();
        spec.phases[0].branchiness = 0.5;
        let mut trace = VecTrace::new();
        Executor::new(spec, 2_000).run(&mut trace);
        // With heavy branchiness some hot blocks are skipped in a pass:
        // consecutive fetch addresses sometimes jump by more than 16.
        let mut jumps = 0;
        let fetches: Vec<u64> = trace
            .iter()
            .filter(|e| e.kind.is_fetch() && e.addr.raw() < 0x2000)
            .map(|e| e.addr.raw())
            .collect();
        for pair in fetches.windows(2) {
            if pair[1] > pair[0] + 16 {
                jumps += 1;
            }
        }
        assert!(jumps > 10, "expected forward branches, saw {jumps}");
    }

    #[test]
    fn validation_errors() {
        let mut s = tiny_spec();
        s.phases[0].code[0].every = 3;
        assert!(s.validate().unwrap_err().contains("hot tier"));

        let mut s = tiny_spec();
        s.phases[0].duration = 0;
        assert!(s.validate().unwrap_err().contains("duration"));

        let mut s = tiny_spec();
        s.phases.clear();
        assert!(s.validate().unwrap_err().contains("no phases"));

        let mut s = tiny_spec();
        s.phases[0].streams[0].1 = 0.0;
        assert!(s.validate().unwrap_err().contains("weight"));

        let mut s = tiny_spec();
        s.phases[0].streams.clear();
        assert!(s.validate().unwrap_err().contains("without streams"));
    }
}
