//! A tiny deterministic RNG.

/// SplitMix64: a fast, high-quality 64-bit generator with a one-word
/// state, used everywhere in the workload generators so that every run
/// of a benchmark analog is bit-for-bit reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; returns 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            // Multiply-shift: unbiased enough for workload synthesis.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
        assert_eq!(rng.below(0), 0);
        assert_eq!(rng.below(1), 0);
    }

    #[test]
    fn unit_in_range_and_roughly_uniform() {
        let mut rng = SplitMix64::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SplitMix64::new(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
