//! Reusable computational kernels for building custom workloads.
//!
//! The six shipped benchmark analogs are hand-assembled [`Phase`]s; this
//! module packages the common building blocks as parameterized kernels
//! with documented locality signatures, so downstream users can compose
//! workloads that stress a leakage policy in a chosen way:
//!
//! | kernel | data pattern | prefetch signature |
//! |---|---|---|
//! | [`stream_copy`] | two sequential sweeps | next-line |
//! | [`matmul_blocked`] | hot block + strided panel walks | stride + resident reuse |
//! | [`stencil2d`] | three row-offset sequential sweeps | next-line |
//! | [`hash_join`] | sequential probe input + random table | mixed |
//! | [`btree_probe`] | pointer chases over node pools | none |
//! | [`idle_service`] | tiny hot working set | none (short intervals) |
//!
//! Each kernel returns a [`Phase`]; glue phases into a [`Spec`](crate::Spec) and run
//! it with [`Benchmark::from_spec`](crate::Benchmark::from_spec).
//!
//! # Examples
//!
//! ```
//! use leakage_workloads::{kernels, Benchmark, Scale, Spec};
//! use leakage_trace::{TraceSource, VecTrace};
//!
//! let spec = Spec {
//!     name: "custom",
//!     seed: 7,
//!     phases: vec![
//!         kernels::stream_copy(kernels::Region::new(0x0100_0000, 0x4000_0000), 512 * 1024, 120_000),
//!         kernels::idle_service(kernels::Region::new(0x0200_0000, 0x5000_0000), 200_000),
//!     ],
//! };
//! let mut trace = VecTrace::new();
//! Benchmark::from_spec(spec, Scale::Test).run(&mut trace);
//! assert!(trace.len() > 100_000);
//! ```

use crate::{CodeTier, Phase, StreamSpec};

const KB: u64 = 1024;

/// Address-space slot for one kernel: where its code and data live.
///
/// Kernels sharing a [`Spec`](crate::Spec) should use disjoint regions (the shipped
/// analogs space code 1 MB and data 16 MB apart).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte of the kernel's code.
    pub code_base: u64,
    /// First byte of the kernel's data.
    pub data_base: u64,
}

impl Region {
    /// Creates a region.
    pub const fn new(code_base: u64, data_base: u64) -> Self {
        Region {
            code_base,
            data_base,
        }
    }

    fn code(&self, index: u64) -> u64 {
        self.code_base + index * 0x4_0000 // 256 KB apart
    }

    fn data(&self, index: u64) -> u64 {
        self.data_base + index * 0x100_0000 // 16 MB apart
    }
}

/// `memcpy`-like streaming: read one array, write another, sequentially.
/// Nearly every data interval is next-line prefetchable; the tiny code
/// loop keeps the instruction cache cold beyond a few lines.
pub fn stream_copy(region: Region, bytes: u64, duration: u64) -> Phase {
    Phase {
        duration,
        code: vec![
            CodeTier { base: region.code(0), bytes: KB, every: 1 },
            CodeTier { base: region.code(1), bytes: 4 * KB, every: 40 },
        ],
        streams: vec![
            (
                StreamSpec::Seq {
                    base: region.data(0),
                    bytes,
                    stride: 8,
                    store_frac: 0.0,
                },
                1.0,
            ),
            (
                StreamSpec::Seq {
                    base: region.data(1),
                    bytes,
                    stride: 8,
                    store_frac: 1.0,
                },
                1.0,
            ),
        ],
        data_density: 0.5,
        branchiness: 0.0,
        segment_shuffle: 0,
    }
}

/// Blocked matrix multiply: a cache-resident block is reused intensely
/// while panels of the other operand stream past with a large stride —
/// the stride prefetcher's showcase.
pub fn matmul_blocked(region: Region, matrix_bytes: u64, row_stride: u64, duration: u64) -> Phase {
    Phase {
        duration,
        code: vec![
            CodeTier { base: region.code(0), bytes: 2 * KB, every: 1 },
            CodeTier { base: region.code(1), bytes: 6 * KB, every: 24 },
        ],
        streams: vec![
            // The resident block: hot reuse.
            (
                StreamSpec::HotCold {
                    base: region.data(0),
                    hot_bytes: 8 * KB,
                    cold_bytes: 8 * KB,
                    p_hot: 0.7,
                },
                2.0,
            ),
            // Row-major panel: sequential.
            (
                StreamSpec::Seq {
                    base: region.data(1),
                    bytes: matrix_bytes,
                    stride: 8,
                    store_frac: 0.0,
                },
                0.6,
            ),
            // Column-major panel: strided by the row length.
            (
                StreamSpec::Strided {
                    base: region.data(2),
                    bytes: matrix_bytes,
                    stride: row_stride,
                },
                0.4,
            ),
        ],
        data_density: 0.45,
        branchiness: 0.005,
        segment_shuffle: 0,
    }
}

/// A 2-D five-point stencil: three row-shifted sequential sweeps of the
/// grid plus the output store stream.
pub fn stencil2d(region: Region, grid_bytes: u64, duration: u64) -> Phase {
    Phase {
        duration,
        code: vec![
            CodeTier { base: region.code(0), bytes: KB + 512, every: 1 },
            CodeTier { base: region.code(1), bytes: 5 * KB, every: 32 },
        ],
        streams: vec![
            (
                StreamSpec::Seq {
                    base: region.data(0),
                    bytes: grid_bytes,
                    stride: 8,
                    store_frac: 0.0,
                },
                1.5,
            ),
            (
                StreamSpec::Seq {
                    base: region.data(0) + grid_bytes / 2,
                    bytes: grid_bytes / 2,
                    stride: 8,
                    store_frac: 0.0,
                },
                0.75,
            ),
            (
                StreamSpec::Seq {
                    base: region.data(1),
                    bytes: grid_bytes,
                    stride: 8,
                    store_frac: 1.0,
                },
                0.75,
            ),
        ],
        data_density: 0.48,
        branchiness: 0.002,
        segment_shuffle: 0,
    }
}

/// A hash join: the probe input streams sequentially while the build
/// table is hit at random — half the accesses prefetchable, half not.
pub fn hash_join(region: Region, table_bytes: u64, probe_bytes: u64, duration: u64) -> Phase {
    Phase {
        duration,
        code: vec![
            CodeTier { base: region.code(0), bytes: 3 * KB, every: 1 },
            CodeTier { base: region.code(1), bytes: 8 * KB, every: 16 },
        ],
        streams: vec![
            (
                StreamSpec::Seq {
                    base: region.data(0),
                    bytes: probe_bytes,
                    stride: 8,
                    store_frac: 0.05,
                },
                1.0,
            ),
            (
                StreamSpec::HotCold {
                    base: region.data(1),
                    hot_bytes: 4 * KB,
                    cold_bytes: table_bytes,
                    p_hot: 0.3,
                },
                1.0,
            ),
        ],
        data_density: 0.38,
        branchiness: 0.04,
        segment_shuffle: 12,
    }
}

/// B-tree probes: pointer chases over a node pool with short in-node
/// scans. Nearly unprefetchable — the adversary of §5's schemes.
pub fn btree_probe(region: Region, nodes: u64, duration: u64) -> Phase {
    Phase {
        duration,
        code: vec![
            CodeTier { base: region.code(0), bytes: 2 * KB, every: 1 },
            CodeTier { base: region.code(1), bytes: 6 * KB, every: 20 },
        ],
        streams: vec![
            (
                StreamSpec::Chase {
                    base: region.data(0),
                    nodes,
                    node_bytes: 256,
                    reads_per_node: 8,
                },
                2.0,
            ),
            (
                StreamSpec::HotCold {
                    base: region.data(1),
                    hot_bytes: 2 * KB,
                    cold_bytes: 6 * KB,
                    p_hot: 0.8,
                },
                1.0,
            ),
        ],
        data_density: 0.30,
        branchiness: 0.05,
        segment_shuffle: 12,
    }
}

/// An idle service loop: a tiny hot working set polled at low density —
/// the quiet phase that gives gated-Vdd its very long intervals.
pub fn idle_service(region: Region, duration: u64) -> Phase {
    Phase {
        duration,
        code: vec![
            CodeTier { base: region.code(0), bytes: KB, every: 1 },
            CodeTier { base: region.code(1), bytes: 3 * KB, every: 12 },
        ],
        streams: vec![(
            StreamSpec::HotCold {
                base: region.data(0),
                hot_bytes: KB,
                cold_bytes: 3 * KB,
                p_hot: 0.8,
            },
            1.0,
        )],
        data_density: 0.08,
        branchiness: 0.01,
        segment_shuffle: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Benchmark, Scale, Spec};
    use leakage_trace::{TraceSource, VecTrace};

    fn region(i: u64) -> Region {
        Region::new(0x0100_0000 + i * 0x100_0000, 0x4000_0000 + i * 0x1000_0000)
    }

    fn run(phase: Phase) -> VecTrace {
        let spec = Spec {
            name: "kernel-test",
            seed: 1,
            phases: vec![phase],
        };
        spec.validate().expect("kernel produces a valid phase");
        let mut trace = VecTrace::new();
        Benchmark::from_spec(spec, Scale::Test).run(&mut trace);
        trace
    }

    #[test]
    fn all_kernels_produce_valid_phases() {
        for phase in [
            stream_copy(region(0), 256 * KB, 100_000),
            matmul_blocked(region(1), 512 * KB, 384, 100_000),
            stencil2d(region(2), 256 * KB, 100_000),
            hash_join(region(3), 128 * KB, 256 * KB, 100_000),
            btree_probe(region(4), 4096, 100_000),
            idle_service(region(5), 100_000),
        ] {
            let trace = run(phase);
            assert!(trace.stats().fetches > 50_000);
        }
    }

    #[test]
    fn stream_copy_is_write_heavy_and_sequential() {
        let trace = run(stream_copy(region(0), 256 * KB, 100_000));
        let stats = trace.stats();
        // Half the data ops are stores (the destination sweep).
        let store_frac = stats.stores as f64 / stats.data_accesses() as f64;
        assert!((store_frac - 0.5).abs() < 0.05, "store fraction {store_frac}");
        // Consecutive loads from the source walk forward by 8 bytes.
        let loads: Vec<u64> = trace
            .iter()
            .filter(|e| e.kind == leakage_trace::AccessKind::Load)
            .map(|e| e.addr.raw())
            .take(100)
            .collect();
        let sequential = loads.windows(2).filter(|w| w[1] == w[0] + 8).count();
        assert!(sequential > 80, "sequential pairs: {sequential}");
    }

    #[test]
    fn btree_probe_addresses_are_scattered() {
        let trace = run(btree_probe(region(0), 4096, 100_000));
        // Distinct data lines touched should be a large fraction of the
        // pool (the chase covers it), unlike a hot loop.
        let lines: std::collections::HashSet<u64> = trace
            .iter()
            .filter(|e| e.kind.is_data() && e.addr.raw() >= 0x4000_0000)
            .map(|e| e.addr.raw() >> 6)
            .collect();
        assert!(lines.len() > 2_000, "chase touched {} lines", lines.len());
    }

    #[test]
    fn idle_service_has_low_density_and_tiny_footprint() {
        let trace = run(idle_service(region(0), 100_000));
        let stats = trace.stats();
        let density = stats.data_accesses() as f64 / stats.fetches as f64;
        assert!(density < 0.1, "density {density}");
        let lines: std::collections::HashSet<u64> = trace
            .iter()
            .filter(|e| e.kind.is_data())
            .map(|e| e.addr.raw() >> 6)
            .collect();
        assert!(lines.len() <= 64, "footprint {} lines", lines.len());
    }

    #[test]
    fn matmul_trains_the_stride_signature() {
        // The strided panel produces constant 384-byte deltas from one pc.
        let trace = run(matmul_blocked(region(0), 512 * KB, 384, 100_000));
        let mut per_pc: std::collections::HashMap<u64, Vec<u64>> =
            std::collections::HashMap::new();
        for e in trace.iter().filter(|e| e.kind.is_data()) {
            per_pc.entry(e.pc.raw()).or_default().push(e.addr.raw());
        }
        let strided = per_pc.values().any(|addrs| {
            addrs
                .windows(2)
                .filter(|w| w[1].wrapping_sub(w[0]) == 384)
                .count()
                > addrs.len() / 2
        });
        assert!(strided, "one stream must show a constant 384-byte stride");
    }
}
