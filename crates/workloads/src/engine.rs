//! The access-emission engine.

use leakage_trace::{Address, Cycle, MemoryAccess, Pc, TraceSink};

/// Emits timed accesses into a [`TraceSink`] on behalf of a synthetic
/// program.
///
/// The timing model is a 4-wide in-order front end: each call to
/// [`fetch_block`](Engine::fetch_block) issues one 16-byte fetch block
/// (one instruction-cache access) and advances the clock by one cycle.
/// Data operations issue at the current cycle without advancing it
/// (they overlap the fetch, as in a superscalar pipeline). The engine is
/// open-loop — cache misses do not stall it; the limit study's oracle
/// assumes perfectly hidden latencies, and the interval statistics are
/// calibrated at the trace level (see `DESIGN.md`).
pub struct Engine<'a> {
    sink: &'a mut dyn TraceSink,
    cycle: u64,
}

impl std::fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine").field("cycle", &self.cycle).finish()
    }
}

impl<'a> Engine<'a> {
    /// Wraps a sink; the clock starts at cycle 0.
    pub fn new(sink: &'a mut dyn TraceSink) -> Self {
        Engine { sink, cycle: 0 }
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Issues one instruction fetch block at `pc` and advances one
    /// cycle.
    pub fn fetch_block(&mut self, pc: u64) {
        self.sink
            .accept(MemoryAccess::fetch(Cycle::new(self.cycle), Pc::new(pc)));
        self.cycle += 1;
    }

    /// Issues a data access at the current cycle (overlapped with the
    /// fetch issued this cycle).
    pub fn data(&mut self, pc: u64, addr: u64, store: bool) {
        let access = if store {
            MemoryAccess::store(Cycle::new(self.cycle), Pc::new(pc), Address::new(addr))
        } else {
            MemoryAccess::load(Cycle::new(self.cycle), Pc::new(pc), Address::new(addr))
        };
        self.sink.accept(access);
    }

    /// Advances the clock without issuing accesses (pipeline bubbles).
    pub fn idle(&mut self, cycles: u64) {
        self.cycle += cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_trace::{AccessKind, VecTrace};

    #[test]
    fn fetch_advances_clock() {
        let mut trace = VecTrace::new();
        let mut engine = Engine::new(&mut trace);
        engine.fetch_block(0x1000);
        engine.fetch_block(0x1010);
        assert_eq!(engine.cycle(), 2);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.events()[1].cycle, Cycle::new(1));
    }

    #[test]
    fn data_overlaps_current_cycle() {
        let mut trace = VecTrace::new();
        let mut engine = Engine::new(&mut trace);
        engine.fetch_block(0x1000);
        engine.data(0x1004, 0x8000, false);
        engine.data(0x1008, 0x8008, true);
        let events = trace.events();
        assert_eq!(events[1].cycle, Cycle::new(1));
        assert_eq!(events[1].kind, AccessKind::Load);
        assert_eq!(events[2].kind, AccessKind::Store);
    }

    #[test]
    fn idle_skips_cycles() {
        let mut trace = VecTrace::new();
        let mut engine = Engine::new(&mut trace);
        engine.fetch_block(0);
        engine.idle(100);
        engine.fetch_block(16);
        assert_eq!(trace.events()[1].cycle, Cycle::new(101));
    }
}
