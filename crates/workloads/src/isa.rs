//! Executed-program benchmarks: the `isa:*` suite.
//!
//! Unlike the six synthetic analogs, these workloads *execute* real
//! control flow on the `leakage-isa` machine — assembled `.lasm`
//! programs run repeatedly (re-seeded each iteration, one continuous
//! clock) until the [`Scale`](crate::Scale) cycle budget is met. They
//! share the suite plumbing: [`crate::by_name`] resolves their
//! `isa:`-prefixed names, profile stores key them with their own
//! generator version, and they are valid axes in server sweeps.

use crate::bench::GENERATOR_VERSION;
use leakage_isa::{program_by_name, IsaSource};
use leakage_trace::{TraceSink, TraceSource};

/// The executed-program benchmark names, in library order. All are
/// prefixed `isa:` so they can never collide with synthetic suite
/// names.
pub use leakage_isa::PROGRAM_NAMES as ISA_SUITE_NAMES;

/// Version of the ISA workload family (program corpus, machine cycle
/// model, seeding discipline). Bump on any change that alters the
/// trace an `isa:*` benchmark emits for a given `(name, Scale)`; the
/// synthetic suite's [`GENERATOR_VERSION`] stays untouched, so adding
/// or revising ISA programs never invalidates synthetic profiles.
pub const ISA_GENERATOR_VERSION: u32 = 1;

/// The generator version governing `name`'s cache identity: ISA
/// benchmarks version independently from the synthetic suite, so
/// profile caches mix in the family version that actually produced
/// the trace.
pub fn generator_version(name: &str) -> u32 {
    if name.starts_with("isa:") {
        ISA_GENERATOR_VERSION
    } else {
        GENERATOR_VERSION
    }
}

/// Whether `name` is a benchmark this crate can build at any scale —
/// a synthetic suite member or an executed `isa:*` program. This is
/// the validation the server's sweep parser and the jobs fabric use.
pub fn is_known_benchmark(name: &str) -> bool {
    crate::bench::SUITE_NAMES.contains(&name) || ISA_SUITE_NAMES.contains(&name)
}

/// A runnable executed-program workload (the `inner` of an `isa:*`
/// [`Benchmark`](crate::Benchmark)).
#[derive(Debug, Clone)]
pub(crate) struct IsaWorkload {
    name: &'static str,
    budget_cycles: u64,
}

impl IsaWorkload {
    /// Builds the workload for a known `isa:*` name; `None` otherwise.
    pub(crate) fn by_name(name: &str, budget_cycles: u64) -> Option<IsaWorkload> {
        let program = program_by_name(name)?;
        Some(IsaWorkload {
            name: program.name,
            budget_cycles,
        })
    }

    pub(crate) fn name(&self) -> &'static str {
        self.name
    }

    /// The workload's base seed: a stable FNV-1a fold of its name, so
    /// each program family gets an independent deterministic stream
    /// without a hand-maintained table.
    fn seed(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in self.name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }
}

impl TraceSource for IsaWorkload {
    fn run(&mut self, sink: &mut dyn TraceSink) {
        let program = program_by_name(self.name).expect("constructed from a known name");
        IsaSource::new(program, self.budget_cycles, self.seed()).run(sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{by_name, Scale, SUITE_NAMES};
    use leakage_trace::VecTrace;

    #[test]
    fn known_benchmarks_cover_both_families() {
        for name in SUITE_NAMES {
            assert!(is_known_benchmark(name), "{name}");
        }
        for name in ISA_SUITE_NAMES {
            assert!(is_known_benchmark(name), "{name}");
        }
        assert!(!is_known_benchmark("perlbmk"));
        assert!(!is_known_benchmark("isa:doom"));
    }

    #[test]
    fn generator_versions_split_by_family() {
        assert_eq!(generator_version("gzip"), GENERATOR_VERSION);
        assert_eq!(generator_version("isa:matmul"), ISA_GENERATOR_VERSION);
    }

    #[test]
    fn isa_benchmarks_resolve_and_reach_budget() {
        for name in ISA_SUITE_NAMES {
            let mut bench = by_name(name, Scale::Test).expect(name);
            assert_eq!(bench.name(), name);
            let mut trace = VecTrace::new();
            bench.run(&mut trace);
            let last = trace.stats().last_cycle.expect("non-empty").raw();
            let budget = Scale::Test.cycles();
            assert!(
                last >= budget - 10 && last < budget + 10,
                "{name}: last cycle {last} vs budget {budget}"
            );
        }
    }

    #[test]
    fn isa_benchmarks_are_deterministic_and_distinct() {
        let collect = |name: &str| {
            let mut trace = VecTrace::new();
            by_name(name, Scale::Test).unwrap().run(&mut trace);
            trace
        };
        assert_eq!(
            collect("isa:chase").events(),
            collect("isa:chase").events()
        );
        assert_ne!(
            collect("isa:memset").events(),
            collect("isa:memcpy").events()
        );
    }
}
