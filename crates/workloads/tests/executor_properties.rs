//! Property tests on the workload executor: any structurally valid spec
//! must produce a well-formed trace.

use leakage_trace::{TraceSource, VecTrace};
use leakage_workloads::{Benchmark, CodeTier, Phase, Scale, Spec, StreamSpec};
use proptest::prelude::*;

fn arb_stream() -> impl Strategy<Value = StreamSpec> {
    prop_oneof![
        (1u64..64, 1u64..8, 0.0f64..1.0).prop_map(|(kb, stride_words, store_frac)| {
            StreamSpec::Seq {
                base: 0x4000_0000,
                bytes: kb * 1024,
                stride: stride_words * 8,
                store_frac,
            }
        }),
        (1u64..64, 2u64..64).prop_map(|(kb, lines)| StreamSpec::Strided {
            base: 0x5000_0000,
            bytes: kb * 1024,
            stride: lines * 8,
        }),
        (2u64..2048, 1u32..8).prop_map(|(nodes, reads)| StreamSpec::Chase {
            base: 0x6000_0000,
            nodes,
            node_bytes: 128,
            reads_per_node: reads,
        }),
        (1u64..8, 1u64..64, 0.0f64..=1.0).prop_map(|(hot_kb, cold_kb, p_hot)| {
            StreamSpec::HotCold {
                base: 0x7000_0000,
                hot_bytes: hot_kb * 1024,
                cold_bytes: cold_kb * 1024,
                p_hot,
            }
        }),
    ]
}

fn arb_phase() -> impl Strategy<Value = Phase> {
    (
        5_000u64..60_000,                                 // duration
        1u64..16,                                         // hot KB
        prop::collection::vec((1u64..32, 2u64..64), 0..3), // extra tiers
        prop::collection::vec((arb_stream(), 0.1f64..4.0), 1..4),
        0.0f64..0.6,  // density
        0.0f64..0.2,  // branchiness
        prop::sample::select(vec![0u32, 8, 12, 16]),
    )
        .prop_map(
            |(duration, hot_kb, extra, streams, data_density, branchiness, shuffle)| {
                let mut code = vec![CodeTier {
                    base: 0x0100_0000,
                    bytes: hot_kb * 1024,
                    every: 1,
                }];
                for (i, (kb, every)) in extra.into_iter().enumerate() {
                    code.push(CodeTier {
                        base: 0x0200_0000 + i as u64 * 0x10_0000,
                        bytes: kb * 1024,
                        every,
                    });
                }
                Phase {
                    duration,
                    code,
                    streams,
                    data_density,
                    branchiness,
                    segment_shuffle: shuffle,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any valid spec runs to (or just past) its budget, emits monotone
    /// timestamps, exactly one fetch per cycle with no gaps, and is
    /// fully deterministic.
    #[test]
    fn executor_invariants(
        phases in prop::collection::vec(arb_phase(), 1..4),
        seed in 0u64..u64::MAX,
        budget in 30_000u64..120_000,
    ) {
        let spec = Spec { name: "prop", seed, phases };
        prop_assert!(spec.validate().is_ok());

        let run = || {
            let mut trace = VecTrace::new();
            Benchmark::from_spec(spec.clone(), Scale::Custom(budget)).run(&mut trace);
            trace
        };
        let trace = run();

        // Budget reached, with bounded overshoot (one tier pass).
        let last = trace.stats().last_cycle.unwrap().raw();
        prop_assert!(last + 1 >= budget, "stopped early: {last} < {budget}");
        prop_assert!(last < budget + 40_000, "overshot: {last}");

        // Monotone, gap-free fetch clock: fetch cycles are 0,1,2,...
        let mut expected = 0u64;
        for event in trace.iter() {
            prop_assert!(event.cycle.raw() <= last);
            if event.kind.is_fetch() {
                prop_assert_eq!(event.cycle.raw(), expected, "fetch clock skipped");
                expected += 1;
            } else {
                // Data ops are stamped at the cycle following their
                // fetch (the engine's overlap convention), which is the
                // next fetch's cycle.
                prop_assert_eq!(event.cycle.raw(), expected);
            }
        }

        // Determinism.
        let again = run();
        prop_assert_eq!(again.events(), trace.events());
    }
}
