//! Results of an online simulation.

use serde::{Deserialize, Serialize};

/// What one controller did to one cache over one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineReport {
    /// Controller name.
    pub controller: String,
    /// Total energy under the controller, pJ (leakage + transitions +
    /// refetches + counter overhead).
    pub energy: f64,
    /// Always-active baseline energy over the same frames and cycles.
    pub baseline: f64,
    /// Total accesses observed.
    pub accesses: u64,
    /// Accesses that found their line's data destroyed (induced misses).
    pub induced_misses: u64,
    /// Total stall cycles charged to accesses.
    pub stall_cycles: u64,
    /// Accesses that stalled at all.
    pub stalled_accesses: u64,
    /// Frame-cycles per mode: `[active, drowsy, sleep]`. Sums to
    /// `frames × span`.
    pub mode_cycles: [u64; 3],
    /// For adaptive controllers, the `(cycle, theta)` re-tuning history
    /// (initial setting first). Empty for fixed controllers.
    pub theta_history: Vec<(u64, u64)>,
}

impl OnlineReport {
    /// Leakage power saving vs the always-active baseline.
    pub fn saving_fraction(&self) -> f64 {
        if self.baseline == 0.0 {
            0.0
        } else {
            1.0 - self.energy / self.baseline
        }
    }

    /// Saving in percent.
    pub fn saving_percent(&self) -> f64 {
        self.saving_fraction() * 100.0
    }

    /// Induced misses per 1000 accesses.
    pub fn induced_miss_per_kilo_access(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            1_000.0 * self.induced_misses as f64 / self.accesses as f64
        }
    }

    /// Average stall cycles per access.
    pub fn stall_per_access(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / self.accesses as f64
        }
    }

    /// Fraction of frame-cycles spent in each mode.
    pub fn mode_fractions(&self) -> [f64; 3] {
        let total: u64 = self.mode_cycles.iter().sum();
        if total == 0 {
            return [0.0; 3];
        }
        self.mode_cycles.map(|c| c as f64 / total as f64)
    }
}

impl std::fmt::Display for OnlineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let [active, drowsy, sleep] = self.mode_fractions();
        write!(
            f,
            "{}: {:.1}% saved | {:.2} induced misses/1K acc | {:.3} stall cy/acc | \
             residency {:.0}/{:.0}/{:.0}% (A/D/S)",
            self.controller,
            self.saving_percent(),
            self.induced_miss_per_kilo_access(),
            self.stall_per_access(),
            active * 100.0,
            drowsy * 100.0,
            sleep * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> OnlineReport {
        OnlineReport {
            controller: "test".into(),
            energy: 30.0,
            baseline: 100.0,
            accesses: 2_000,
            induced_misses: 10,
            stall_cycles: 70,
            stalled_accesses: 10,
            mode_cycles: [100, 300, 600],
            theta_history: Vec::new(),
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert!((r.saving_fraction() - 0.7).abs() < 1e-12);
        assert!((r.induced_miss_per_kilo_access() - 5.0).abs() < 1e-12);
        assert!((r.stall_per_access() - 0.035).abs() < 1e-12);
        assert_eq!(r.mode_fractions(), [0.1, 0.3, 0.6]);
    }

    #[test]
    fn zero_safe() {
        let r = OnlineReport {
            accesses: 0,
            baseline: 0.0,
            mode_cycles: [0; 3],
            ..report()
        };
        assert_eq!(r.saving_fraction(), 0.0);
        assert_eq!(r.induced_miss_per_kilo_access(), 0.0);
        assert_eq!(r.stall_per_access(), 0.0);
        assert_eq!(r.mode_fractions(), [0.0; 3]);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let text = report().to_string();
        assert!(text.contains("70.0% saved"));
        assert!(text.contains("5.00 induced"));
    }
}
