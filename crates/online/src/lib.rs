//! Online (timeline) simulation of implementable leakage controllers.
//!
//! The analytic machinery in `leakage-core` evaluates a policy from the
//! interval-length distribution alone — fast, and exactly what the
//! paper's limit study needs. Real controllers, however, live on a
//! timeline: a decay counter fires whether or not the next access is
//! near, a periodic drowsy tick lands at a phase the line does not
//! choose, and an adaptive controller's threshold depends on the misses
//! it already caused. This crate simulates those mechanisms per frame,
//! event by event:
//!
//! * [`Controller::Decay`] — cache decay with an ideal per-line timer,
//!   in both *realistic* (commit at the timer, pay the wakeup) and
//!   *idealized* (the analytic model's semantics) variants, so the two
//!   accountings can be diffed,
//! * [`Controller::QuantizedDecay`] — Kaxiras-style hierarchical
//!   counters: a global tick driving small per-line saturating
//!   counters, which quantizes the effective decay interval,
//! * [`Controller::PeriodicDrowsy`] — Flautner/Kim's global drowsy
//!   tick, phase-exact rather than the analytic expectation,
//! * [`Controller::AdaptiveDecay`] — feedback control of the decay
//!   threshold from the observed induced-miss rate (in the spirit of
//!   Velusamy et al.'s formal-feedback decay),
//! * [`dri`] — DRI-style cache resizing (Powell et al.): way-gating
//!   driven by a per-epoch miss bound, with a full-size shadow cache
//!   measuring the resize penalty.
//!
//! [`OnlineSink`] wraps the cache hierarchy so a workload can drive two
//! simulators (one per L1) directly, and [`OnlineReport`] carries the
//! energy, stall and state-residency results.
//!
//! # Examples
//!
//! ```
//! use leakage_core::{CircuitParams, TechnologyNode};
//! use leakage_online::{Controller, OnlineCacheSim};
//! use leakage_cachesim::FrameId;
//! use leakage_trace::Cycle;
//!
//! let params = CircuitParams::for_node(TechnologyNode::N70);
//! let mut sim = OnlineCacheSim::new(params, Controller::decay(10_000), 4);
//! sim.on_access(FrameId::new(0), Cycle::new(100), false);
//! sim.on_access(FrameId::new(0), Cycle::new(50_000), true); // induced miss
//! let report = sim.finish(Cycle::new(60_000));
//! assert!(report.saving_fraction() > 0.0);
//! assert_eq!(report.induced_misses, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
pub mod dri;
mod report;
mod simulator;

pub use controller::{Controller, Trajectory};
pub use report::OnlineReport;
pub use simulator::{OnlineCacheSim, OnlineSink};
