//! The per-cache online simulator and the hierarchy-level sink.

use crate::{Controller, OnlineReport};
use leakage_cachesim::{FrameId, Hierarchy, HierarchyConfig, Level1};
use leakage_core::CircuitParams;
use leakage_trace::{Cycle, MemoryAccess, TraceSink};

/// Per-frame simulation state.
#[derive(Debug, Clone, Copy)]
struct FrameState {
    /// When the frame's controller timer last armed (its last access,
    /// or cycle 0 at reset).
    armed_at: Cycle,
    /// The adaptive decay threshold in force when the timer armed.
    armed_theta: u64,
}

/// Simulates one controller managing one cache's frames, driven by the
/// cache's access stream.
///
/// Frames power up active at cycle 0 with their timers freshly armed —
/// the same reset state the analytic accounting assumes — so energies
/// are directly comparable with
/// [`EnergyContext::evaluate`](leakage_core::EnergyContext::evaluate)
/// under dead-aware refetch accounting.
#[derive(Debug, Clone)]
pub struct OnlineCacheSim {
    params: CircuitParams,
    controller: Controller,
    frames: Vec<FrameState>,
    // Adaptive state.
    theta: u64,
    epoch_end: u64,
    epoch_accesses: u64,
    epoch_induced: u64,
    theta_history: Vec<(u64, u64)>,
    // Accumulators.
    energy: f64,
    accesses: u64,
    induced_misses: u64,
    stall_cycles: u64,
    stalled_accesses: u64,
    mode_cycles: [u64; 3],
}

impl OnlineCacheSim {
    /// Creates a simulator for a cache with `num_frames` frames.
    pub fn new(params: CircuitParams, controller: Controller, num_frames: u32) -> Self {
        let (theta, epoch) = match &controller {
            Controller::AdaptiveDecay { theta0, epoch, .. } => (*theta0, *epoch),
            _ => (0, u64::MAX),
        };
        let mut theta_history = Vec::new();
        if matches!(controller, Controller::AdaptiveDecay { .. }) {
            theta_history.push((0, theta));
        }
        OnlineCacheSim {
            frames: vec![
                FrameState {
                    armed_at: Cycle::ZERO,
                    armed_theta: theta,
                };
                num_frames as usize
            ],
            theta,
            epoch_end: epoch,
            epoch_accesses: 0,
            epoch_induced: 0,
            theta_history,
            energy: 0.0,
            accesses: 0,
            induced_misses: 0,
            stall_cycles: 0,
            stalled_accesses: 0,
            mode_cycles: [0; 3],
            params,
            controller,
        }
    }

    /// The controller being simulated.
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// The adaptive threshold currently in force (the fixed threshold
    /// for non-adaptive decay controllers; 0 for periodic drowsy).
    pub fn current_theta(&self) -> u64 {
        self.theta
    }

    /// Feeds one access to `frame` at `cycle`; `hit` is the functional
    /// cache's outcome (whether the resident line was the one wanted).
    ///
    /// # Panics
    ///
    /// Panics if `frame` is out of range, or (in debug builds) if
    /// accesses arrive out of order for a frame.
    pub fn on_access(&mut self, frame: FrameId, cycle: Cycle, hit: bool) {
        self.maybe_retune(cycle);
        let state = self.frames[frame.index() as usize];
        let traj =
            self.controller
                .trajectory(&self.params, state.armed_at, cycle, true, state.armed_theta);
        self.energy += traj.energy;
        for (bucket, cycles) in self.mode_cycles.iter_mut().zip(traj.mode_cycles) {
            *bucket += cycles;
        }
        self.accesses += 1;
        self.epoch_accesses += 1;
        if traj.stall > 0 {
            self.stall_cycles += traj.stall;
            self.stalled_accesses += 1;
        }
        // An induced miss is a would-be hit on destroyed data: the line
        // must be refetched from L2 at dynamic cost C_D.
        if traj.data_destroyed && hit {
            self.induced_misses += 1;
            self.epoch_induced += 1;
            self.energy += self.params.refetch_energy();
        }
        self.frames[frame.index() as usize] = FrameState {
            armed_at: cycle,
            armed_theta: self.theta,
        };
    }

    /// Adaptive feedback: at epoch boundaries, move the threshold
    /// against the observed induced-miss rate.
    fn maybe_retune(&mut self, now: Cycle) {
        let Controller::AdaptiveDecay {
            theta_min,
            theta_max,
            epoch,
            target_per_kilo_access,
            ..
        } = self.controller
        else {
            return;
        };
        while now.raw() >= self.epoch_end {
            if self.epoch_accesses > 0 {
                let rate = 1_000.0 * self.epoch_induced as f64 / self.epoch_accesses as f64;
                let new_theta = if rate > target_per_kilo_access {
                    (self.theta * 2).min(theta_max)
                } else if rate < target_per_kilo_access / 2.0 {
                    (self.theta / 2).max(theta_min)
                } else {
                    self.theta
                };
                if new_theta != self.theta {
                    self.theta = new_theta;
                    self.theta_history.push((self.epoch_end, new_theta));
                }
            }
            self.epoch_accesses = 0;
            self.epoch_induced = 0;
            self.epoch_end += epoch;
        }
    }

    /// Ends the simulation at `end` (exclusive), charging every frame's
    /// open tail, and returns the report.
    pub fn finish(mut self, end: Cycle) -> OnlineReport {
        let frames = self.frames.len() as u64;
        for state in std::mem::take(&mut self.frames) {
            let traj = self.controller.trajectory(
                &self.params,
                state.armed_at,
                end,
                false,
                state.armed_theta,
            );
            self.energy += traj.energy;
            for (bucket, cycles) in self.mode_cycles.iter_mut().zip(traj.mode_cycles) {
                *bucket += cycles;
            }
        }
        // Decay-counter overhead runs on every line all the time.
        let span = end.raw() as f64;
        self.energy +=
            self.controller.counter_ratio() * self.params.powers().active * span * frames as f64;
        leakage_telemetry::counter!("online_accesses_total").add(self.accesses);
        leakage_telemetry::counter!("online_induced_misses_total").add(self.induced_misses);
        leakage_telemetry::counter!("online_stall_cycles_total").add(self.stall_cycles);
        OnlineReport {
            controller: self.controller.name(),
            energy: self.energy,
            baseline: self.params.powers().active * span * frames as f64,
            accesses: self.accesses,
            induced_misses: self.induced_misses,
            stall_cycles: self.stall_cycles,
            stalled_accesses: self.stalled_accesses,
            mode_cycles: self.mode_cycles,
            theta_history: self.theta_history,
        }
    }
}

/// Drives one controller per L1 cache behind the standard hierarchy: a
/// [`TraceSink`] a workload can run into directly.
///
/// # Examples
///
/// ```
/// use leakage_core::{CircuitParams, TechnologyNode};
/// use leakage_online::{Controller, OnlineSink};
/// use leakage_trace::TraceSource;
/// use leakage_workloads::{gzip, Scale};
///
/// let params = CircuitParams::for_node(TechnologyNode::N70);
/// let mut sink = OnlineSink::new(params, Controller::decay(10_000));
/// gzip(Scale::Test).run(&mut sink);
/// let (icache, dcache) = sink.finish();
/// assert!(icache.saving_fraction() > 0.0);
/// assert!(dcache.saving_fraction() > 0.0);
/// ```
#[derive(Debug)]
pub struct OnlineSink {
    hierarchy: Hierarchy,
    icache: OnlineCacheSim,
    dcache: OnlineCacheSim,
    end: Cycle,
}

impl OnlineSink {
    /// Builds the standard Alpha-like hierarchy with the same controller
    /// on both L1 caches.
    pub fn new(params: CircuitParams, controller: Controller) -> Self {
        OnlineSink::with_controllers(params, controller.clone(), controller)
    }

    /// Builds with distinct controllers per side.
    pub fn with_controllers(
        params: CircuitParams,
        icache: Controller,
        dcache: Controller,
    ) -> Self {
        let config = HierarchyConfig::alpha_like();
        OnlineSink {
            icache: OnlineCacheSim::new(params.clone(), icache, config.l1i.num_frames()),
            dcache: OnlineCacheSim::new(params, dcache, config.l1d.num_frames()),
            hierarchy: Hierarchy::new(config),
            end: Cycle::ZERO,
        }
    }

    /// Ends the run, returning `(icache, dcache)` reports.
    pub fn finish(self) -> (OnlineReport, OnlineReport) {
        let end = self.end;
        (self.icache.finish(end), self.dcache.finish(end))
    }
}

impl TraceSink for OnlineSink {
    fn accept(&mut self, access: MemoryAccess) {
        let outcome = self.hierarchy.access(&access);
        let event = outcome.l1;
        match event.cache {
            Level1::Instruction => self.icache.on_access(event.frame, event.cycle, event.hit),
            Level1::Data => self.dcache.on_access(event.frame, event.cycle, event.hit),
        }
        if access.cycle >= self.end {
            self.end = access.cycle.advanced(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_core::TechnologyNode;

    fn params() -> CircuitParams {
        CircuitParams::for_node(TechnologyNode::N70)
    }

    fn f(i: u32) -> FrameId {
        FrameId::new(i)
    }

    fn c(raw: u64) -> Cycle {
        Cycle::new(raw)
    }

    #[test]
    fn mode_cycles_tile_frames_times_span() {
        let mut sim = OnlineCacheSim::new(params(), Controller::decay(1_000), 8);
        sim.on_access(f(0), c(100), false);
        sim.on_access(f(0), c(50_000), true);
        sim.on_access(f(3), c(70_000), false);
        let report = sim.finish(c(100_000));
        let total: u64 = report.mode_cycles.iter().sum();
        assert_eq!(total, 8 * 100_000);
    }

    #[test]
    fn induced_misses_only_on_destroyed_hits() {
        let mut sim = OnlineCacheSim::new(params(), Controller::decay(1_000), 2);
        sim.on_access(f(0), c(50_000), true); // decayed + hit: induced
        sim.on_access(f(1), c(50_000), false); // decayed + fill: free
        sim.on_access(f(0), c(50_100), true); // active: free
        let report = sim.finish(c(60_000));
        assert_eq!(report.induced_misses, 1);
        assert_eq!(report.stalled_accesses, 2, "both decayed accesses stall");
    }

    #[test]
    fn periodic_drowsy_never_induces_misses() {
        let mut sim = OnlineCacheSim::new(params(), Controller::periodic_drowsy(1_000), 2);
        sim.on_access(f(0), c(10_000), true);
        sim.on_access(f(0), c(90_000), true);
        let report = sim.finish(c(100_000));
        assert_eq!(report.induced_misses, 0);
        assert_eq!(report.stalled_accesses, 2);
        assert!(report.saving_fraction() > 0.5, "mostly drowsy");
    }

    #[test]
    fn adaptive_decay_retunes_downward_when_quiet() {
        // No induced misses at all: theta should halve over epochs.
        let ctrl = Controller::AdaptiveDecay {
            theta0: 64_000,
            theta_min: 1_000,
            theta_max: 256_000,
            epoch: 10_000,
            target_per_kilo_access: 5.0,
            counter_ratio: 0.0,
        };
        let mut sim = OnlineCacheSim::new(params(), ctrl, 4);
        // Frequent short-interval accesses: never destroyed, zero rate.
        for i in 1..60 {
            sim.on_access(f(0), c(i * 2_000), true);
        }
        assert!(sim.current_theta() < 64_000, "theta fell: {}", sim.current_theta());
        let report = sim.finish(c(200_000));
        assert!(report.theta_history.len() > 1);
        assert_eq!(report.theta_history[0], (0, 64_000));
    }

    #[test]
    fn adaptive_decay_backs_off_when_inducing() {
        let ctrl = Controller::AdaptiveDecay {
            theta0: 1_000,
            theta_min: 500,
            theta_max: 1_024_000,
            epoch: 50_000,
            target_per_kilo_access: 5.0,
            counter_ratio: 0.0,
        };
        let mut sim = OnlineCacheSim::new(params(), ctrl, 4);
        // Every access hits destroyed data (gaps >> theta): 1000/1K rate.
        for i in 1..40 {
            sim.on_access(f(0), c(i * 10_000), true);
        }
        assert!(sim.current_theta() > 1_000, "theta rose: {}", sim.current_theta());
    }

    #[test]
    fn online_sink_runs_a_workload() {
        use leakage_trace::TraceSource;
        use leakage_workloads::{applu, Scale};
        let mut sink = OnlineSink::with_controllers(
            params(),
            Controller::decay(10_000),
            Controller::periodic_drowsy(4_000),
        );
        applu(Scale::Test).run(&mut sink);
        let (icache, dcache) = sink.finish();
        assert!(icache.controller.contains("Decay"));
        assert!(dcache.controller.contains("PeriodicDrowsy"));
        assert!(icache.saving_fraction() > 0.0);
        assert!(dcache.saving_fraction() > 0.0);
        assert_eq!(dcache.induced_misses, 0);
        let total: u64 = icache.mode_cycles.iter().sum();
        assert_eq!(total % 1024, 0, "1024 frames tile the span");
    }

    #[test]
    fn counter_overhead_is_charged() {
        let with = OnlineCacheSim::new(
            params(),
            Controller::Decay {
                theta: 10_000,
                counter_ratio: 0.05,
                idealized: false,
            },
            4,
        )
        .finish(c(100_000));
        let without = OnlineCacheSim::new(
            params(),
            Controller::Decay {
                theta: 10_000,
                counter_ratio: 0.0,
                idealized: false,
            },
            4,
        )
        .finish(c(100_000));
        let expected = 0.05 * params().powers().active * 100_000.0 * 4.0;
        assert!((with.energy - without.energy - expected).abs() < 1e-6);
    }
}
