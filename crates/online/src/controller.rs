//! The implementable controllers and their per-interval trajectories.

use leakage_core::CircuitParams;
use leakage_trace::Cycle;
use serde::{Deserialize, Serialize};

/// What one frame did over one rest interval: the simulator's unit of
/// accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Trajectory {
    /// Leakage + transition energy over the interval (excluding any
    /// refetch and per-line counter overhead, which the simulator adds).
    pub energy: f64,
    /// Stall cycles charged to the closing access (0 without one).
    pub stall: u64,
    /// Whether the closing access needs a refetch *if it was a hit*
    /// (the line's data was destroyed while it slept).
    pub data_destroyed: bool,
    /// Cycles spent per mode (ramps count toward their destination);
    /// indexed by [`PowerMode::ALL`](leakage_core::PowerMode::ALL)
    /// order: active, drowsy, sleep.
    pub mode_cycles: [u64; 3],
}

/// An implementable leakage controller.
///
/// Controllers are *time-since-last-access* machines (plus global
/// clocks), so a frame's behaviour over a whole rest interval is a pure
/// function of the interval's absolute endpoints — which is what lets
/// the simulator run at one unit of work per access instead of per
/// cycle, while remaining exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Controller {
    /// Cache decay: gate a line off `theta` cycles after its last
    /// access.
    Decay {
        /// Decay threshold in cycles.
        theta: u64,
        /// Per-line decay-counter leakage as a fraction of active line
        /// leakage.
        counter_ratio: f64,
        /// `true` reproduces the analytic [`DecaySleep`] semantics
        /// exactly (a line only decays when the whole power-down /
        /// power-up sequence fits in the interval); `false` commits at
        /// the timer like hardware and pays for overshoots.
        ///
        /// [`DecaySleep`]: leakage_core::policy::DecaySleep
        idealized: bool,
    },
    /// Hierarchical-counter decay (Kaxiras et al.): a global clock
    /// ticks every `tick` cycles; each line holds a `bits`-bit
    /// saturating counter reset on access; the line gates off when its
    /// counter saturates. Effective decay is quantized into
    /// `[(2^bits − 1) · tick, 2^bits · tick)` depending on phase.
    QuantizedDecay {
        /// Global tick period in cycles.
        tick: u64,
        /// Per-line counter width in bits.
        bits: u32,
        /// Per-line counter leakage as a fraction of active leakage.
        counter_ratio: f64,
    },
    /// Periodic drowsy (Flautner/Kim): every `window` cycles all lines
    /// drop to the drowsy voltage; an access wakes its line.
    PeriodicDrowsy {
        /// Global drowsy-tick period in cycles.
        window: u64,
    },
    /// The implementable hybrid: drowsy at the first global tick after
    /// the last access, gated off once the per-line decay timer hits
    /// `theta` — both circuit techniques, no oracle.
    DrowsyThenSleep {
        /// Global drowsy-tick period in cycles.
        window: u64,
        /// Decay-to-gated threshold in cycles.
        theta: u64,
        /// Per-line counter leakage as a fraction of active leakage.
        counter_ratio: f64,
    },
    /// Feedback-controlled decay: the threshold starts at `theta0` and
    /// is re-tuned every `epoch` cycles from the observed induced-miss
    /// rate — doubled when misses exceed `target_per_kilo_access`
    /// induced misses per 1000 accesses, halved when under half of it,
    /// clamped to `[theta_min, theta_max]`.
    AdaptiveDecay {
        /// Initial decay threshold, cycles.
        theta0: u64,
        /// Lower clamp for the threshold.
        theta_min: u64,
        /// Upper clamp for the threshold.
        theta_max: u64,
        /// Re-tuning period, cycles.
        epoch: u64,
        /// Target induced misses per 1000 accesses.
        target_per_kilo_access: f64,
        /// Per-line counter leakage as a fraction of active leakage.
        counter_ratio: f64,
    },
}

impl Controller {
    /// A realistic decay controller with the default 1 % counter.
    pub fn decay(theta: u64) -> Self {
        Controller::Decay {
            theta,
            counter_ratio: 0.01,
            idealized: false,
        }
    }

    /// The idealized decay controller matching the analytic model.
    pub fn decay_idealized(theta: u64) -> Self {
        Controller::Decay {
            theta,
            counter_ratio: 0.01,
            idealized: true,
        }
    }

    /// Kaxiras-style two-bit hierarchical decay approximating `theta`.
    pub fn quantized_decay(theta: u64) -> Self {
        Controller::QuantizedDecay {
            // Saturation after 2^bits - 1 ticks lands the effective
            // threshold near theta on average.
            tick: (theta / 3).max(1),
            bits: 2,
            counter_ratio: 0.01,
        }
    }

    /// A periodic drowsy controller.
    pub fn periodic_drowsy(window: u64) -> Self {
        Controller::PeriodicDrowsy { window }
    }

    /// The implementable hybrid with the evaluated configuration.
    pub fn drowsy_then_sleep(window: u64, theta: u64) -> Self {
        Controller::DrowsyThenSleep {
            window,
            theta,
            counter_ratio: 0.01,
        }
    }

    /// A reasonable adaptive-decay configuration.
    pub fn adaptive_decay() -> Self {
        Controller::AdaptiveDecay {
            theta0: 10_000,
            theta_min: 1_000,
            theta_max: 512_000,
            epoch: 100_000,
            target_per_kilo_access: 5.0,
            counter_ratio: 0.01,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> String {
        match self {
            Controller::Decay {
                theta, idealized, ..
            } => {
                if *idealized {
                    format!("Decay({theta}, idealized)")
                } else {
                    format!("Decay({theta})")
                }
            }
            Controller::QuantizedDecay { tick, bits, .. } => {
                format!("QuantizedDecay({bits}-bit x {tick})")
            }
            Controller::PeriodicDrowsy { window } => format!("PeriodicDrowsy({window})"),
            Controller::DrowsyThenSleep { window, theta, .. } => {
                format!("DrowsyThenSleep({window}, {theta})")
            }
            Controller::AdaptiveDecay { theta0, .. } => format!("AdaptiveDecay(from {theta0})"),
        }
    }

    /// Per-cycle per-line static overhead (decay counters), as a
    /// fraction of active leakage.
    pub fn counter_ratio(&self) -> f64 {
        match self {
            Controller::Decay { counter_ratio, .. }
            | Controller::QuantizedDecay { counter_ratio, .. }
            | Controller::DrowsyThenSleep { counter_ratio, .. }
            | Controller::AdaptiveDecay { counter_ratio, .. } => *counter_ratio,
            Controller::PeriodicDrowsy { .. } => 0.0,
        }
    }

    /// The effective decay threshold for a timer armed at `t0`, for the
    /// decay-family controllers (`None` for periodic drowsy). For
    /// quantized decay this depends on the phase of `t0` against the
    /// global tick.
    pub fn effective_theta(&self, t0: Cycle, adaptive_theta: u64) -> Option<u64> {
        match self {
            Controller::Decay { theta, .. } => Some(*theta),
            Controller::QuantizedDecay { tick, bits, .. } => {
                let max_count = (1u64 << bits) - 1;
                let first_tick = (t0.raw() / tick + 1) * tick;
                Some(first_tick + (max_count - 1) * tick - t0.raw())
            }
            Controller::AdaptiveDecay { .. } => Some(adaptive_theta),
            Controller::DrowsyThenSleep { theta, .. } => Some(*theta),
            Controller::PeriodicDrowsy { .. } => None,
        }
    }

    /// Computes the frame's trajectory over the rest interval
    /// `[t0, t1)`, where `t0` is the previous access (or arming point)
    /// and `closes_with_access` says whether `t1` is an access (paying
    /// wakeup costs) or the end of the trace.
    ///
    /// `adaptive_theta` is the decay threshold that was in force when
    /// the timer armed (ignored by non-adaptive controllers).
    pub fn trajectory(
        &self,
        params: &CircuitParams,
        t0: Cycle,
        t1: Cycle,
        closes_with_access: bool,
        adaptive_theta: u64,
    ) -> Trajectory {
        let d = t1.since(t0);
        match self {
            Controller::Decay { idealized, .. } => {
                let theta = self.effective_theta(t0, adaptive_theta).expect("decay");
                decay_trajectory(params, d, theta, *idealized, closes_with_access)
            }
            Controller::QuantizedDecay { .. } | Controller::AdaptiveDecay { .. } => {
                let theta = self.effective_theta(t0, adaptive_theta).expect("decay");
                decay_trajectory(params, d, theta, false, closes_with_access)
            }
            Controller::PeriodicDrowsy { window } => {
                periodic_trajectory(params, t0, d, *window, closes_with_access)
            }
            Controller::DrowsyThenSleep { window, theta, .. } => {
                hybrid_trajectory(params, t0, d, *window, *theta, closes_with_access)
            }
        }
    }
}

/// Decay-family trajectory over a rest interval of `d` cycles with
/// threshold `theta`.
fn decay_trajectory(
    params: &CircuitParams,
    d: u64,
    theta: u64,
    idealized: bool,
    closes_with_access: bool,
) -> Trajectory {
    let t = params.timings();
    let pa = params.powers().active;
    let ps = params.powers().sleep;
    let ramp = params.transition_model();
    let exit = if closes_with_access { t.s3 + t.s4 } else { 0 };

    let stays_active = if idealized {
        d <= theta + t.s1 + exit
    } else {
        d <= theta
    };
    if stays_active {
        return Trajectory {
            energy: pa * d as f64,
            stall: 0,
            data_destroyed: false,
            mode_cycles: [d, 0, 0],
        };
    }

    // Committed: active head, power-down ramp (possibly truncated by the
    // access), then gated. The idealized variant books the wakeup ramp
    // *inside* the interval (the analytic model's convention); the
    // realistic one wakes after the access arrives, stretching into the
    // stall.
    let down = (d - theta).min(t.s1);
    let slept = if idealized && closes_with_access {
        d - theta - down - exit
    } else {
        d - theta - down
    };
    let mut energy = pa * theta as f64
        + ramp.ramp_power(pa, ps) * down as f64
        + ps * slept as f64;
    let mut stall = 0;
    if closes_with_access {
        // The line must be powered back up and (on a hit) refetched; the
        // wakeup is unhidden under the realistic variant, so the access
        // stalls for it.
        energy += ramp.ramp_power(ps, pa) * t.s3 as f64 + pa * t.s4 as f64;
        stall = t.s3 + t.s4;
    }
    Trajectory {
        energy,
        stall,
        data_destroyed: true,
        mode_cycles: [theta, 0, d - theta],
    }
}

/// Periodic-drowsy trajectory: the first global tick after `t0` drops
/// the line to the drowsy voltage.
fn periodic_trajectory(
    params: &CircuitParams,
    t0: Cycle,
    d: u64,
    window: u64,
    closes_with_access: bool,
) -> Trajectory {
    let t = params.timings();
    let pa = params.powers().active;
    let pd = params.powers().drowsy;
    let ramp = params.transition_model();
    // First tick strictly after t0.
    let head = window - (t0.raw() % window);
    if d <= head {
        return Trajectory {
            energy: pa * d as f64,
            stall: 0,
            data_destroyed: false,
            mode_cycles: [d, 0, 0],
        };
    }
    let down = (d - head).min(t.d1);
    let rest = d - head - down;
    let mut energy =
        pa * head as f64 + ramp.ramp_power(pa, pd) * down as f64 + pd * rest as f64;
    let mut stall = 0;
    if closes_with_access {
        energy += ramp.ramp_power(pd, pa) * t.d3 as f64;
        stall = t.d3;
    }
    Trajectory {
        energy,
        stall,
        data_destroyed: false, // drowsy preserves state
        mode_cycles: [head, d - head, 0],
    }
}

/// The implementable hybrid trajectory: drowsy at the first tick after
/// `t0`, gated at `t0 + theta`.
fn hybrid_trajectory(
    params: &CircuitParams,
    t0: Cycle,
    d: u64,
    window: u64,
    theta: u64,
    closes_with_access: bool,
) -> Trajectory {
    let t = params.timings();
    let pa = params.powers().active;
    let pd = params.powers().drowsy;
    let ps = params.powers().sleep;
    let ramp = params.transition_model();
    let head = window - (t0.raw() % window);
    // If the decay fires before (or at) the drowsy tick, this degrades
    // to plain decay.
    if theta <= head {
        return Controller::Decay {
            theta,
            counter_ratio: 0.0,
            idealized: false,
        }
        .trajectory(params, t0, t0.advanced(d), closes_with_access, 0);
    }
    if d <= head {
        return Trajectory {
            energy: pa * d as f64,
            stall: 0,
            data_destroyed: false,
            mode_cycles: [d, 0, 0],
        };
    }
    // Drowsy descent.
    let down = (d - head).min(t.d1);
    if d <= theta {
        let rest = d - head - down;
        let mut energy =
            pa * head as f64 + ramp.ramp_power(pa, pd) * down as f64 + pd * rest as f64;
        let mut stall = 0;
        if closes_with_access {
            energy += ramp.ramp_power(pd, pa) * t.d3 as f64;
            stall = t.d3;
        }
        return Trajectory {
            energy,
            stall,
            data_destroyed: false,
            mode_cycles: [head, d - head, 0],
        };
    }
    // Gated descent at theta.
    let drowsy_span = theta - head - down.min(theta - head);
    let gate_down = (d - theta).min(t.s1);
    let slept = d - theta - gate_down;
    let mut energy = pa * head as f64
        + ramp.ramp_power(pa, pd) * down as f64
        + pd * drowsy_span as f64
        + ramp.ramp_power(pd, ps) * gate_down as f64
        + ps * slept as f64;
    let mut stall = 0;
    if closes_with_access {
        energy += ramp.ramp_power(ps, pa) * t.s3 as f64 + pa * t.s4 as f64;
        stall = t.s3 + t.s4;
    }
    Trajectory {
        energy,
        stall,
        data_destroyed: true,
        mode_cycles: [head, theta - head, d - theta],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_core::TechnologyNode;

    fn params() -> CircuitParams {
        CircuitParams::for_node(TechnologyNode::N70)
    }

    fn c(raw: u64) -> Cycle {
        Cycle::new(raw)
    }

    #[test]
    fn decay_short_interval_stays_active() {
        let p = params();
        let traj = Controller::decay(10_000).trajectory(&p, c(0), c(5_000), true, 0);
        assert_eq!(traj.stall, 0);
        assert!(!traj.data_destroyed);
        assert_eq!(traj.mode_cycles, [5_000, 0, 0]);
        assert!((traj.energy - p.powers().active * 5_000.0).abs() < 1e-9);
    }

    #[test]
    fn decay_long_interval_sleeps_and_stalls() {
        let p = params();
        let traj = Controller::decay(10_000).trajectory(&p, c(0), c(100_000), true, 0);
        assert_eq!(traj.stall, 7); // s3 + s4
        assert!(traj.data_destroyed);
        assert_eq!(traj.mode_cycles[0], 10_000);
        assert_eq!(traj.mode_cycles[2], 90_000);
        // Far below always-active energy.
        assert!(traj.energy < p.powers().active * 100_000.0 * 0.2);
    }

    #[test]
    fn realistic_decay_pays_for_overshoot_idealized_does_not() {
        let p = params();
        // Interval just past theta: hardware commits to the ramp.
        let d = 10_010;
        let real = Controller::decay(10_000).trajectory(&p, c(0), c(d), true, 0);
        let ideal = Controller::decay_idealized(10_000).trajectory(&p, c(0), c(d), true, 0);
        assert!(real.data_destroyed);
        assert_eq!(real.stall, 7);
        assert!(!ideal.data_destroyed);
        assert_eq!(ideal.stall, 0);
        // The overshoot is pure loss: the realistic variant pays more.
        assert!(real.energy > ideal.energy);
    }

    #[test]
    fn idealized_matches_committed_far_beyond_threshold() {
        let p = params();
        let d = 1_000_000;
        let real = Controller::decay(10_000).trajectory(&p, c(0), c(d), true, 0);
        let ideal = Controller::decay_idealized(10_000).trajectory(&p, c(0), c(d), true, 0);
        // Deep asleep both ways; tiny difference from where the rest
        // cycles sit relative to the ramps.
        assert!((real.energy - ideal.energy).abs() / ideal.energy < 1e-3);
    }

    #[test]
    fn quantized_decay_effective_theta_depends_on_phase() {
        let ctrl = Controller::quantized_decay(12_000); // tick = 4000, 2 bits
        // Armed right after a tick: nearly 3 full ticks until saturation.
        let just_after = ctrl.effective_theta(c(4_001), 0).unwrap();
        // Armed right before a tick: barely over 2 ticks.
        let just_before = ctrl.effective_theta(c(7_999), 0).unwrap();
        assert!(just_after > just_before);
        assert!(just_before >= 8_000);
        assert!(just_after <= 12_000);
    }

    #[test]
    fn effective_theta_at_exact_tick_boundaries() {
        // tick = 4000, 2 bits => max_count = 3: a timer armed *on* a
        // tick sees the next tick one full period away and saturates
        // after (max_count - 1) further ticks, so the effective
        // threshold is exactly 3 ticks — the maximum the quantized
        // hardware can express.
        let ctrl = Controller::quantized_decay(12_000);
        assert_eq!(ctrl.effective_theta(c(4_000), 0), Some(12_000));
        assert_eq!(ctrl.effective_theta(c(8_000), 0), Some(12_000));
        assert_eq!(ctrl.effective_theta(c(0), 0), Some(12_000));
        // One cycle past the boundary loses exactly that cycle; one
        // cycle before it sits at the minimum (barely over 2 ticks).
        assert_eq!(ctrl.effective_theta(c(4_001), 0), Some(11_999));
        assert_eq!(ctrl.effective_theta(c(8_001), 0), Some(11_999));
        assert_eq!(ctrl.effective_theta(c(3_999), 0), Some(8_001));
        assert_eq!(ctrl.effective_theta(c(7_999), 0), Some(8_001));
        // The phase-dependent threshold is always within (2, 3] ticks.
        for t0 in [0u64, 1, 3_999, 4_000, 4_001, 7_999, 8_000, 8_001, 11_999] {
            let theta = ctrl.effective_theta(c(t0), 0).unwrap();
            assert!(theta > 8_000 && theta <= 12_000, "t0={t0}: theta {theta}");
        }
    }

    #[test]
    fn effective_theta_family_coverage() {
        // The guarded `expect("decay")` transitions in `trajectory`
        // rely on exactly this Some/None split; assert it explicitly
        // at the boundary cycles used above.
        for t0 in [c(4_000), c(8_000)] {
            assert_eq!(Controller::decay(10_000).effective_theta(t0, 0), Some(10_000));
            assert_eq!(
                Controller::decay_idealized(10_000).effective_theta(t0, 0),
                Some(10_000)
            );
            assert_eq!(
                Controller::drowsy_then_sleep(4_000, 60_000).effective_theta(t0, 0),
                Some(60_000)
            );
            // Adaptive decay reports whatever threshold armed the timer.
            assert_eq!(
                Controller::adaptive_decay().effective_theta(t0, 7_777),
                Some(7_777)
            );
            assert_eq!(Controller::periodic_drowsy(4_000).effective_theta(t0, 0), None);
        }
    }

    #[test]
    fn periodic_drowsy_phase_exactness() {
        let p = params();
        let ctrl = Controller::periodic_drowsy(4_000);
        // Armed at cycle 3,900: the tick at 4,000 hits after 100 cycles.
        let traj = ctrl.trajectory(&p, c(3_900), c(13_900), true, 0);
        assert_eq!(traj.mode_cycles[0], 100);
        assert_eq!(traj.mode_cycles[1], 9_900);
        assert_eq!(traj.stall, p.timings().d3);
        assert!(!traj.data_destroyed, "drowsy preserves data");
        // Armed at cycle 0 (on a tick): full window of active head.
        let traj = ctrl.trajectory(&p, c(0), c(10_000), true, 0);
        assert_eq!(traj.mode_cycles[0], 4_000);
    }

    #[test]
    fn trajectories_tile_the_interval() {
        let p = params();
        for ctrl in [
            Controller::decay(5_000),
            Controller::decay_idealized(5_000),
            Controller::quantized_decay(6_000),
            Controller::periodic_drowsy(4_000),
            Controller::drowsy_then_sleep(4_000, 60_000),
            Controller::adaptive_decay(),
        ] {
            for d in [1u64, 100, 5_001, 80_000] {
                let traj = ctrl.trajectory(&p, c(123_456), c(123_456 + d), true, 10_000);
                let covered: u64 = traj.mode_cycles.iter().sum();
                assert_eq!(covered, d, "{}, d={d}", ctrl.name());
            }
        }
    }

    #[test]
    fn hybrid_controller_descends_both_modes() {
        let p = params();
        let ctrl = Controller::drowsy_then_sleep(4_000, 50_000);
        // Medium interval: drowsy only, data preserved.
        let mid = ctrl.trajectory(&p, c(0), c(30_000), true, 0);
        assert!(!mid.data_destroyed);
        assert_eq!(mid.stall, p.timings().d3);
        assert!(mid.mode_cycles[1] > 0 && mid.mode_cycles[2] == 0);
        // Long interval: gated, refetch needed.
        let long = ctrl.trajectory(&p, c(0), c(500_000), true, 0);
        assert!(long.data_destroyed);
        assert_eq!(long.stall, p.timings().s3 + p.timings().s4);
        assert!(long.mode_cycles[2] > 0);
        // The hybrid's energy on the long interval beats pure periodic
        // drowsy and pure decay with the same knobs.
        let drowsy = Controller::periodic_drowsy(4_000).trajectory(&p, c(0), c(500_000), true, 0);
        let decay = Controller::Decay { theta: 50_000, counter_ratio: 0.0, idealized: false }
            .trajectory(&p, c(0), c(500_000), true, 0);
        assert!(long.energy < drowsy.energy);
        assert!(long.energy < decay.energy);
    }

    #[test]
    fn names_are_informative() {
        assert!(Controller::decay(10_000).name().contains("10000"));
        assert!(Controller::decay_idealized(1).name().contains("idealized"));
        assert!(Controller::quantized_decay(12_000).name().contains("2-bit"));
        assert!(Controller::adaptive_decay().name().contains("Adaptive"));
    }

    #[test]
    fn counter_ratios() {
        assert!(Controller::decay(1).counter_ratio() > 0.0);
        assert_eq!(Controller::periodic_drowsy(100).counter_ratio(), 0.0);
    }
}
