//! A DRI-cache-style resizing simulator (Powell et al., the paper's
//! reference \[12\] — the original gated-Vdd architecture).
//!
//! Where decay gates individual lines, the DRI i-cache gates *ways*: a
//! miss counter is compared against a target once per epoch, and the
//! cache halves (doubles) its enabled associativity when misses run
//! under (over) the bound. Coarse, simple — and the first architecture
//! to use the circuit technique this paper takes as one of its two
//! primitives.
//!
//! The simulator runs the resizable cache against a full-size *shadow*
//! cache: the shadow provides the baseline miss stream, so the resize
//! penalty (extra misses, each costing a refetch `C_D`) is measured
//! rather than assumed. Leakage is integrated over time as
//! `enabled frames × P_active + gated frames × P_sleep`.

use leakage_cachesim::{Cache, CacheConfig};
use leakage_core::CircuitParams;
use leakage_trace::{Cycle, LineAddr};
use serde::{Deserialize, Serialize};

/// Configuration of the resize controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriConfig {
    /// Re-evaluation period, cycles.
    pub epoch: u64,
    /// Miss-count bound per epoch: fewer misses → shrink, more than
    /// `2×` this → grow (Powell et al.'s miss-bound scheme).
    pub miss_bound: u64,
    /// Smallest permitted associativity.
    pub min_ways: u32,
}

impl Default for DriConfig {
    fn default() -> Self {
        DriConfig {
            epoch: 100_000,
            miss_bound: 100,
            min_ways: 1,
        }
    }
}

/// Results of one DRI run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriReport {
    /// Total leakage + refetch energy, pJ.
    pub energy: f64,
    /// Always-active full-capacity baseline energy, pJ.
    pub baseline: f64,
    /// Accesses observed.
    pub accesses: u64,
    /// Misses of the resized cache.
    pub misses: u64,
    /// Misses the full-size shadow cache would have had.
    pub shadow_misses: u64,
    /// Time-averaged enabled associativity.
    pub avg_ways: f64,
    /// `(cycle, ways)` resize history (initial setting first).
    pub resize_history: Vec<(u64, u32)>,
}

impl DriReport {
    /// Leakage saving vs the always-active full-size baseline.
    pub fn saving_fraction(&self) -> f64 {
        if self.baseline == 0.0 {
            0.0
        } else {
            1.0 - self.energy / self.baseline
        }
    }

    /// Saving in percent.
    pub fn saving_percent(&self) -> f64 {
        self.saving_fraction() * 100.0
    }

    /// Extra misses the resizing caused, per 1000 accesses.
    pub fn extra_misses_per_kilo_access(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            1_000.0 * self.misses.saturating_sub(self.shadow_misses) as f64
                / self.accesses as f64
        }
    }
}

/// The resizable cache plus its full-size shadow.
#[derive(Debug, Clone)]
pub struct DriCacheSim {
    cache: Cache,
    shadow: Cache,
    params: CircuitParams,
    config: DriConfig,
    ways: u32,
    epoch_end: u64,
    epoch_misses: u64,
    // Leakage integration: frames enabled since `last_change`.
    last_change: u64,
    energy: f64,
    weighted_way_cycles: f64,
    accesses: u64,
    misses: u64,
    shadow_misses: u64,
    resize_history: Vec<(u64, u32)>,
    now: u64,
}

impl DriCacheSim {
    /// Creates a simulator over the given cache geometry.
    pub fn new(geometry: CacheConfig, params: CircuitParams, config: DriConfig) -> Self {
        let cache = Cache::new(geometry.clone());
        let ways = geometry.ways();
        DriCacheSim {
            shadow: Cache::new(geometry),
            cache,
            params,
            ways,
            epoch_end: config.epoch,
            config,
            epoch_misses: 0,
            last_change: 0,
            energy: 0.0,
            weighted_way_cycles: 0.0,
            accesses: 0,
            misses: 0,
            shadow_misses: 0,
            resize_history: vec![(0, ways)],
            now: 0,
        }
    }

    /// The currently enabled associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Integrates leakage from `last_change` to `now` at the current
    /// way count.
    fn integrate(&mut self, now: u64) {
        let span = now.saturating_sub(self.last_change) as f64;
        if span > 0.0 {
            let frames = self.cache.config().num_frames() as f64;
            let per_set = self.cache.config().ways() as f64;
            let enabled = frames * f64::from(self.ways) / per_set;
            let gated = frames - enabled;
            self.energy += span
                * (enabled * self.params.powers().active + gated * self.params.powers().sleep);
            self.weighted_way_cycles += span * f64::from(self.ways);
            self.last_change = now;
        }
    }

    fn retune(&mut self, now: u64) {
        while now >= self.epoch_end {
            let new_ways = if self.epoch_misses < self.config.miss_bound {
                (self.ways / 2).max(self.config.min_ways)
            } else if self.epoch_misses > 2 * self.config.miss_bound {
                (self.ways * 2).min(self.cache.config().ways())
            } else {
                self.ways
            };
            if new_ways != self.ways {
                self.integrate(self.epoch_end.min(now));
                self.ways = new_ways;
                self.cache.set_enabled_ways(new_ways);
                self.resize_history.push((self.epoch_end, new_ways));
            }
            self.epoch_misses = 0;
            self.epoch_end += self.config.epoch;
        }
    }

    /// Feeds one access at `cycle`.
    pub fn on_access(&mut self, line: LineAddr, cycle: Cycle) {
        let now = cycle.raw();
        self.now = self.now.max(now + 1);
        self.retune(now);
        self.accesses += 1;
        let result = self.cache.access(line);
        if !result.hit {
            self.misses += 1;
            self.epoch_misses += 1;
            // Every miss refetches; the baseline pays only for shadow
            // misses, so the *difference* is the resize penalty.
            self.energy += self.params.refetch_energy();
        }
        if !self.shadow.access(line).hit {
            self.shadow_misses += 1;
        }
    }

    /// Ends the run and reports.
    pub fn finish(mut self) -> DriReport {
        let end = self.now;
        self.integrate(end);
        let frames = self.cache.config().num_frames() as f64;
        // The baseline (full-size, always-active) also refetches its own
        // (shadow) misses; subtract that common term so savings isolate
        // the leakage trade-off.
        let baseline = frames * self.params.powers().active * end as f64
            + self.shadow_misses as f64 * self.params.refetch_energy();
        DriReport {
            energy: self.energy,
            baseline,
            accesses: self.accesses,
            misses: self.misses,
            shadow_misses: self.shadow_misses,
            avg_ways: if end == 0 {
                f64::from(self.ways)
            } else {
                self.weighted_way_cycles / end as f64
            },
            resize_history: self.resize_history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_core::TechnologyNode;

    fn sim(config: DriConfig) -> DriCacheSim {
        DriCacheSim::new(
            CacheConfig::new("dri", 8 * 1024, 4, 64, 1).unwrap(),
            CircuitParams::for_node(TechnologyNode::N70),
            config,
        )
    }

    #[test]
    fn quiet_workload_shrinks_the_cache() {
        let mut s = sim(DriConfig {
            epoch: 10_000,
            miss_bound: 50,
            min_ways: 1,
        });
        // A tiny working set: 8 lines, no capacity pressure.
        for i in 0..100u64 {
            for line in 0..8u64 {
                s.on_access(LineAddr::new(line), Cycle::new(i * 1_000 + line));
            }
        }
        assert_eq!(s.ways(), 1, "shrunk to the minimum");
        let report = s.finish();
        assert!(report.avg_ways < 4.0);
        assert!(report.saving_fraction() > 0.4, "{}", report.saving_percent());
        assert!(report.resize_history.len() > 1);
    }

    #[test]
    fn thrashing_workload_grows_back() {
        let mut s = sim(DriConfig {
            epoch: 5_000,
            miss_bound: 10,
            min_ways: 1,
        });
        // First: quiet phase shrinks it.
        for i in 0..30u64 {
            s.on_access(LineAddr::new(0), Cycle::new(i * 1_000));
        }
        assert_eq!(s.ways(), 1);
        // Then: a working set needing full associativity (lines mapping
        // to one set).
        let mut t = 40_000u64;
        for _ in 0..200 {
            for conflict in 0..4u64 {
                s.on_access(LineAddr::new(conflict * 32), Cycle::new(t));
                t += 25;
            }
        }
        assert!(s.ways() > 1, "grew back under miss pressure");
    }

    #[test]
    fn extra_misses_are_measured_not_assumed() {
        let mut s = sim(DriConfig {
            epoch: 5_000,
            miss_bound: 1_000_000, // always shrink
            min_ways: 1,
        });
        // Working set of 2 conflicting lines: fits in 4 ways, thrashes in 1.
        let mut t = 0u64;
        for _ in 0..3_000 {
            s.on_access(LineAddr::new(0), Cycle::new(t));
            s.on_access(LineAddr::new(32), Cycle::new(t + 5));
            t += 10;
        }
        let report = s.finish();
        assert!(report.misses > report.shadow_misses);
        assert!(report.extra_misses_per_kilo_access() > 10.0);
    }

    #[test]
    fn no_resize_means_baseline_energy_modulo_refetch() {
        let mut s = sim(DriConfig {
            epoch: 1_000_000_000, // never retunes
            miss_bound: 0,
            min_ways: 1,
        });
        for i in 0..1_000u64 {
            s.on_access(LineAddr::new(i % 16), Cycle::new(i * 10));
        }
        let report = s.finish();
        assert_eq!(report.misses, report.shadow_misses);
        assert!((report.energy - report.baseline).abs() / report.baseline < 1e-9);
        assert!(report.saving_fraction().abs() < 1e-9);
        assert_eq!(report.avg_ways, 4.0);
    }
}
