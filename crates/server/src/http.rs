//! A minimal HTTP/1.1 protocol layer over `std::net` — request
//! parsing, response writing, and a tiny blocking client (used by the
//! load generator and the integration tests).
//!
//! Scope is deliberately narrow: one request per connection
//! (`Connection: close`), `Content-Length` bodies only (no chunked
//! encoding), ASCII request targets with percent-escapes. That subset
//! is everything the analysis service needs, and keeping it small is
//! what lets the crate stay dependency-free.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Maximum size of the request line plus headers.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Maximum accepted request body (`/v1/sweep` batches are the only
/// bodies; a thousand points is ~100 bytes each).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request: method, percent-decoded path, decoded query
/// pairs in arrival order, and the raw body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Percent-decoded path, always starting with `/`.
    pub path: String,
    /// Percent-decoded `key=value` pairs, in query-string order.
    pub query: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The canonical cache key for this request: method and path plus
    /// the query pairs re-sorted, so `?a=1&b=2` and `?b=2&a=1` share a
    /// response-cache entry.
    pub fn canonical_key(&self) -> String {
        let mut pairs: Vec<&(String, String)> = self.query.iter().collect();
        pairs.sort();
        let query: Vec<String> = pairs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{} {}?{}", self.method, self.path, query.join("&"))
    }
}

/// Why a request could not be parsed, with the status the server
/// should answer.
#[derive(Debug)]
pub struct BadRequest {
    /// The HTTP status to answer with (400, 413, or 431).
    pub status: u16,
    /// Human-readable reason, echoed in the error body.
    pub reason: String,
}

impl BadRequest {
    fn new(status: u16, reason: impl Into<String>) -> Self {
        BadRequest {
            status,
            reason: reason.into(),
        }
    }
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// `Ok(Err(_))` for malformed requests the server should answer with
/// a 4xx; `Err(_)` for transport failures (timeout, reset) where no
/// answer can be delivered.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Result<Request, BadRequest>> {
    let mut reader = BufReader::new(stream);
    let mut header = Vec::new();
    // Read byte-wise up to the blank line; bounded by MAX_HEADER_BYTES.
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => {
                if header.is_empty() {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before request",
                    ));
                }
                break;
            }
            _ => header.push(byte[0]),
        }
        if header.ends_with(b"\r\n\r\n") || header.ends_with(b"\n\n") {
            break;
        }
        if header.len() > MAX_HEADER_BYTES {
            return Ok(Err(BadRequest::new(431, "request headers too large")));
        }
    }
    let text = String::from_utf8_lossy(&header);
    let mut lines = text.lines();
    let request_line = match lines.next() {
        Some(line) if !line.trim().is_empty() => line,
        _ => return Ok(Err(BadRequest::new(400, "empty request line"))),
    };
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(method), Some(target)) => (method.to_ascii_uppercase(), target),
        _ => return Ok(Err(BadRequest::new(400, "malformed request line"))),
    };

    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            match value.trim().parse::<usize>() {
                Ok(n) => content_length = n,
                Err(_) => return Ok(Err(BadRequest::new(400, "bad Content-Length"))),
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Ok(Err(BadRequest::new(413, "request body too large")));
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    };
    let Some(path) = percent_decode(raw_path) else {
        return Ok(Err(BadRequest::new(400, "bad percent-escape in path")));
    };
    if !path.starts_with('/') {
        return Ok(Err(BadRequest::new(400, "request target must be absolute")));
    }
    let mut query = Vec::new();
    for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        match (percent_decode(k), percent_decode(v)) {
            (Some(k), Some(v)) => query.push((k, v)),
            _ => return Ok(Err(BadRequest::new(400, "bad percent-escape in query"))),
        }
    }

    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body)?;
    }
    Ok(Ok(Request {
        method,
        path,
        query,
        body,
    }))
}

/// Decodes `%XX` escapes and `+`-as-space. `None` on truncated or
/// non-hex escapes.
pub fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hex = std::str::from_utf8(hex).ok()?;
                out.push(u8::from_str_radix(hex, 16).ok()?);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// A response ready to serialize: status, content type, extra headers
/// (e.g. `Retry-After`), body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra `(name, value)` headers.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// An `application/json` response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A `text/csv` response.
    pub fn csv(body: String) -> Self {
        Response {
            status: 200,
            content_type: "text/csv",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A JSON error body `{"error": reason}` with the given status.
    pub fn error(status: u16, reason: &str) -> Self {
        let body = leakage_telemetry::json::object([
            leakage_telemetry::json::key("error") + &leakage_telemetry::json::string(reason),
        ]);
        Response::json(status, body)
    }

    /// Adds a header, builder-style.
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.headers.push((name.to_string(), value));
        self
    }

    /// Serializes the response (HTTP/1.1, `Connection: close`,
    /// explicit `Content-Length`).
    ///
    /// # Errors
    ///
    /// Transport errors from the underlying stream.
    pub fn write_to(&self, stream: &mut impl Write) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// The standard reason phrase for the statuses this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// What the blocking client got back.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers, lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// One blocking request over a fresh connection (the server is
/// `Connection: close`, so connection-per-request is the protocol).
///
/// # Errors
///
/// Connect/read/write failures and timeouts.
pub fn fetch(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> io::Result<ClientResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let body = body.unwrap_or_default();
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line: {status_line:?}"),
            )
        })?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let mut body = Vec::new();
    reader.read_to_end(&mut body)?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c").as_deref(), Some("a b c"));
        assert_eq!(percent_decode("plain").as_deref(), Some("plain"));
        assert_eq!(percent_decode("%2"), None);
        assert_eq!(percent_decode("%zz"), None);
    }

    #[test]
    fn canonical_key_sorts_query() {
        let req = Request {
            method: "GET".into(),
            path: "/v1/table/2".into(),
            query: vec![("scale".into(), "test".into()), ("format".into(), "csv".into())],
            body: Vec::new(),
        };
        assert_eq!(req.canonical_key(), "GET /v1/table/2?format=csv&scale=test");
        let flipped = Request {
            query: vec![("format".into(), "csv".into()), ("scale".into(), "test".into())],
            ..req.clone()
        };
        assert_eq!(req.canonical_key(), flipped.canonical_key());
    }

    #[test]
    fn responses_serialize_with_length_and_close() {
        let mut out = Vec::new();
        Response::error(503, "queue full")
            .with_header("Retry-After", "1".into())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\": \"queue full\"}"));
        let length: usize = text
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(length, "{\"error\": \"queue full\"}".len());
    }
}
