//! A minimal HTTP/1.1 protocol layer — incremental request parsing
//! over byte buffers (shared by the epoll reactor, the threaded
//! transport, and the tests), pre-serializable responses, and a small
//! blocking client with keep-alive support (used by the load
//! generator and the integration tests).
//!
//! Scope is deliberately narrow: `Content-Length` bodies, plus
//! `Transfer-Encoding: chunked` on routes that opt into streaming
//! consumption (a chunked request parses [`Parse::Complete`] at the
//! end of its header block with [`Request::chunked`] set and an empty
//! `body`; the connection layer then drives a [`ChunkedDecoder`] over
//! the wire bytes instead of buffering the body). ASCII request
//! targets with percent-escapes. Persistent connections are the
//! default (HTTP/1.1 keep-alive); `Connection: close` and HTTP/1.0
//! are honored. That subset is everything the analysis service needs,
//! and keeping it small is what lets the crate stay dependency-free.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use crate::trace::ReqTrace;

/// Maximum size of the request line plus headers.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Maximum accepted request body (`/v1/sweep` batches are the only
/// bodies; a thousand points is ~100 bytes each).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request: method, percent-decoded path, decoded query
/// pairs in arrival order, and the raw body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Percent-decoded path, always starting with `/`.
    pub path: String,
    /// Percent-decoded `key=value` pairs, in query-string order.
    pub query: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise;
    /// always empty when [`Self::chunked`] — the body is still on the
    /// wire).
    pub body: Vec<u8>,
    /// The request declared `Transfer-Encoding: chunked`: its body
    /// was **not** buffered into `body` and must be consumed from the
    /// connection through a [`ChunkedDecoder`] before the next
    /// request can be framed.
    pub chunked: bool,
    /// Whether the client asked for the connection to close after
    /// this exchange (`Connection: close`, or HTTP/1.0 without
    /// `Connection: keep-alive`).
    pub close: bool,
    /// Trace context: the id from `X-Request-Id` (0 until assigned)
    /// plus parse-time stamps filled in by the connection layer.
    pub trace: ReqTrace,
}

impl Request {
    /// A GET request to `path` with no query or body (test helper).
    pub fn get(path: &str) -> Self {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query: Vec::new(),
            body: Vec::new(),
            chunked: false,
            close: false,
            trace: ReqTrace::default(),
        }
    }

    /// The first value of query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The canonical cache key for this request: method and path plus
    /// the query pairs re-sorted, so `?a=1&b=2` and `?b=2&a=1` share a
    /// response-cache entry.
    pub fn canonical_key(&self) -> String {
        let mut pairs: Vec<&(String, String)> = self.query.iter().collect();
        pairs.sort();
        let query: Vec<String> = pairs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{} {}?{}", self.method, self.path, query.join("&"))
    }
}

/// Why a request could not be parsed, with the status the server
/// should answer.
#[derive(Debug)]
pub struct BadRequest {
    /// The HTTP status to answer with (400, 413, or 431).
    pub status: u16,
    /// Human-readable reason, echoed in the error body.
    pub reason: String,
}

impl BadRequest {
    fn new(status: u16, reason: impl Into<String>) -> Self {
        BadRequest {
            status,
            reason: reason.into(),
        }
    }
}

/// The outcome of one incremental parse attempt over a connection's
/// input buffer.
#[derive(Debug)]
pub enum Parse {
    /// A full request; `used` bytes of the buffer belong to it
    /// (pipelined successors may follow).
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes consumed from the front of the buffer.
        used: usize,
    },
    /// The buffer holds a prefix of a request; read more bytes.
    Partial,
    /// A malformed request. `used: Some(n)` means the request's
    /// framing is known — answer the error, drop `n` bytes, and the
    /// connection may continue; `None` means framing was lost (e.g.
    /// an oversized or truncated header block) and the connection
    /// must close after the error is written.
    Bad {
        /// Status and reason to answer with.
        bad: BadRequest,
        /// Bytes to consume if the connection can survive.
        used: Option<usize>,
    },
}

/// Finds the next `\n` at or after `from`, eight bytes per step
/// (SWAR zero-byte trick). Both the request parser and the loadgen's
/// response parser scan every wire byte through here, so the naive
/// byte loop shows up directly as serving throughput.
#[inline]
fn find_newline(buf: &[u8], from: usize) -> Option<usize> {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    let needle = LO * u64::from(b'\n');
    let mut i = from;
    while i + 8 <= buf.len() {
        let word = u64::from_le_bytes(buf[i..i + 8].try_into().expect("8-byte window"));
        let x = word ^ needle;
        let hit = x.wrapping_sub(LO) & !x & HI;
        if hit != 0 {
            return Some(i + hit.trailing_zeros() as usize / 8);
        }
        i += 8;
    }
    buf[i..].iter().position(|&b| b == b'\n').map(|p| i + p)
}

/// Finds the end of the header block: the index just past the first
/// `\r\n\r\n` or `\n\n`.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while let Some(nl) = find_newline(buf, i) {
        match buf.get(nl + 1) {
            Some(b'\n') => return Some(nl + 2),
            Some(b'\r') if buf.get(nl + 2) == Some(&b'\n') => return Some(nl + 3),
            _ => i = nl + 1,
        }
    }
    None
}

/// Incrementally parses one request from the front of `buf`.
///
/// This is the single parser behind every transport: the reactor
/// calls it after each readiness-driven read, the threaded transport
/// after each blocking read, and workers call it to peel pipelined
/// successors off an already-filled buffer.
pub fn parse_request(buf: &[u8]) -> Parse {
    let Some(head_end) = find_header_end(buf) else {
        if buf.len() > MAX_HEADER_BYTES {
            return Parse::Bad {
                bad: BadRequest::new(431, "request headers too large"),
                used: None,
            };
        }
        return Parse::Partial;
    };
    if head_end > MAX_HEADER_BYTES {
        return Parse::Bad {
            bad: BadRequest::new(431, "request headers too large"),
            used: None,
        };
    }

    let text = String::from_utf8_lossy(&buf[..head_end]);
    let mut lines = text.lines();
    let request_line = match lines.next() {
        Some(line) if !line.trim().is_empty() => line,
        // The header block is complete, so framing is known even
        // though the request line is junk.
        _ => {
            return Parse::Bad {
                bad: BadRequest::new(400, "empty request line"),
                used: Some(head_end),
            }
        }
    };
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(method), Some(target)) => (method.to_ascii_uppercase(), target),
        _ => {
            return Parse::Bad {
                bad: BadRequest::new(400, "malformed request line"),
                used: Some(head_end),
            }
        }
    };
    let http10 = parts.next() == Some("HTTP/1.0");

    let mut content_length = 0usize;
    let mut close = http10;
    let mut chunked = false;
    let mut trace_id = 0u64;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim();
        let value = value.trim();
        if name.eq_ignore_ascii_case("transfer-encoding") {
            if value.eq_ignore_ascii_case("chunked") {
                chunked = true;
            } else {
                // An encoding we cannot deframe: the body's extent is
                // unknowable, so the connection must close.
                return Parse::Bad {
                    bad: BadRequest::new(400, "unsupported Transfer-Encoding"),
                    used: None,
                };
            }
        } else if name.eq_ignore_ascii_case("content-length") {
            match value.parse::<usize>() {
                Ok(n) => content_length = n,
                // Framing depends on the unparseable length: close.
                Err(_) => {
                    return Parse::Bad {
                        bad: BadRequest::new(400, "bad Content-Length"),
                        used: None,
                    }
                }
            }
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                close = true;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                close = false;
            }
        } else if name.eq_ignore_ascii_case("x-request-id") {
            trace_id = crate::trace::parse_trace_id(value);
        }
    }
    if content_length > MAX_BODY_BYTES {
        // Refuse to buffer an oversized body just to resync; close.
        return Parse::Bad {
            bad: BadRequest::new(413, "request body too large"),
            used: None,
        };
    }
    // A chunked request completes at the header block: the body is
    // wire-framed by the chunk grammar (RFC 9112 overrides any
    // Content-Length) and is consumed by the connection layer through
    // a `ChunkedDecoder`, never buffered here.
    let total = if chunked { head_end } else { head_end + content_length };
    if buf.len() < total {
        return Parse::Partial;
    }
    let recoverable = |bad: BadRequest| Parse::Bad {
        bad,
        used: Some(total),
    };

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    };
    let Some(path) = percent_decode(raw_path) else {
        return recoverable(BadRequest::new(400, "bad percent-escape in path"));
    };
    if !path.starts_with('/') {
        return recoverable(BadRequest::new(400, "request target must be absolute"));
    }
    let mut query = Vec::new();
    for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        match (percent_decode(k), percent_decode(v)) {
            (Some(k), Some(v)) => query.push((k, v)),
            _ => return recoverable(BadRequest::new(400, "bad percent-escape in query")),
        }
    }

    Parse::Complete {
        request: Request {
            method,
            path,
            query,
            body: buf[head_end..total].to_vec(),
            chunked,
            close,
            trace: ReqTrace {
                id: trace_id,
                from_client: trace_id != 0,
                ..ReqTrace::default()
            },
        },
        used: total,
    }
}

/// Reads and parses one request from `stream` (blocking convenience
/// wrapper over [`parse_request`], used for one-shot contexts like
/// the shed path and tests).
///
/// # Errors
///
/// `Ok(Err(_))` for malformed requests the server should answer with
/// a 4xx; `Err(_)` for transport failures (timeout, reset) where no
/// answer can be delivered.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Result<Request, BadRequest>> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match parse_request(&buf) {
            Parse::Complete { request, .. } => return Ok(Ok(request)),
            Parse::Bad { bad, .. } => return Ok(Err(bad)),
            Parse::Partial => {}
        }
        match stream.read(&mut chunk)? {
            0 => {
                if buf.is_empty() {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before request",
                    ));
                }
                return Ok(Err(BadRequest::new(400, "truncated request")));
            }
            n => buf.extend_from_slice(&chunk[..n]),
        }
    }
}

/// Decodes `%XX` escapes and `+`-as-space. `None` on truncated or
/// non-hex escapes.
pub fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hex = std::str::from_utf8(hex).ok()?;
                out.push(u8::from_str_radix(hex, 16).ok()?);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// Progress of a [`ChunkedDecoder`] feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChunkState {
    /// Reading the hex size line of the next chunk.
    Size,
    /// Inside a chunk's data, this many bytes still to come.
    Data(u64),
    /// Expecting the `\r\n` (or bare `\n`) terminating a chunk's data.
    DataEnd,
    /// Saw the `\r` of the data terminator; `\n` must follow.
    DataLf,
    /// After the zero-size chunk: trailer lines until a blank line.
    Trailer,
    /// The terminating blank line arrived; the body is complete.
    Done,
}

/// Longest accepted chunk-size or trailer line (a size line is ~16
/// hex digits plus extensions; anything longer is an attack or a bug).
const MAX_CHUNK_LINE: usize = 1024;

/// An incremental `Transfer-Encoding: chunked` body decoder.
///
/// Feed it raw wire bytes as they arrive; it appends the deframed
/// data bytes to the caller's output buffer and reports how many
/// input bytes it consumed, stopping at the end of the body so
/// pipelined successors stay in the caller's buffer. State is a few
/// words plus one partial line — memory never scales with body size,
/// which is what lets the trace route ingest arbitrarily long
/// uploads.
///
/// # Examples
///
/// ```
/// use leakage_server::http::ChunkedDecoder;
///
/// let mut decoder = ChunkedDecoder::new();
/// let mut data = Vec::new();
/// let used = decoder.feed(b"5\r\nhello\r\n0\r\n\r\nGET /", &mut data).unwrap();
/// assert!(decoder.is_done());
/// assert_eq!(data, b"hello");
/// assert_eq!(used, 15); // "GET /" belongs to the next request
/// ```
#[derive(Debug)]
pub struct ChunkedDecoder {
    state: ChunkState,
    /// Partial size/trailer line straddling feeds.
    line: Vec<u8>,
    decoded: u64,
}

impl Default for ChunkedDecoder {
    fn default() -> Self {
        ChunkedDecoder::new()
    }
}

impl ChunkedDecoder {
    /// A decoder positioned before the first chunk-size line.
    pub fn new() -> Self {
        ChunkedDecoder {
            state: ChunkState::Size,
            line: Vec::new(),
            decoded: 0,
        }
    }

    /// Whether the terminating zero-size chunk (and its trailer) has
    /// been consumed.
    pub fn is_done(&self) -> bool {
        self.state == ChunkState::Done
    }

    /// Total data bytes deframed so far (the caller's streaming cap).
    pub fn decoded_bytes(&self) -> u64 {
        self.decoded
    }

    /// Consumes wire bytes from the front of `buf`, appending
    /// deframed data to `out`. Returns how many bytes of `buf` were
    /// consumed — all of them unless the body completed mid-buffer.
    ///
    /// # Errors
    ///
    /// Malformed chunk framing (bad hex size, missing terminator,
    /// oversized size/trailer line). Framing is lost: the connection
    /// must close after answering.
    pub fn feed(&mut self, buf: &[u8], out: &mut Vec<u8>) -> Result<usize, BadRequest> {
        let mut i = 0;
        while i < buf.len() {
            match self.state {
                ChunkState::Done => break,
                ChunkState::Size => match self.take_line(buf, &mut i)? {
                    None => {}
                    Some(line) => {
                        let size = parse_chunk_size(&line)?;
                        self.state = if size == 0 {
                            ChunkState::Trailer
                        } else {
                            ChunkState::Data(size)
                        };
                    }
                },
                ChunkState::Data(remaining) => {
                    let available = buf.len() - i;
                    let take = usize::try_from(remaining.min(available as u64))
                        .expect("bounded by available");
                    out.extend_from_slice(&buf[i..i + take]);
                    self.decoded += take as u64;
                    i += take;
                    self.state = match remaining - take as u64 {
                        0 => ChunkState::DataEnd,
                        left => ChunkState::Data(left),
                    };
                }
                ChunkState::DataEnd => {
                    match buf[i] {
                        b'\r' => self.state = ChunkState::DataLf,
                        b'\n' => self.state = ChunkState::Size,
                        _ => {
                            return Err(BadRequest::new(
                                400,
                                "chunk data not terminated by CRLF",
                            ))
                        }
                    }
                    i += 1;
                }
                ChunkState::DataLf => {
                    if buf[i] != b'\n' {
                        return Err(BadRequest::new(400, "chunk data not terminated by CRLF"));
                    }
                    i += 1;
                    self.state = ChunkState::Size;
                }
                ChunkState::Trailer => match self.take_line(buf, &mut i)? {
                    None => {}
                    Some(line) => {
                        if line.is_empty() {
                            self.state = ChunkState::Done;
                        }
                        // Non-empty trailer fields are consumed and
                        // ignored (this server solicits none).
                    }
                },
            }
        }
        Ok(i)
    }

    /// Accumulates bytes up to the next `\n`; `Some(line)` (CR
    /// stripped) once complete, `None` when the buffer ran out first.
    fn take_line(&mut self, buf: &[u8], i: &mut usize) -> Result<Option<Vec<u8>>, BadRequest> {
        match buf[*i..].iter().position(|&b| b == b'\n') {
            Some(nl) => {
                self.line.extend_from_slice(&buf[*i..*i + nl]);
                *i += nl + 1;
                if self.line.last() == Some(&b'\r') {
                    self.line.pop();
                }
                if self.line.len() > MAX_CHUNK_LINE {
                    return Err(BadRequest::new(400, "chunk framing line too long"));
                }
                Ok(Some(std::mem::take(&mut self.line)))
            }
            None => {
                self.line.extend_from_slice(&buf[*i..]);
                *i = buf.len();
                if self.line.len() > MAX_CHUNK_LINE {
                    return Err(BadRequest::new(400, "chunk framing line too long"));
                }
                Ok(None)
            }
        }
    }
}

/// Parses a chunk-size line: hex digits, optional `;extension` tail.
fn parse_chunk_size(line: &[u8]) -> Result<u64, BadRequest> {
    let text = std::str::from_utf8(line)
        .map_err(|_| BadRequest::new(400, "chunk size line is not UTF-8"))?;
    let digits = text.split(';').next().unwrap_or("").trim();
    if digits.is_empty() || digits.len() > 16 {
        return Err(BadRequest::new(400, "bad chunk size"));
    }
    u64::from_str_radix(digits, 16).map_err(|_| BadRequest::new(400, "bad chunk size"))
}

/// A response ready to serialize: status, content type, extra headers
/// (e.g. `Retry-After`), body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra `(name, value)` headers.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// An `application/json` response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A `text/csv` response.
    pub fn csv(body: String) -> Self {
        Response {
            status: 200,
            content_type: "text/csv",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A JSON error body `{"error": reason}` with the given status.
    pub fn error(status: u16, reason: &str) -> Self {
        let body = leakage_telemetry::json::object([
            leakage_telemetry::json::key("error") + &leakage_telemetry::json::string(reason),
        ]);
        Response::json(status, body)
    }

    /// Adds a header, builder-style.
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.headers.push((name.to_string(), value));
        self
    }

    /// Pre-serializes into a [`WireResponse`]: the head is rendered
    /// once, the body moves behind an `Arc`, and every later send is
    /// two `memcpy`s — this is the representation the response cache
    /// and the artifact catalog hold.
    pub fn into_wire(self) -> WireResponse {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        WireResponse {
            status: self.status,
            head: Arc::from(head.as_str()),
            body: Arc::from(self.body.into_boxed_slice()),
        }
    }

    /// Serializes the response (HTTP/1.1, `Connection: close`,
    /// explicit `Content-Length`) — the one-shot path.
    ///
    /// # Errors
    ///
    /// Transport errors from the underlying stream.
    pub fn write_to(&self, stream: &mut impl Write) -> io::Result<()> {
        let mut out = Vec::with_capacity(256 + self.body.len());
        self.clone().into_wire().serialize_into(&mut out, false);
        stream.write_all(&out)?;
        stream.flush()
    }
}

/// A pre-serialized response: rendered head (everything but the
/// `Connection` header) plus `Arc`-shared body bytes. Cloning is two
/// reference-count bumps, so cache hits and pre-built artifacts are
/// served without copying or re-rendering anything.
#[derive(Debug, Clone)]
pub struct WireResponse {
    status: u16,
    /// Status line + headers, each line `\r\n`-terminated; the
    /// `Connection` header and blank line are appended per send.
    head: Arc<str>,
    body: Arc<[u8]>,
}

impl WireResponse {
    /// HTTP status code.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// The body bytes.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// Bytes in the rendered head (without the per-send `Connection`
    /// header).
    pub fn head_len(&self) -> usize {
        self.head.len()
    }

    /// Appends the full serialized response to `out`, choosing the
    /// `Connection` header per the connection's fate. Workers batch
    /// pipelined responses into one buffer this way and issue a
    /// single write.
    pub fn serialize_into(&self, out: &mut Vec<u8>, keep_alive: bool) {
        self.serialize_traced(out, keep_alive, |_| {});
    }

    /// [`Self::serialize_into`] with per-send headers: `extra` is
    /// invoked between the shared pre-rendered head and the
    /// `Connection` line, so request-scoped headers (`X-Request-Id`,
    /// `Server-Timing`) can ride on cached/catalog responses without
    /// touching the shared bytes.
    pub fn serialize_traced(
        &self,
        out: &mut Vec<u8>,
        keep_alive: bool,
        extra: impl FnOnce(&mut Vec<u8>),
    ) {
        // Headroom covers the Connection line plus the ~200 bytes of
        // per-request tracing headers `extra` may inject.
        out.reserve(self.head.len() + 256 + self.body.len());
        out.extend_from_slice(self.head.as_bytes());
        extra(out);
        out.extend_from_slice(if keep_alive {
            b"Connection: keep-alive\r\n\r\n" as &[u8]
        } else {
            b"Connection: close\r\n\r\n"
        });
        out.extend_from_slice(&self.body);
    }

    /// The full serialized response as fresh bytes.
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::new();
        self.serialize_into(&mut out, keep_alive);
        out
    }
}

/// The standard reason phrase for the statuses this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// What the blocking client got back.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Raw header block (status line through the blank line). Headers
    /// are scanned on demand by [`Self::header`] — the loadgen parses
    /// tens of thousands of responses per second, and materializing a
    /// `Vec<(String, String)>` per response costs more than every
    /// lookup the callers actually make.
    head: Vec<u8>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let mut pos = find_newline(&self.head, 0).map_or(self.head.len(), |nl| nl + 1);
        while pos < self.head.len() {
            let nl = find_newline(&self.head, pos).unwrap_or(self.head.len());
            let line = &self.head[pos..nl];
            if let Some(colon) = line.iter().position(|&b| b == b':') {
                if header_name_is(&line[..colon], name) {
                    let value = std::str::from_utf8(&line[colon + 1..]).ok()?;
                    return Some(value.trim());
                }
            }
            pos = nl + 1;
        }
        None
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Whether raw header-name bytes match `name` (ASCII
/// case-insensitive, surrounding whitespace ignored).
fn header_name_is(raw: &[u8], name: &str) -> bool {
    let start = raw.iter().position(|b| !b.is_ascii_whitespace());
    let Some(start) = start else { return false };
    let end = raw.iter().rposition(|b| !b.is_ascii_whitespace()).map_or(0, |p| p + 1);
    raw[start..end].eq_ignore_ascii_case(name.as_bytes())
}

/// Incrementally parses one response from the front of `buf`:
/// `Some((response, used))` when complete, `None` when more bytes are
/// needed. Requires `Content-Length` framing (which this server
/// always provides). Works on raw bytes — the loadgen funnels every
/// response through here, so there is no per-header allocation and no
/// up-front UTF-8 pass over the (tracing-bearing) header block.
///
/// # Errors
///
/// `InvalidData` on a malformed status line.
pub fn parse_response(buf: &[u8]) -> io::Result<Option<(ClientResponse, usize)>> {
    let Some(head_end) = find_header_end(buf) else {
        return Ok(None);
    };
    let head = &buf[..head_end];
    let status_end = find_newline(head, 0).unwrap_or(head.len());
    let status = parse_status_line(&head[..status_end]).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "bad status line: {:?}",
                String::from_utf8_lossy(&head[..status_end])
            ),
        )
    })?;
    let mut content_length = 0usize;
    let mut pos = status_end + 1;
    while pos < head.len() {
        let nl = find_newline(head, pos).unwrap_or(head.len());
        let line = &head[pos..nl];
        // The colon scan stops at the (short) header name; values are
        // only traversed by the 8-bytes-a-step newline search.
        if let Some(colon) = line.iter().position(|&b| b == b':') {
            if header_name_is(&line[..colon], "content-length") {
                content_length = std::str::from_utf8(&line[colon + 1..])
                    .ok()
                    .and_then(|v| v.trim().parse().ok())
                    .ok_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                    })?;
            }
        }
        pos = nl + 1;
    }
    let total = head_end + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((
        ClientResponse {
            status,
            head: head.to_vec(),
            body: buf[head_end..total].to_vec(),
        },
        total,
    )))
}

/// Parses `HTTP/1.1 200 OK` → `200`.
fn parse_status_line(line: &[u8]) -> Option<u16> {
    let sp = line.iter().position(|&b| b == b' ')?;
    let rest = &line[sp + 1..];
    let end = rest.iter().position(|&b| b == b' ').unwrap_or(rest.len());
    std::str::from_utf8(&rest[..end]).ok()?.trim().parse().ok()
}

/// A persistent keep-alive HTTP client over one connection: requests
/// are written without `Connection: close`, responses parsed by
/// `Content-Length`, so the connection is reused — and multiple
/// requests may be pipelined before the first response is read.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned responses. A
    /// cursor instead of `drain` so peeling one response off a
    /// pipelined burst does not memmove the rest of the burst.
    pos: usize,
    addr: SocketAddr,
}

impl Client {
    /// Connects with `timeout` applied to connect, reads, and writes.
    ///
    /// # Errors
    ///
    /// Connect/configure failures.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
            pos: 0,
            addr,
        })
    }

    /// The underlying stream (tests shut down halves directly).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Renders one keep-alive request into `out` (no I/O). A
    /// `trace_id` adds an `X-Request-Id` header, opting the request
    /// into the server's `Server-Timing` attribution.
    pub fn render_request(
        &self,
        out: &mut Vec<u8>,
        method: &str,
        target: &str,
        trace_id: Option<u64>,
        body: &[u8],
    ) {
        out.extend_from_slice(method.as_bytes());
        out.extend_from_slice(b" ");
        out.extend_from_slice(target.as_bytes());
        out.extend_from_slice(b" HTTP/1.1\r\nHost: ");
        out.extend_from_slice(self.addr.to_string().as_bytes());
        if let Some(id) = trace_id {
            out.extend_from_slice(b"\r\nX-Request-Id: ");
            crate::trace::push_u64(out, id);
        }
        out.extend_from_slice(b"\r\nContent-Length: ");
        out.extend_from_slice(body.len().to_string().as_bytes());
        out.extend_from_slice(b"\r\n\r\n");
        out.extend_from_slice(body);
    }

    /// Sends one request on the persistent connection.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn send(&mut self, method: &str, target: &str, body: Option<&[u8]>) -> io::Result<()> {
        let mut out = Vec::with_capacity(256);
        self.render_request(&mut out, method, target, None, body.unwrap_or_default());
        self.stream.write_all(&out)
    }

    /// Pipelines a batch of GETs in a single write.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn send_pipelined(&mut self, targets: &[&str]) -> io::Result<()> {
        let mut out = Vec::with_capacity(128 * targets.len());
        for target in targets {
            self.render_request(&mut out, "GET", target, None, b"");
        }
        self.stream.write_all(&out)
    }

    /// [`Self::send_pipelined`] with an optional trace id per target
    /// (the loadgen samples `Server-Timing` by attaching ids to a
    /// subset of its requests).
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn send_pipelined_traced(&mut self, targets: &[(&str, Option<u64>)]) -> io::Result<()> {
        let mut out = Vec::with_capacity(160 * targets.len());
        for (target, trace_id) in targets {
            self.render_request(&mut out, "GET", target, *trace_id, b"");
        }
        self.stream.write_all(&out)
    }

    /// Reads the next response off the connection (in pipelined
    /// order).
    ///
    /// # Errors
    ///
    /// Transport failures, `UnexpectedEof` if the server closed
    /// before a full response arrived.
    pub fn recv(&mut self) -> io::Result<ClientResponse> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some((response, used)) = parse_response(&self.buf[self.pos..])? {
                self.pos += used;
                if self.pos == self.buf.len() {
                    self.buf.clear();
                    self.pos = 0;
                }
                return Ok(response);
            }
            // Only a response that straddles reads pays the compact.
            if self.pos > 0 {
                self.buf.drain(..self.pos);
                self.pos = 0;
            }
            match self.stream.read(&mut chunk)? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-response",
                    ))
                }
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        }
    }

    /// One round trip on the persistent connection.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn roundtrip(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        self.send(method, target, body)?;
        self.recv()
    }
}

/// One blocking request over a fresh `Connection: close` connection
/// (the protocol the integration tests and one-shot probes use).
///
/// # Errors
///
/// Connect/read/write failures and timeouts.
pub fn fetch(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> io::Result<ClientResponse> {
    fetch_traced(addr, method, target, None, body, timeout)
}

/// [`fetch`] with an optional `X-Request-Id` trace id, opting the
/// request into the server's `Server-Timing` attribution.
///
/// # Errors
///
/// Connect/read/write failures and timeouts.
pub fn fetch_traced(
    addr: SocketAddr,
    method: &str,
    target: &str,
    trace_id: Option<u64>,
    body: Option<&[u8]>,
    timeout: Duration,
) -> io::Result<ClientResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let body = body.unwrap_or_default();
    let id_line = trace_id.map_or(String::new(), |id| format!("X-Request-Id: {id}\r\n"));
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\n{id_line}Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut buf = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if let Some((response, _)) = parse_response(&buf)? {
            return Ok(response);
        }
        match stream.read(&mut chunk)? {
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ))
            }
            n => buf.extend_from_slice(&chunk[..n]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c").as_deref(), Some("a b c"));
        assert_eq!(percent_decode("plain").as_deref(), Some("plain"));
        assert_eq!(percent_decode("%2"), None);
        assert_eq!(percent_decode("%zz"), None);
    }

    #[test]
    fn canonical_key_sorts_query() {
        let req = Request {
            method: "GET".into(),
            path: "/v1/table/2".into(),
            query: vec![("scale".into(), "test".into()), ("format".into(), "csv".into())],
            body: Vec::new(),
            close: false,
            chunked: false,
            trace: ReqTrace::default(),
        };
        assert_eq!(req.canonical_key(), "GET /v1/table/2?format=csv&scale=test");
        let flipped = Request {
            query: vec![("format".into(), "csv".into()), ("scale".into(), "test".into())],
            ..req.clone()
        };
        assert_eq!(req.canonical_key(), flipped.canonical_key());
    }

    #[test]
    fn parse_is_incremental_and_pipelined() {
        let wire = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        // Every strict prefix of the first request (34 bytes) is
        // Partial.
        for cut in 0..34 {
            assert!(
                matches!(parse_request(&wire[..cut]), Parse::Partial),
                "cut {cut}"
            );
        }
        let Parse::Complete { request, used } = parse_request(wire) else {
            panic!("first request should parse");
        };
        assert_eq!(request.path, "/healthz");
        assert!(!request.close, "HTTP/1.1 defaults to keep-alive");
        let Parse::Complete { request, used: used2 } = parse_request(&wire[used..]) else {
            panic!("pipelined second request should parse");
        };
        assert_eq!(request.path, "/metrics");
        assert_eq!(used + used2, wire.len());
    }

    #[test]
    fn connection_semantics() {
        let close = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let Parse::Complete { request, .. } = parse_request(close) else {
            panic!()
        };
        assert!(request.close);

        let http10 = b"GET / HTTP/1.0\r\n\r\n";
        let Parse::Complete { request, .. } = parse_request(http10) else {
            panic!()
        };
        assert!(request.close, "HTTP/1.0 defaults to close");

        let http10_ka = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        let Parse::Complete { request, .. } = parse_request(http10_ka) else {
            panic!()
        };
        assert!(!request.close);
    }

    #[test]
    fn x_request_id_header_becomes_the_trace_id() {
        let wire = b"GET / HTTP/1.1\r\nX-Request-ID: 424242\r\n\r\n";
        let Parse::Complete { request, .. } = parse_request(wire) else {
            panic!()
        };
        assert_eq!(request.trace.id, 424242);

        let wire = b"GET / HTTP/1.1\r\nHost: x\r\n\r\n";
        let Parse::Complete { request, .. } = parse_request(wire) else {
            panic!()
        };
        assert_eq!(request.trace.id, 0, "unassigned until the connection layer");
    }

    #[test]
    fn bodies_respect_content_length() {
        let wire = b"POST /v1/sweep HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcdGET";
        let Parse::Complete { request, used } = parse_request(wire) else {
            panic!()
        };
        assert_eq!(request.body, b"abcd");
        assert_eq!(&wire[used..], b"GET");
        // Body bytes not yet arrived → Partial.
        assert!(matches!(parse_request(&wire[..wire.len() - 7]), Parse::Partial));
    }

    #[test]
    fn oversized_headers_are_fatal_431() {
        let junk = vec![b'A'; MAX_HEADER_BYTES + 1];
        let Parse::Bad { bad, used } = parse_request(&junk) else {
            panic!("oversized request line must be rejected");
        };
        assert_eq!(bad.status, 431);
        assert!(used.is_none(), "framing is lost; connection must close");
    }

    #[test]
    fn recoverable_bad_requests_report_consumed_framing() {
        let wire = b"GET /bad%zz HTTP/1.1\r\n\r\n";
        let Parse::Bad { bad, used } = parse_request(wire) else {
            panic!()
        };
        assert_eq!(bad.status, 400);
        assert_eq!(used, Some(wire.len()), "framing known; connection survives");
    }

    #[test]
    fn wire_response_serializes_both_fates() {
        let wire = Response::error(503, "queue full")
            .with_header("Retry-After", "1".into())
            .into_wire();
        assert_eq!(wire.status(), 503);
        let keep = String::from_utf8(wire.to_bytes(true)).unwrap();
        assert!(keep.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{keep}");
        assert!(keep.contains("Retry-After: 1\r\n"));
        assert!(keep.contains("Connection: keep-alive\r\n"));
        let close = String::from_utf8(wire.to_bytes(false)).unwrap();
        assert!(close.contains("Connection: close\r\n"));
        assert!(close.ends_with("{\"error\": \"queue full\"}"));
    }

    #[test]
    fn responses_serialize_with_length_and_close() {
        let mut out = Vec::new();
        Response::error(503, "queue full")
            .with_header("Retry-After", "1".into())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\": \"queue full\"}"));
        let length: usize = text
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(length, "{\"error\": \"queue full\"}".len());
    }

    #[test]
    fn client_response_parses_incrementally() {
        let wire = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}HTTP/1.1 404";
        assert!(parse_response(&wire[..20]).unwrap().is_none());
        let (response, used) = parse_response(wire).unwrap().expect("complete");
        assert_eq!(response.status, 200);
        assert_eq!(response.body, b"{}");
        assert_eq!(&wire[used..], b"HTTP/1.1 404");
    }

    #[test]
    fn chunked_request_completes_at_header_end() {
        let wire =
            b"POST /v1/trace/intervals HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello";
        let head_end = wire.iter().position(|&b| b == b'5').unwrap();
        match parse_request(wire) {
            Parse::Complete { request, used } => {
                assert!(request.chunked);
                assert!(request.body.is_empty());
                // The body stays on the wire for the streaming layer.
                assert_eq!(used, head_end);
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_transfer_encoding_is_rejected() {
        let wire = b"POST /v1/trace/intervals HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n";
        match parse_request(wire) {
            Parse::Bad { bad, used } => {
                assert_eq!(bad.status, 400);
                assert!(used.is_none(), "framing is unknowable; must close");
            }
            other => panic!("expected Bad, got {other:?}"),
        }
    }

    #[test]
    fn chunked_decoder_handles_extensions_trailers_and_splits() {
        let wire = b"4;ext=1\r\nabcd\r\nA\r\n0123456789\r\n0\r\nTrailer: x\r\n\r\ntail";
        // Whole-buffer feed.
        let mut decoder = ChunkedDecoder::new();
        let mut out = Vec::new();
        let used = decoder.feed(wire, &mut out).unwrap();
        assert!(decoder.is_done());
        assert_eq!(out, b"abcd0123456789");
        assert_eq!(&wire[used..], b"tail");
        assert_eq!(decoder.decoded_bytes(), 14);
        // Byte-at-a-time feed reaches the same state.
        let mut decoder = ChunkedDecoder::new();
        let mut out = Vec::new();
        let mut consumed = 0;
        while !decoder.is_done() {
            consumed += decoder
                .feed(&wire[consumed..consumed + 1], &mut out)
                .unwrap();
        }
        assert_eq!(out, b"abcd0123456789");
        assert_eq!(consumed, used);
    }

    #[test]
    fn chunked_decoder_tolerates_bare_lf() {
        let mut decoder = ChunkedDecoder::new();
        let mut out = Vec::new();
        let used = decoder.feed(b"3\nxyz\n0\n\n", &mut out).unwrap();
        assert!(decoder.is_done());
        assert_eq!(out, b"xyz");
        assert_eq!(used, 9);
    }

    #[test]
    fn chunked_decoder_rejects_malformed_framing() {
        let mut out = Vec::new();
        let bad = ChunkedDecoder::new().feed(b"zz\r\n", &mut out).unwrap_err();
        assert_eq!(bad.status, 400);
        let bad = ChunkedDecoder::new()
            .feed(b"2\r\nabX", &mut out)
            .unwrap_err();
        assert_eq!(bad.status, 400);
        let long = vec![b'1'; MAX_CHUNK_LINE + 2];
        let bad = ChunkedDecoder::new().feed(&long, &mut out).unwrap_err();
        assert_eq!(bad.status, 400);
    }
}
