//! The `leakage-server` binary: serve the analysis API until
//! SIGINT/SIGTERM, then drain and exit.

use leakage_server::{signal, Server, ServerConfig, Transport};
use leakage_workloads::Scale;
use std::io::Write as _;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: leakage-server [--addr HOST:PORT] [--workers N] [--queue-depth N]\n\
         \x20                  [--scale test|small|paper|CYCLES] [--timeout-ms MS]\n\
         \x20                  [--cache-entries N] [--sim-concurrency N] [--sweep-concurrency N]\n\
         \x20                  [--transport reactor|threaded] [--idle-timeout-ms MS]\n\
         \x20                  [--max-requests-per-conn N] [--max-connections N]\n\
         \x20                  [--pipeline-batch N] [--cache-shards N] [--no-preserialize]\n\
         \x20                  [--no-recorder] [--recorder-cap N]\n\
         \x20                  [--jobs-dir PATH] [--job-workers N] [--job-stall-ms MS]\n\
         \x20                  [--job-worker-env KEY=VALUE] [--max-active-jobs N]\n\
         \x20                  [--job-listen HOST:PORT] [--job-token SECRET]\n\
         \x20                  [--job-hb-timeout-ms MS] [--job-worker-quorum N]"
    );
    std::process::exit(2);
}

fn parse_config() -> ServerConfig {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => config.addr = value(),
            "--workers" => config.workers = value().parse().unwrap_or_else(|_| usage()),
            "--queue-depth" => config.queue_depth = value().parse().unwrap_or_else(|_| usage()),
            "--scale" => {
                config.default_scale =
                    Scale::parse_arg(&value()).unwrap_or_else(|| usage());
            }
            "--timeout-ms" => {
                config.request_timeout =
                    Duration::from_millis(value().parse().unwrap_or_else(|_| usage()));
            }
            "--cache-entries" => {
                config.cache_entries = value().parse().unwrap_or_else(|_| usage());
            }
            "--sim-concurrency" => {
                config.sim_concurrency = value().parse().unwrap_or_else(|_| usage());
            }
            "--sweep-concurrency" => {
                config.sweep_concurrency = value().parse().unwrap_or_else(|_| usage());
            }
            "--transport" => {
                config.transport = Transport::parse(&value()).unwrap_or_else(|| usage());
            }
            "--idle-timeout-ms" => {
                config.idle_timeout =
                    Duration::from_millis(value().parse().unwrap_or_else(|_| usage()));
            }
            "--max-requests-per-conn" => {
                config.max_requests_per_connection =
                    value().parse().unwrap_or_else(|_| usage());
            }
            "--max-connections" => {
                config.max_connections = value().parse().unwrap_or_else(|_| usage());
            }
            "--pipeline-batch" => {
                config.pipeline_batch = value().parse().unwrap_or_else(|_| usage());
            }
            "--cache-shards" => {
                config.cache_shards = value().parse().unwrap_or_else(|_| usage());
            }
            "--no-preserialize" => config.preserialize = false,
            "--no-recorder" => config.recorder = false,
            "--recorder-cap" => {
                config.recorder_cap = value().parse().unwrap_or_else(|_| usage());
            }
            "--jobs-dir" => config.jobs_dir = value().into(),
            "--job-workers" => config.job_workers = value().parse().unwrap_or_else(|_| usage()),
            "--job-stall-ms" => {
                config.job_stall =
                    Duration::from_millis(value().parse().unwrap_or_else(|_| usage()));
            }
            // Repeatable; each occurrence adds one KEY=VALUE pair to
            // the job workers' environment (e.g. LEAKAGE_FAULTS arms
            // for crash drills).
            "--job-worker-env" => {
                let pair = value();
                let (key, val) = pair.split_once('=').unwrap_or_else(|| usage());
                config.job_worker_env.push((key.into(), val.into()));
            }
            "--max-active-jobs" => {
                config.max_active_jobs = value().parse().unwrap_or_else(|_| usage());
            }
            "--job-listen" => config.job_listen = Some(value()),
            "--job-token" => config.job_token = Some(value()),
            "--job-hb-timeout-ms" => {
                config.job_hb_timeout =
                    Duration::from_millis(value().parse().unwrap_or_else(|_| usage()));
            }
            "--job-worker-quorum" => {
                config.job_worker_quorum = value().parse().unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    config
}

fn main() {
    let config = parse_config();
    signal::install_shutdown_handler();
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("leakage-server: failed to start: {err}");
            std::process::exit(1);
        }
    };
    // The exact line CI greps to discover the ephemeral port.
    println!("listening on {}", server.addr());
    // Same contract for the remote-worker listener, when enabled.
    if let Some(addr) = server.jobs().remote_addr() {
        println!("job fabric listening on {addr}");
    }
    let _ = std::io::stdout().flush();

    while !signal::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("leakage-server: shutdown requested, draining");
    server.shutdown();
    eprintln!("leakage-server: drained, exiting");
}
