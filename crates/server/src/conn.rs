//! Per-connection state shared by the reactor and threaded
//! transports: the input buffer requests are parsed out of, the
//! output buffer pipelined responses are batched into, and the
//! keep-alive bookkeeping (requests served, close fate, idle clock).

use crate::http::{parse_request, BadRequest, Parse, Request};
use crate::trace::{next_trace_id, us32, PendingRecord};
use std::net::TcpStream;
use std::time::Instant;

/// What [`Connection::take_request`] produced.
pub enum Taken {
    /// A complete request, ready for a handler.
    Request(Request),
    /// A malformed request; answer it. `recoverable: false` means the
    /// connection's framing is lost and it must close after the
    /// error.
    Bad {
        /// Status and reason to answer.
        bad: BadRequest,
        /// Whether the connection can keep serving afterwards.
        recoverable: bool,
    },
    /// No complete request buffered; read more bytes.
    NeedMore,
}

/// One client connection moving between the transport (readiness or
/// blocking reads) and the worker pool (parse → handle → write).
pub struct Connection {
    /// The socket. Nonblocking under the reactor; blocking under the
    /// threaded transport.
    pub stream: TcpStream,
    /// Bytes read but not yet parsed (may hold several pipelined
    /// requests).
    pub buf: Vec<u8>,
    /// Serialized responses awaiting a write.
    pub out: Vec<u8>,
    /// Requests answered on this connection.
    pub served: u32,
    /// Reactor slab token (unused by the threaded transport).
    pub token: u64,
    /// Last read/write activity, for idle-timeout sweeps.
    pub last_activity: Instant,
    /// Close after the pending output is flushed (client asked, the
    /// per-connection request budget ran out, the peer half-closed,
    /// or the server is draining).
    pub close: bool,
    /// The peer closed its write half; no further requests can
    /// arrive, but buffered ones are still served.
    pub eof: bool,
    /// Flight-recorder records for the batch being serialized,
    /// published after the batch's socket write so they carry the
    /// real write cost. Reused across batches (no per-request
    /// allocation).
    pub pending: Vec<PendingRecord>,
    /// Serialize duration of the previous response on this
    /// connection, reported in the next `Server-Timing` header.
    pub last_serialize_us: u32,
    /// Write duration of the previous flushed batch, likewise.
    pub last_write_us: u32,
}

impl Connection {
    /// Wraps an accepted stream.
    pub fn new(stream: TcpStream, token: u64) -> Self {
        Connection {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            served: 0,
            token,
            last_activity: Instant::now(),
            close: false,
            eof: false,
            pending: Vec::new(),
            last_serialize_us: 0,
            last_write_us: 0,
        }
    }

    /// Parses the next request off the input buffer, consuming its
    /// bytes and enforcing the per-connection request budget
    /// (`max_requests`, 0 = unlimited): the budget-exhausting request
    /// is still served, with `Connection: close` on its response.
    pub fn take_request(&mut self, max_requests: u32) -> Taken {
        let parse_started = Instant::now();
        match parse_request(&self.buf) {
            Parse::Complete { mut request, used } => {
                self.buf.drain(..used);
                self.served += 1;
                if max_requests != 0 && self.served >= max_requests {
                    self.close = true;
                }
                if request.close {
                    self.close = true;
                }
                if request.trace.id == 0 {
                    request.trace.id = next_trace_id();
                }
                request.trace.req_bytes = u32::try_from(used).unwrap_or(u32::MAX);
                request.trace.parse_us = us32(parse_started.elapsed());
                request.trace.parsed_at = Instant::now();
                Taken::Request(request)
            }
            Parse::Bad { bad, used } => {
                let recoverable = match used {
                    Some(n) => {
                        self.buf.drain(..n);
                        true
                    }
                    None => {
                        self.close = true;
                        false
                    }
                };
                Taken::Bad { bad, recoverable }
            }
            Parse::Partial => {
                if self.eof {
                    // Half-closed peer with a dangling partial
                    // request: nothing more can complete it.
                    self.close = true;
                }
                Taken::NeedMore
            }
        }
    }

    /// Whether the input buffer already starts with a complete (or
    /// decidedly bad) request — i.e. whether a worker should keep
    /// going without returning to the transport.
    pub fn has_buffered_request(&self) -> bool {
        !matches!(parse_request(&self.buf), Parse::Partial)
    }
}
