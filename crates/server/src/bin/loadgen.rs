//! The `loadgen` binary: closed-loop load against a running
//! `leakage-server`, reporting throughput and latency percentiles as
//! JSON on stdout.

use leakage_server::LoadgenConfig;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: loadgen --addr HOST:PORT [--connections N] [--seconds S]\n\
         \x20             [--timeout-ms MS] [--mix PATH:WEIGHT,PATH:WEIGHT,...]\n\
         \x20             [--pipeline N] [--close]"
    );
    std::process::exit(2);
}

fn parse_mix(spec: &str) -> Option<Vec<(String, u32)>> {
    let mut mix = Vec::new();
    for entry in spec.split(',').filter(|e| !e.is_empty()) {
        // Split on the *last* colon: paths may hold query strings,
        // never colons.
        let (path, weight) = entry.rsplit_once(':')?;
        mix.push((path.to_string(), weight.parse().ok()?));
    }
    (!mix.is_empty()).then_some(mix)
}

fn main() {
    let mut config = LoadgenConfig::default();
    let mut saw_addr = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => {
                config.addr = value().parse().unwrap_or_else(|_| usage());
                saw_addr = true;
            }
            "--connections" => config.connections = value().parse().unwrap_or_else(|_| usage()),
            "--seconds" => {
                config.duration = Duration::from_secs(value().parse().unwrap_or_else(|_| usage()));
            }
            "--timeout-ms" => {
                config.timeout =
                    Duration::from_millis(value().parse().unwrap_or_else(|_| usage()));
            }
            "--mix" => config.mix = parse_mix(&value()).unwrap_or_else(|| usage()),
            "--pipeline" => config.pipeline = value().parse().unwrap_or_else(|_| usage()),
            "--close" => config.keep_alive = false,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if !saw_addr {
        usage();
    }
    match leakage_server::loadgen::run(&config) {
        Ok(report) => println!("{}", report.to_json()),
        Err(err) => {
            eprintln!("loadgen: {err}");
            std::process::exit(1);
        }
    }
}
