//! The leakage analysis service: a dependency-free HTTP/1.1 front end
//! for the paper-reproduction pipeline.
//!
//! ```text
//!   GET  /healthz                          liveness + suite listing
//!   GET  /metrics                          Prometheus text exposition
//!   GET  /v1/profile/<benchmark>?scale=..  memoized profile summary
//!   GET  /v1/table/{1,2,3}?format=json|csv paper tables on demand
//!   GET  /v1/figure/{7,8,9}?format=..      paper figure pairs
//!   POST /v1/sweep                         batched Fig. 6 model points
//! ```
//!
//! Production behaviors, all dependency-free on `std::net`:
//!
//! - **Admission control**: a bounded queue between acceptor and the
//!   fixed worker pool; when full, the acceptor itself answers
//!   503 + `Retry-After` ([`pool`]).
//! - **Per-endpoint concurrency limits**: simulation-backed GETs and
//!   sweep batches each hold a semaphore permit ([`limit`]).
//! - **Response caching**: LRU keyed by the canonical query
//!   ([`respcache`]).
//! - **Panic isolation**: a panicking handler — including one armed
//!   via `LEAKAGE_FAULTS=server/handler/<route>=panic` — costs that
//!   request a 500, never a worker ([`routes`]).
//! - **Graceful shutdown**: SIGINT/SIGTERM stop the acceptor, queued
//!   connections drain, workers join ([`signal`], [`pool`]).
//! - **Telemetry**: per-route request counters, latency histograms,
//!   and an in-flight gauge in the shared registry, served back out
//!   through `/metrics`.
//!
//! The [`loadgen`] module (and `loadgen` binary) is the closed-loop
//! measurement harness: throughput plus p50/p95/p99 latency as JSON.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod limit;
pub mod loadgen;
pub mod pool;
pub mod respcache;
pub mod routes;
pub mod signal;

pub use http::{fetch, ClientResponse, Request, Response};
pub use loadgen::{LoadgenConfig, LoadReport};
pub use pool::{Server, ServerConfig};
