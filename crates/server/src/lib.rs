//! The leakage analysis service: a dependency-free HTTP/1.1 front end
//! for the paper-reproduction pipeline.
//!
//! ```text
//!   GET  /healthz                          liveness + suite listing
//!   GET  /metrics                          Prometheus text exposition
//!   GET  /v1/version                       generator/format/git versions
//!   GET  /v1/profile/<benchmark>?scale=..  memoized profile summary
//!   GET  /v1/table/{1,2,3}?format=json|csv paper tables on demand
//!   GET  /v1/figure/{7,8,9}?format=..      paper figure pairs
//!   POST /v1/sweep                         batched Fig. 6 model points
//!   POST /v1/trace/intervals?line_bits=..  streamed LKTR trace → interval summary
//!   GET  /debug/requests?n=&route=&min_us= flight-recorder ring dump
//!   GET  /debug/slow                       slowest + errored requests
//!   GET  /debug/stats                      rolling 10 s per-route stats
//! ```
//!
//! Production behaviors, all dependency-free on `std::net`:
//!
//! - **Keep-alive + pipelining**: HTTP/1.1 persistent connections with
//!   incremental parsing ([`http`], [`conn`]); pipelined requests are
//!   answered as one batched write.
//! - **Epoll reactor** (Linux, default): one readiness thread owns
//!   every idle connection; workers only ever touch connections with
//!   a complete parsed request ([`reactor`]). A threaded fallback
//!   transport serves the same protocol ([`pool`]).
//! - **Admission control**: a bounded queue between transport and the
//!   fixed worker pool; when full, the transport itself answers
//!   503 + `Retry-After` ([`pool`]).
//! - **Per-endpoint concurrency limits**: simulation-backed GETs and
//!   sweep batches each hold a semaphore permit ([`limit`]).
//! - **Streaming uploads**: `POST /v1/trace/intervals` accepts
//!   `Transfer-Encoding: chunked` bodies without ever buffering them —
//!   the worker pumps wire bytes straight through the chunk deframer
//!   and trace decoder into the constant-memory streaming interval
//!   extractor ([`streaming`]).
//! - **Sharded hot state**: lock-striped profile-store front
//!   ([`storefront`]), sharded O(1)-eviction LRU response cache
//!   ([`respcache`]), striped telemetry counters.
//! - **Pre-serialized artifacts**: the finite default-scale artifact
//!   space is rendered to wire bytes once and served as `Arc` clones
//!   ([`artifacts`]).
//! - **Panic isolation**: a panicking handler — including one armed
//!   via `LEAKAGE_FAULTS=server/handler/<route>=panic` — costs that
//!   request a 500, never a worker ([`routes`]).
//! - **Graceful shutdown**: SIGINT/SIGTERM stop the transport,
//!   admitted work drains, keep-alive connections are told
//!   `Connection: close`, workers join ([`signal`], [`pool`]).
//! - **Telemetry**: per-route request counters, latency histograms,
//!   and an in-flight gauge in the shared registry, served back out
//!   through `/metrics`.
//! - **Request tracing**: every request carries a `u64` trace id
//!   (honouring `X-Request-Id`) through transport → queue → worker →
//!   handler, echoed back with a per-stage `Server-Timing` header
//!   ([`trace`]); completed requests land in a lock-free flight
//!   recorder served by `/debug/*` — exempt from admission shedding,
//!   so the observability plane stays reachable under overload.
//!
//! The [`loadgen`] module (and `loadgen` binary) is the closed-loop
//! measurement harness: keep-alive connections, optional pipelining,
//! throughput plus interpolated p50/p95/p99/max latency as JSON.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod conn;
pub mod http;
pub mod limit;
pub mod loadgen;
pub mod pool;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod respcache;
pub mod routes;
pub mod signal;
pub mod storefront;
pub mod streaming;
pub mod trace;

pub use http::{fetch, Client, ClientResponse, Request, Response, WireResponse};
pub use loadgen::{LoadgenConfig, LoadReport};
pub use pool::{Server, ServerConfig, Transport};
