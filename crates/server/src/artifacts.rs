//! Pre-serialized artifact catalog: the finite default-scale artifact
//! space (`/v1/table/{1,2,3}` and `/v1/figure/{7,8,9}` × json/csv),
//! plus the constant `/healthz` and `/v1/version` bodies, held as
//! [`WireResponse`]s that are **never evicted**.
//!
//! The LRU response cache already avoids recomputation, but a hit
//! still pays a shard lock and recency-list update. Catalog entries
//! are immutable once inserted, so lookups take a read lock only —
//! the absolute hot path (a loadgen hammering `/v1/table/2` at the
//! default scale) serves each response as two `Arc` bumps plus one
//! vectored write's worth of `memcpy`.
//!
//! The catalog is a dumb byte store: [`crate::routes`] decides
//! eligibility keys, fills entries through the **same** handler path
//! the batch pipeline exercises (so bytes stay identical), and the
//! server warms it in a background thread at startup. Disabling
//! pre-serialization (`--no-preserialize`) turns every lookup into a
//! miss, which is how the bench trajectory isolates this step's
//! contribution.

use crate::http::WireResponse;
use leakage_workloads::Scale;
use std::collections::HashMap;
use std::sync::{PoisonError, RwLock};

/// The catalog: canonical request key → immutable pre-serialized
/// response.
pub struct ArtifactCatalog {
    enabled: bool,
    default_scale: Scale,
    entries: RwLock<HashMap<String, WireResponse>>,
}

impl ArtifactCatalog {
    /// An empty catalog. With `enabled == false` every lookup misses
    /// and inserts are dropped, so the serving path degrades to the
    /// plain cache — the bench trajectory's "pre-serialization off"
    /// configuration.
    pub fn new(enabled: bool, default_scale: Scale) -> Self {
        ArtifactCatalog {
            enabled,
            default_scale,
            entries: RwLock::new(HashMap::new()),
        }
    }

    /// Whether pre-serialization is on at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The scale catalog entries are pinned to.
    pub fn default_scale(&self) -> Scale {
        self.default_scale
    }

    /// Looks up a pre-serialized response. Read lock only; no recency
    /// bookkeeping.
    pub fn get(&self, key: &str) -> Option<WireResponse> {
        if !self.enabled {
            return None;
        }
        self.entries
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
            .cloned()
    }

    /// Publishes an entry (first insert wins — entries are immutable,
    /// and the first and any concurrent compute produced identical
    /// bytes by construction).
    pub fn insert(&self, key: &str, value: WireResponse) {
        if !self.enabled {
            return;
        }
        self.entries
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key.to_string())
            .or_insert(value);
    }

    /// Number of pre-serialized entries.
    pub fn len(&self) -> usize {
        self.entries
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether nothing has been pre-serialized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Response;

    #[test]
    fn insert_then_get_round_trips() {
        let catalog = ArtifactCatalog::new(true, Scale::Test);
        assert!(catalog.get("GET /v1/table/1?").is_none());
        catalog.insert(
            "GET /v1/table/1?",
            Response::json(200, "{}".to_string()).into_wire(),
        );
        let hit = catalog.get("GET /v1/table/1?").expect("catalog hit");
        assert_eq!(hit.status(), 200);
        assert_eq!(catalog.len(), 1);
    }

    #[test]
    fn first_insert_wins() {
        let catalog = ArtifactCatalog::new(true, Scale::Test);
        catalog.insert("k", Response::json(200, "first".to_string()).into_wire());
        catalog.insert("k", Response::json(200, "second".to_string()).into_wire());
        assert_eq!(catalog.get("k").unwrap().body(), b"first");
    }

    #[test]
    fn disabled_catalog_is_inert() {
        let catalog = ArtifactCatalog::new(false, Scale::Test);
        catalog.insert("k", Response::json(200, "{}".to_string()).into_wire());
        assert!(catalog.get("k").is_none());
        assert!(catalog.is_empty());
    }
}
