//! The readiness-based transport: one reactor thread owns `accept`
//! and read-readiness over `epoll`, so an idle keep-alive connection
//! costs a slab entry — not a thread.
//!
//! ```text
//!             ┌──────────────────────────┐   bounded    ┌──────────┐
//!   epoll ───►│ reactor: accept + parse  │─────────────►│ worker 0 │─► handler
//!   events    │ (nonblocking, oneshot)   │ (conn, req)  │ worker 1 │─► handler
//!             └──────▲───────────────────┘              └────┬─────┘
//!                    │        return queue + wake pipe       │
//!                    └───────────────────────────────────────┘
//! ```
//!
//! The reactor reads readiness-driven bytes into each connection's
//! buffer and hands **fully-parsed requests** to the worker pool.
//! Workers handle, write the response batch, and give the connection
//! back through the return queue, waking the reactor via a pipe (the
//! `epoll`/`pipe2` declarations below are the workspace's second
//! fenced `unsafe` block, mirroring [`crate::signal`]). Connections
//! are registered `EPOLLONESHOT`, so a connection is owned by exactly
//! one of {reactor, worker} at every instant — no fd races.
//!
//! Backpressure is still explicit: a parsed request that cannot be
//! queued is answered 503 + `Retry-After` by the reactor itself, and
//! accepted connections beyond `max_connections` are shed the same
//! way. On drain the reactor drops the listener, closes parked idle
//! connections, and exits once every in-flight connection has been
//! returned by the workers.

#![cfg(target_os = "linux")]

use crate::conn::{Connection, Taken};
use crate::http::{Request, Response, WireResponse};
use crate::pool::{Job, Queue, WorkerConfig};
use crate::routes::RouteContext;
use leakage_telemetry::{registry, striped_counter};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The raw `epoll`/`pipe2` surface. Everything `unsafe` in the
/// reactor lives behind these four safe wrappers.
#[allow(unsafe_code)]
mod sys {
    use std::io;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLONESHOT: u32 = 1 << 30;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0x80000;
    const O_NONBLOCK: i32 = 0x800;
    const O_CLOEXEC: i32 = 0x80000;

    /// `struct epoll_event`; packed on x86-64 per the kernel ABI.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        /// Readiness bit set.
        pub events: u32,
        /// The token the fd was registered under.
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn pipe2(fds: *mut i32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    fn check(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// A new epoll instance (close-on-exec).
    pub fn epoll_create() -> io::Result<i32> {
        // SAFETY: plain syscall, no pointers.
        check(unsafe { epoll_create1(EPOLL_CLOEXEC) })
    }

    /// Registers (`add = true`) or re-arms (`add = false`) `fd` under
    /// `token` with the given event mask.
    pub fn epoll_arm(epfd: i32, fd: i32, token: u64, events: u32, add: bool) -> io::Result<()> {
        let mut event = EpollEvent {
            events,
            data: token,
        };
        let op = if add { EPOLL_CTL_ADD } else { EPOLL_CTL_MOD };
        // SAFETY: `event` outlives the call; the kernel copies it.
        check(unsafe { epoll_ctl(epfd, op, fd, &mut event) })?;
        Ok(())
    }

    /// Waits for events, up to `timeout_ms`. Interrupted waits report
    /// zero events.
    pub fn epoll_pump(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `events` is a valid, writable slice whose length
        // bounds `maxevents`.
        let n = unsafe {
            epoll_wait(
                epfd,
                events.as_mut_ptr(),
                events.len() as i32,
                timeout_ms,
            )
        };
        match check(n) {
            Ok(n) => Ok(n as usize),
            Err(err) if err.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(err) => Err(err),
        }
    }

    /// A nonblocking close-on-exec pipe: `(read_fd, write_fd)`.
    pub fn pipe_nonblocking() -> io::Result<(i32, i32)> {
        let mut fds = [0i32; 2];
        // SAFETY: `fds` is a valid 2-element array the kernel fills.
        check(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
        Ok((fds[0], fds[1]))
    }

    /// Writes one byte (best effort — a full pipe already means a
    /// pending wakeup).
    pub fn write_byte(fd: i32) {
        let byte = 1u8;
        // SAFETY: one-byte buffer is valid for the call's duration.
        let _ = unsafe { write(fd, &byte, 1) };
    }

    /// Drains all pending bytes from a nonblocking fd.
    pub fn drain_fd(fd: i32) {
        let mut buf = [0u8; 64];
        // SAFETY: `buf` is valid and its length bounds `count`.
        while unsafe { read(fd, buf.as_mut_ptr(), buf.len()) } > 0 {}
    }

    /// Closes a raw fd.
    pub fn close_fd(fd: i32) {
        // SAFETY: the callers own `fd` and never reuse it after this.
        let _ = unsafe { close(fd) };
    }
}

/// The wake pipe: workers write a byte to pop the reactor out of
/// `epoll_wait` after pushing to the return queue.
struct WakePipe {
    read_fd: i32,
    write_fd: i32,
}

impl WakePipe {
    fn new() -> io::Result<WakePipe> {
        let (read_fd, write_fd) = sys::pipe_nonblocking()?;
        Ok(WakePipe { read_fd, write_fd })
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        sys::close_fd(self.read_fd);
        sys::close_fd(self.write_fd);
    }
}

/// The workers' half of the reactor: the return queue for served
/// connections and the in-flight count the drain waits on.
pub struct ReactorHandle {
    returns: Mutex<Vec<Connection>>,
    wake: Arc<WakePipe>,
    inflight: AtomicUsize,
}

impl ReactorHandle {
    /// Returns a connection to the reactor (worker side) and wakes
    /// it.
    pub fn give_back(&self, conn: Connection) {
        self.returns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(conn);
        sys::write_byte(self.wake.write_fd);
    }

    /// Wakes the reactor without returning anything (shutdown).
    pub fn wake(&self) {
        sys::write_byte(self.wake.write_fd);
    }

    fn take_returns(&self) -> Vec<Connection> {
        std::mem::take(&mut *self.returns.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

/// Answers admission-exempt requests (health/debug routes) inline
/// when the queue is full; `None` means the request is shed normally.
pub type ExemptFn = dyn Fn(&Request) -> Option<WireResponse> + Send + Sync;

/// Observes a shed request (publishes a flight-recorder record).
pub type ShedHook = dyn Fn(&Request) + Send + Sync;

/// Reactor tuning, split from [`crate::ServerConfig`] so the reactor
/// has no route-level knowledge — route-aware behavior arrives as the
/// `exempt`/`on_shed` closures.
pub struct ReactorConfig {
    /// Close keep-alive connections idle this long.
    pub idle_timeout: Duration,
    /// Per-connection request budget (0 = unlimited).
    pub max_requests_per_connection: u32,
    /// Parked + in-flight connection cap; beyond it new accepts are
    /// shed with 503.
    pub max_connections: usize,
    /// `Retry-After` seconds on shed responses.
    pub retry_after_secs: u64,
    /// Inline responder for admission-exempt routes on a full queue.
    pub exempt: Arc<ExemptFn>,
    /// Shed observer (flight-recorder record for 503s).
    pub on_shed: Arc<ShedHook>,
}

const LISTENER_TOKEN: u64 = 0;
const WAKE_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;
/// A read larger than this per readiness event would let one fast
/// sender starve the slab.
const READ_CHUNK: usize = 16 * 1024;
/// Hard cap on buffered input per connection (one oversized request).
const MAX_BUFFER: usize = crate::http::MAX_HEADER_BYTES + crate::http::MAX_BODY_BYTES + 1;

/// The reactor: runs on its own thread until drain completes.
pub struct Reactor {
    epfd: i32,
    listener: Option<TcpListener>,
    wake: Arc<WakePipe>,
    handle: Arc<ReactorHandle>,
    queue: Arc<Queue<Job>>,
    config: ReactorConfig,
    slab: HashMap<u64, Connection>,
    next_token: u64,
    draining: bool,
}

impl Reactor {
    /// Builds the reactor over an already-bound nonblocking listener.
    ///
    /// # Errors
    ///
    /// `epoll`/pipe creation failures.
    pub fn new(
        listener: TcpListener,
        queue: Arc<Queue<Job>>,
        config: ReactorConfig,
    ) -> io::Result<(Reactor, Arc<ReactorHandle>)> {
        let epfd = sys::epoll_create()?;
        let wake = Arc::new(WakePipe::new().inspect_err(|_| sys::close_fd(epfd))?);
        let handle = Arc::new(ReactorHandle {
            returns: Mutex::new(Vec::new()),
            wake: Arc::clone(&wake),
            inflight: AtomicUsize::new(0),
        });
        sys::epoll_arm(epfd, listener.as_raw_fd(), LISTENER_TOKEN, sys::EPOLLIN, true)?;
        sys::epoll_arm(epfd, wake.read_fd, WAKE_TOKEN, sys::EPOLLIN, true)?;
        Ok((
            Reactor {
                epfd,
                listener: Some(listener),
                wake,
                handle: Arc::clone(&handle),
                queue,
                config,
                slab: HashMap::new(),
                next_token: FIRST_CONN_TOKEN,
                draining: false,
            },
            handle,
        ))
    }

    /// The event loop. Exits once `stop` is raised and every
    /// in-flight connection has drained.
    pub fn run(mut self, stop: &AtomicBool) {
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 256];
        let mut last_sweep = Instant::now();
        loop {
            let n = match sys::epoll_pump(self.epfd, &mut events, 100) {
                Ok(n) => n,
                Err(_) => {
                    registry().counter("server_reactor_errors_total").inc();
                    0
                }
            };
            for event in &events[..n] {
                let token = event.data;
                match token {
                    LISTENER_TOKEN => self.accept_all(),
                    WAKE_TOKEN => sys::drain_fd(self.wake.read_fd),
                    token => {
                        if let Some(conn) = self.slab.remove(&token) {
                            self.on_readable(conn);
                        }
                    }
                }
            }
            for conn in self.handle.take_returns() {
                self.handle.inflight.fetch_sub(1, Ordering::SeqCst);
                self.reinstate(conn);
            }
            if stop.load(Ordering::SeqCst) && !self.draining {
                self.draining = true;
                // No new connections; parked idle ones close now, the
                // in-flight ones when their workers return them.
                self.listener = None;
                self.slab.clear();
            }
            if self.draining
                && self.slab.is_empty()
                && self.handle.inflight.load(Ordering::SeqCst) == 0
            {
                break;
            }
            if last_sweep.elapsed() >= Duration::from_millis(100) {
                self.sweep_idle();
                last_sweep = Instant::now();
            }
        }
        sys::close_fd(self.epfd);
    }

    fn accept_all(&mut self) {
        loop {
            let accepted = match &self.listener {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _peer)) => {
                    // A panic here (the injection site, or a slab bug)
                    // must cost one connection, not the reactor.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        leakage_faults::panic_point("server/accept");
                        self.admit(stream);
                    }));
                    if result.is_err() {
                        registry().counter("server_accept_panics_total").inc();
                    }
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    // Transient accept errors (EMFILE, aborted
                    // handshake): count and keep serving.
                    registry().counter("server_accept_errors_total").inc();
                    return;
                }
            }
        }
    }

    fn admit(&mut self, stream: std::net::TcpStream) {
        let open = self.slab.len() + self.handle.inflight.load(Ordering::SeqCst);
        if self.draining || open >= self.config.max_connections {
            striped_counter!("server_admission_rejected_total").inc();
            let mut stream = stream;
            let _ = Response::error(503, "connection limit reached")
                .with_header("Retry-After", self.config.retry_after_secs.to_string())
                .write_to(&mut stream);
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1;
        if sys::epoll_arm(
            self.epfd,
            stream.as_raw_fd(),
            token,
            sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLONESHOT,
            true,
        )
        .is_err()
        {
            registry().counter("server_reactor_errors_total").inc();
            return;
        }
        self.slab.insert(token, Connection::new(stream, token));
    }

    /// Reads whatever is ready, then parses and routes the
    /// connection onward. The connection is currently owned by the
    /// reactor (removed from the slab, epoll disarmed by ONESHOT).
    fn on_readable(&mut self, mut conn: Connection) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            if conn.buf.len() >= MAX_BUFFER {
                break;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    striped_counter!("server_transport_errors_total").inc();
                    return; // drop the connection
                }
            }
        }
        conn.last_activity = Instant::now();
        self.advance(conn);
    }

    /// One parse step: dispatch a complete request, answer a bad one
    /// inline, or park for more bytes.
    fn advance(&mut self, mut conn: Connection) {
        match conn.take_request(self.config.max_requests_per_connection) {
            Taken::Request(request) => self.dispatch(conn, request),
            Taken::Bad { bad, recoverable } => {
                let survive = recoverable && !conn.close && !conn.eof && !self.draining;
                let wire = Response::error(bad.status, &bad.reason).into_wire();
                let mut out = Vec::new();
                wire.serialize_into(&mut out, survive);
                striped_counter!("server_responses_4xx_total").inc();
                // Best-effort nonblocking write: 4xx bodies are tiny
                // and virtually always fit the socket buffer.
                let ok = (&conn.stream).write_all(&out).is_ok();
                if survive && ok {
                    self.park(conn);
                }
            }
            Taken::NeedMore => {
                if conn.eof || conn.close || self.draining {
                    return; // nothing more can arrive; drop
                }
                self.park(conn);
            }
        }
    }

    fn dispatch(&mut self, conn: Connection, request: crate::http::Request) {
        self.handle.inflight.fetch_add(1, Ordering::SeqCst);
        if let Err((mut conn, request)) = self.queue.push((conn, request)) {
            self.handle.inflight.fetch_sub(1, Ordering::SeqCst);
            // Health/debug routes answer inline even when saturated —
            // that is exactly when the debug plane matters most. The
            // handlers behind the exempt closure are allocation-light
            // and never touch the sim permits, so the reactor thread
            // is not held hostage.
            if let Some(wire) = (self.config.exempt)(&request) {
                let survive = !conn.close && !conn.eof && !self.draining;
                let mut out = Vec::new();
                wire.serialize_into(&mut out, survive);
                let ok = (&conn.stream).write_all(&out).is_ok();
                if survive && ok {
                    conn.last_activity = Instant::now();
                    self.reinstate(conn);
                }
                return;
            }
            (self.config.on_shed)(&request);
            striped_counter!("server_admission_rejected_total").inc();
            striped_counter!("server_shed_total").inc();
            let wire = Response::error(503, "admission queue full")
                .with_header("Retry-After", self.config.retry_after_secs.to_string())
                .into_wire();
            let mut out = Vec::new();
            wire.serialize_into(&mut out, false);
            let _ = (&conn.stream).write_all(&out);
            let _ = conn.stream.shutdown(std::net::Shutdown::Write);
            // Dropped: shedding closes, so the client re-learns
            // admission state on reconnect rather than livelocking a
            // parked connection.
        }
    }

    /// Re-arms the connection in epoll and parks it in the slab.
    fn park(&mut self, conn: Connection) {
        if sys::epoll_arm(
            self.epfd,
            conn.stream.as_raw_fd(),
            conn.token,
            sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLONESHOT,
            false,
        )
        .is_err()
        {
            registry().counter("server_reactor_errors_total").inc();
            return;
        }
        self.slab.insert(conn.token, conn);
    }

    /// A connection returned by a worker: close it, keep pipelining,
    /// or park it for the next request.
    fn reinstate(&mut self, mut conn: Connection) {
        if conn.close || self.draining {
            return; // drop: drained or marked for close
        }
        conn.last_activity = Instant::now();
        if conn.has_buffered_request() {
            // The worker hit its batch cap with requests still
            // buffered; cycle through the queue again for fairness.
            self.advance(conn);
        } else {
            self.park(conn);
        }
    }

    fn sweep_idle(&mut self) {
        let timeout = self.config.idle_timeout;
        let expired: Vec<u64> = self
            .slab
            .iter()
            .filter(|(_, conn)| conn.last_activity.elapsed() >= timeout)
            .map(|(token, _)| *token)
            .collect();
        for token in expired {
            self.slab.remove(&token);
            registry().counter("server_idle_closed_total").inc();
        }
    }
}

/// The worker loop for the reactor transport: pop parsed jobs,
/// process the request (and any pipelined successors), write, give
/// the connection back.
pub fn reactor_worker(
    queue: &Queue<Job>,
    handle: &ReactorHandle,
    ctx: &RouteContext,
    worker_config: &WorkerConfig,
) {
    while let Some((conn, request)) = queue.pop() {
        // Isolation belt-and-braces: `routes::handle` already catches
        // handler panics; this outer catch covers the protocol layer
        // so no panic whatsoever can kill a worker. The connection is
        // lost to the slab on a protocol-layer panic, so the handle
        // must still learn about it — hence the inner move.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut conn = crate::pool::work_requests(conn, request, ctx, worker_config);
            conn.last_activity = Instant::now();
            handle.give_back(conn);
        }));
        if result.is_err() {
            registry().counter("server_worker_panics_total").inc();
            // The connection was dropped mid-panic; the reactor's
            // inflight count must not leak or drain would hang.
            handle.inflight.fetch_sub(1, Ordering::SeqCst);
            handle.wake();
        }
    }
}
