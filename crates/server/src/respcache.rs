//! LRU response cache keyed by the canonical query.
//!
//! Only successful `GET /v1/*` responses are cached — `/healthz` and
//! `/metrics` must always be fresh, errors should retry the real
//! path, and `POST /v1/sweep` is arbitrary-batch compute. Capacity is
//! small (the artifact space is small), so eviction scans for the
//! least-recently-used entry instead of threading an intrusive list.

use crate::http::{Request, Response};
use std::collections::HashMap;
use std::sync::Mutex;
use std::sync::PoisonError;

/// A bounded LRU map from canonical request key to cached response.
pub struct ResponseCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

struct Inner {
    entries: HashMap<String, Entry>,
    tick: u64,
}

struct Entry {
    response: Response,
    last_used: u64,
}

impl ResponseCache {
    /// A cache holding at most `capacity` responses (0 disables
    /// caching entirely).
    pub fn new(capacity: usize) -> Self {
        ResponseCache {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                tick: 0,
            }),
            capacity,
        }
    }

    /// Whether this request/response pair is cacheable at all.
    pub fn cacheable(request: &Request, response: &Response) -> bool {
        request.method == "GET" && request.path.starts_with("/v1/") && response.status == 200
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<Response> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.entries.get_mut(key)?;
        entry.last_used = tick;
        Some(entry.response.clone())
    }

    /// Inserts `response` under `key`, evicting the least-recently
    /// used entry when full.
    pub fn put(&self, key: &str, response: &Response) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.entries.contains_key(key) && inner.entries.len() >= self.capacity {
            if let Some(oldest) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&oldest);
            }
        }
        inner.entries.insert(
            key.to_string(),
            Entry {
                response: response.clone(),
                last_used: tick,
            },
        );
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entries
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(tag: &str) -> Response {
        Response::json(200, format!("{{\"tag\": \"{tag}\"}}"))
    }

    #[test]
    fn hit_refreshes_recency() {
        let cache = ResponseCache::new(2);
        cache.put("a", &resp("a"));
        cache.put("b", &resp("b"));
        // Touch "a" so "b" is the LRU victim.
        assert!(cache.get("a").is_some());
        cache.put("c", &resp("c"));
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none(), "b was least recently used");
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let cache = ResponseCache::new(1);
        cache.put("k", &resp("v1"));
        cache.put("k", &resp("v2"));
        assert_eq!(cache.len(), 1);
        assert!(cache.get("k").unwrap().body.ends_with(b"\"v2\"}"));
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = ResponseCache::new(0);
        cache.put("k", &resp("v"));
        assert!(cache.is_empty());
    }

    #[test]
    fn cacheability_rules() {
        let req = |method: &str, path: &str| Request {
            method: method.into(),
            path: path.into(),
            query: Vec::new(),
            body: Vec::new(),
        };
        let ok = Response::json(200, "{}".into());
        let err = Response::error(500, "boom");
        assert!(ResponseCache::cacheable(&req("GET", "/v1/table/2"), &ok));
        assert!(!ResponseCache::cacheable(&req("GET", "/healthz"), &ok));
        assert!(!ResponseCache::cacheable(&req("GET", "/metrics"), &ok));
        assert!(!ResponseCache::cacheable(&req("POST", "/v1/sweep"), &ok));
        assert!(!ResponseCache::cacheable(&req("GET", "/v1/table/2"), &err));
    }
}
