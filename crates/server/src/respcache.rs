//! Sharded LRU cache of pre-serialized responses, keyed by the
//! canonical query.
//!
//! Only successful `GET /v1/*` responses are cached — `/healthz` and
//! `/metrics` must always be fresh, errors should retry the real
//! path, and `POST /v1/sweep` is arbitrary-batch compute. Entries are
//! [`WireResponse`]s, so a hit is two `Arc` bumps and a `memcpy` onto
//! the wire — never a re-render.
//!
//! Two properties matter on the hot path and are tested here:
//!
//! - **Sharding**: keys hash (FNV-1a) onto independent locks, so
//!   concurrent workers hitting different artifacts never serialize
//!   on one mutex.
//! - **O(1) eviction**: each shard threads an intrusive
//!   doubly-linked recency list through a slot arena; get, put, and
//!   evict are all constant-time (the previous implementation scanned
//!   every entry for the LRU victim on each eviction).

use crate::http::{Request, WireResponse};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Sentinel for "no slot" in the intrusive list.
const NIL: usize = usize::MAX;

/// Running hit/miss/eviction totals for one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries pushed out by capacity.
    pub evictions: u64,
}

/// A bounded, sharded LRU map from canonical request key to a
/// pre-serialized response.
pub struct ResponseCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// One slot in a shard's arena: the entry plus its recency-list links.
struct Slot {
    key: String,
    value: WireResponse,
    prev: usize,
    next: usize,
}

#[derive(Default)]
struct Shard {
    map: HashMap<String, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used — the eviction victim.
    tail: usize,
}

impl Shard {
    fn new() -> Self {
        Shard {
            head: NIL,
            tail: NIL,
            ..Shard::default()
        }
    }

    fn unlink(&mut self, index: usize) {
        let (prev, next) = (self.slots[index].prev, self.slots[index].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn push_front(&mut self, index: usize) {
        self.slots[index].prev = NIL;
        self.slots[index].next = self.head;
        match self.head {
            NIL => self.tail = index,
            h => self.slots[h].prev = index,
        }
        self.head = index;
    }
}

/// FNV-1a, for shard selection (stable, dependency-free, good enough
/// dispersion over short ASCII keys).
fn fnv1a(key: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in key.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl ResponseCache {
    /// A cache of `shards` independent LRU shards holding `capacity`
    /// entries in total (`capacity == 0` disables caching). Shard
    /// count is clamped to at least 1; per-shard capacity rounds up,
    /// so the effective total may slightly exceed `capacity`.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_capacity = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shards)
        };
        ResponseCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Whether this request/response pair is cacheable at all. Job
    /// endpoints are mutable state (status advances, results appear)
    /// and must never be served from cache.
    pub fn cacheable(request: &Request, status: u16) -> bool {
        request.method == "GET"
            && request.path.starts_with("/v1/")
            && !request.path.starts_with("/v1/jobs")
            && status == 200
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        &self.shards[(fnv1a(key) % self.shards.len() as u64) as usize]
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<WireResponse> {
        let mut shard = self
            .shard(key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let Some(&index) = shard.map.get(key) else {
            drop(shard);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        shard.unlink(index);
        shard.push_front(index);
        let value = shard.slots[index].value.clone();
        drop(shard);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(value)
    }

    /// Inserts `value` under `key`, evicting the shard's
    /// least-recently-used entry when full. All O(1).
    pub fn put(&self, key: &str, value: WireResponse) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let mut shard = self
            .shard(key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(&index) = shard.map.get(key) {
            shard.slots[index].value = value;
            shard.unlink(index);
            shard.push_front(index);
            return;
        }
        let mut evicted = false;
        if shard.map.len() >= self.per_shard_capacity {
            let victim = shard.tail;
            shard.unlink(victim);
            let key = std::mem::take(&mut shard.slots[victim].key);
            shard.map.remove(&key);
            shard.free.push(victim);
            evicted = true;
        }
        let index = match shard.free.pop() {
            Some(index) => {
                shard.slots[index].key = key.to_string();
                shard.slots[index].value = value;
                index
            }
            None => {
                shard.slots.push(Slot {
                    key: key.to_string(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                shard.slots.len() - 1
            }
        };
        shard.push_front(index);
        shard.map.insert(key.to_string(), index);
        drop(shard);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Point-in-time hit/miss/eviction totals.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of cached responses across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).map.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Response;

    fn wire(tag: &str) -> WireResponse {
        Response::json(200, format!("{{\"tag\": \"{tag}\"}}")).into_wire()
    }

    fn body(wire: &WireResponse) -> String {
        String::from_utf8_lossy(wire.body()).into_owned()
    }

    /// Single shard so the LRU order is fully deterministic.
    #[test]
    fn hit_refreshes_recency() {
        let cache = ResponseCache::new(2, 1);
        cache.put("a", wire("a"));
        cache.put("b", wire("b"));
        // Touch "a" so "b" is the LRU victim.
        assert!(cache.get("a").is_some());
        cache.put("c", wire("c"));
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none(), "b was least recently used");
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn eviction_chain_is_exact_lru_order() {
        let cache = ResponseCache::new(3, 1);
        for key in ["a", "b", "c"] {
            cache.put(key, wire(key));
        }
        // Recency now c > b > a; each insert evicts the exact tail.
        cache.put("d", wire("d")); // evicts a
        assert!(cache.get("a").is_none());
        assert!(cache.get("b").is_some()); // recency b > d > c
        cache.put("e", wire("e")); // evicts c
        assert!(cache.get("c").is_none());
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let cache = ResponseCache::new(1, 1);
        cache.put("k", wire("v1"));
        cache.put("k", wire("v2"));
        assert_eq!(cache.len(), 1);
        assert!(body(&cache.get("k").unwrap()).ends_with("\"v2\"}"));
        assert_eq!(cache.stats().evictions, 0, "update is not an eviction");
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = ResponseCache::new(0, 4);
        cache.put("k", wire("v"));
        assert!(cache.is_empty());
    }

    #[test]
    fn stats_count_hits_misses_evictions() {
        let cache = ResponseCache::new(2, 1);
        assert!(cache.get("a").is_none());
        cache.put("a", wire("a"));
        assert!(cache.get("a").is_some());
        cache.put("b", wire("b"));
        cache.put("c", wire("c")); // evicts "a"
        assert!(cache.get("a").is_none());
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 2,
                evictions: 1
            }
        );
    }

    #[test]
    fn shards_partition_the_keyspace() {
        // Headroom (32 per shard for 64 keys) because FNV does not
        // balance shards perfectly; what matters is that no shard
        // evicts while the total stays within capacity.
        let cache = ResponseCache::new(256, 8);
        for i in 0..64 {
            cache.put(&format!("key-{i}"), wire("x"));
        }
        assert_eq!(cache.len(), 64, "distinct keys all fit within capacity");
        assert_eq!(cache.stats().evictions, 0);
        for i in 0..64 {
            assert!(cache.get(&format!("key-{i}")).is_some(), "key-{i}");
        }
    }

    #[test]
    fn cacheability_rules() {
        let req = |method: &str, path: &str| Request {
            method: method.into(),
            path: path.into(),
            query: Vec::new(),
            body: Vec::new(),
            close: false,
            chunked: false,
            trace: crate::trace::ReqTrace::default(),
        };
        assert!(ResponseCache::cacheable(&req("GET", "/v1/table/2"), 200));
        assert!(!ResponseCache::cacheable(&req("GET", "/healthz"), 200));
        assert!(!ResponseCache::cacheable(&req("GET", "/metrics"), 200));
        assert!(!ResponseCache::cacheable(&req("POST", "/v1/sweep"), 200));
        assert!(!ResponseCache::cacheable(&req("GET", "/v1/table/2"), 500));
    }
}
