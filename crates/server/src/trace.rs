//! Request-scoped tracing: trace ids, per-stage latency attribution,
//! and the glue between the hot path and the telemetry flight
//! recorder.
//!
//! Overhead is bounded by construction: the per-request state is a
//! few raw `Instant`s and `u32`s stamped on structs the hot path
//! already owns ([`ReqTrace`] rides inside `Request`, [`StageTrace`]
//! lives on the worker's stack), the response headers are rendered
//! with integer formatters straight into the connection's output
//! buffer, and publishing a record is one seqlock slot store
//! (see `leakage_telemetry::recorder`). `--no-recorder` turns all of
//! it off for A/B measurement (`scripts/bench_serving.sh`).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use leakage_telemetry::{RequestRecord, FLAG_CACHE_HIT, FLAG_CATALOG_HIT, FLAG_PANIC, FLAG_SHED};

/// Per-request trace context, carried inside `Request` from the
/// transport's parser through the admission queue to the worker.
#[derive(Debug, Clone, Copy)]
pub struct ReqTrace {
    /// Trace id: accepted from `X-Request-Id` or generated from a
    /// seeded counter. Never 0 once assigned.
    pub id: u64,
    /// The id came from the client's `X-Request-Id` header: the
    /// caller opted into tracing, so its response carries the full
    /// `Server-Timing` attribution. Generated-id requests are still
    /// recorded in the flight recorder but only echo the id — that
    /// keeps the per-response wire cost of always-on tracing to one
    /// short header.
    pub from_client: bool,
    /// When the request finished parsing (the moment it became
    /// eligible for the admission queue).
    pub parsed_at: Instant,
    /// HTTP parse duration, microseconds.
    pub parse_us: u32,
    /// Request bytes consumed off the socket.
    pub req_bytes: u32,
}

impl Default for ReqTrace {
    fn default() -> Self {
        ReqTrace {
            id: 0,
            from_client: false,
            parsed_at: Instant::now(),
            parse_us: 0,
            req_bytes: 0,
        }
    }
}

/// Global trace-id source: a seeded counter passed through a
/// SplitMix64 finalizer (no `rand` in this workspace). Deterministic
/// per process, unique per request, well-mixed bits.
static NEXT_TRACE: AtomicU64 = AtomicU64::new(0x7061_7065_725f_7472);

/// Generates a fresh nonzero trace id.
pub fn next_trace_id() -> u64 {
    let mut z = NEXT_TRACE.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z = z ^ (z >> 31);
    if z == 0 {
        1
    } else {
        z
    }
}

/// Maps an `X-Request-Id` header value to a u64 trace id: a decimal
/// u64 is taken verbatim (so clients see their own id echoed and can
/// find it in `/debug/requests`), a `0x`-prefixed hex id likewise;
/// anything else is FNV-1a-hashed. Empty/zero values mean "generate".
pub fn parse_trace_id(value: &str) -> u64 {
    let value = value.trim();
    if value.is_empty() {
        return 0;
    }
    if let Ok(id) = value.parse::<u64>() {
        return id;
    }
    if let Some(hex) = value.strip_prefix("0x").or_else(|| value.strip_prefix("0X")) {
        if let Ok(id) = u64::from_str_radix(hex, 16) {
            return id;
        }
    }
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in value.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if hash == 0 {
        1
    } else {
        hash
    }
}

/// Stage attribution filled in by the handler while it runs. `Cell`s
/// so `routes::handle` can update it through a shared reference from
/// inside `catch_unwind(AssertUnwindSafe(..))`.
#[derive(Debug, Default)]
pub struct StageTrace {
    /// Time spent waiting for a sim/sweep concurrency permit.
    pub permit_us: Cell<u32>,
    /// Time spent in the profile store / query compute.
    pub store_us: Cell<u32>,
    /// Served from the response cache.
    pub cache_hit: Cell<bool>,
    /// Served from the pre-serialized artifact catalog.
    pub catalog_hit: Cell<bool>,
    /// Shed (no permit / queue full).
    pub shed: Cell<bool>,
    /// The handler panicked (answered 500).
    pub panicked: Cell<bool>,
}

impl StageTrace {
    /// Packs the outcome flags into the record's flag byte.
    pub fn flags(&self) -> u8 {
        let mut flags = 0;
        if self.shed.get() {
            flags |= FLAG_SHED;
        }
        if self.panicked.get() {
            flags |= FLAG_PANIC;
        }
        if self.cache_hit.get() {
            flags |= FLAG_CACHE_HIT;
        }
        if self.catalog_hit.get() {
            flags |= FLAG_CATALOG_HIT;
        }
        flags
    }
}

/// A record waiting for its batch's socket write: everything is known
/// except `write_us`/`total_us`/`end_us`, which the worker fills in
/// after `flush_output` so the recorder sees the real write cost.
#[derive(Debug, Clone, Copy)]
pub struct PendingRecord {
    /// The request's parse-completion instant (total = parse_us +
    /// elapsed since this at flush time).
    pub parsed_at: Instant,
    /// The partially-filled record.
    pub record: RequestRecord,
}

/// Saturating `Duration` → whole microseconds in u32 (71 minutes
/// saturates — far past any request timeout).
pub fn us32(duration: Duration) -> u32 {
    u32::try_from(duration.as_micros()).unwrap_or(u32::MAX)
}

/// Appends a decimal u64 without allocating.
pub fn push_u64(out: &mut Vec<u8>, value: u64) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    let mut v = value;
    loop {
        i -= 1;
        digits[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.extend_from_slice(&digits[i..]);
}

/// Fixed-size stack writer for header rendering: digits and literals
/// land in one buffer that is appended to the connection's output in
/// a single `extend_from_slice`, instead of per-digit `Vec` pushes on
/// the hot path.
struct HeaderBuf {
    buf: [u8; 256],
    len: usize,
}

impl HeaderBuf {
    fn new() -> HeaderBuf {
        HeaderBuf {
            buf: [0; 256],
            len: 0,
        }
    }

    fn lit(&mut self, s: &[u8]) {
        self.buf[self.len..self.len + s.len()].copy_from_slice(s);
        self.len += s.len();
    }

    fn u64(&mut self, value: u64) {
        let mut digits = [0u8; 20];
        let mut i = digits.len();
        let mut v = value;
        loop {
            i -= 1;
            digits[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        self.lit(&digits[i..]);
    }

    /// Microseconds as `Server-Timing` milliseconds
    /// (`<ms>.<3-digit-fraction>`), e.g. `1234` → `1.234`.
    fn ms(&mut self, us: u32) {
        self.u64(u64::from(us / 1000));
        let frac = us % 1000;
        self.lit(&[
            b'.',
            b'0' + (frac / 100) as u8,
            b'0' + (frac / 10 % 10) as u8,
            b'0' + (frac % 10) as u8,
        ]);
    }
}

/// The per-response trace headers, rendered between a
/// `WireResponse`'s shared head and its `Connection` line.
///
/// `serialize` and `write` happen *after* this header is rendered, so
/// they report the connection's previous flushed response (0 on the
/// first); the flight-recorder record carries the exact values.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimingHeader {
    /// Trace id echoed as `X-Request-Id`.
    pub id: u64,
    /// `parse` stage, microseconds.
    pub parse_us: u32,
    /// `queue` stage (admission-queue wait).
    pub queue_us: u32,
    /// `permit` stage (concurrency-permit wait).
    pub permit_us: u32,
    /// `handler` stage.
    pub handler_us: u32,
    /// `store` stage (profile store / query compute).
    pub store_us: u32,
    /// Previous response's `serialize` stage on this connection.
    pub prev_serialize_us: u32,
    /// Previous batch's socket `write` on this connection.
    pub prev_write_us: u32,
}

impl TimingHeader {
    /// Renders the `X-Request-Id` echo, plus the `Server-Timing`
    /// attribution line when `timing` is set (the request carried a
    /// client-supplied id — tracing callers get the full breakdown,
    /// everyone else pays only for the one-line echo).
    pub fn render(&self, out: &mut Vec<u8>, timing: bool) {
        let mut h = HeaderBuf::new();
        h.lit(b"X-Request-Id: ");
        h.u64(self.id);
        if timing {
            h.lit(b"\r\nServer-Timing: parse;dur=");
            h.ms(self.parse_us);
            h.lit(b", queue;dur=");
            h.ms(self.queue_us);
            h.lit(b", permit;dur=");
            h.ms(self.permit_us);
            h.lit(b", handler;dur=");
            h.ms(self.handler_us);
            h.lit(b", store;dur=");
            h.ms(self.store_us);
            h.lit(b", serialize;dur=");
            h.ms(self.prev_serialize_us);
            h.lit(b", write;dur=");
            h.ms(self.prev_write_us);
        }
        h.lit(b"\r\n");
        out.extend_from_slice(&h.buf[..h.len]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_trace_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate generated trace id {id}");
        }
    }

    #[test]
    fn client_ids_round_trip() {
        assert_eq!(parse_trace_id("424242"), 424242);
        assert_eq!(parse_trace_id(" 7 "), 7);
        assert_eq!(parse_trace_id("0xff"), 255);
        assert_eq!(parse_trace_id(""), 0);
        assert_eq!(parse_trace_id("0"), 0, "zero means generate");
        let hashed = parse_trace_id("req-abc-123");
        assert_ne!(hashed, 0);
        assert_eq!(hashed, parse_trace_id("req-abc-123"), "hash is stable");
    }

    #[test]
    fn timing_header_renders_ms_with_micros_fraction() {
        let mut out = Vec::new();
        TimingHeader {
            id: 42,
            parse_us: 1,
            queue_us: 1234,
            permit_us: 0,
            handler_us: 50_000,
            store_us: 49_999,
            prev_serialize_us: 12,
            prev_write_us: 345,
        }
        .render(&mut out, true);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            "X-Request-Id: 42\r\nServer-Timing: parse;dur=0.001, \
             queue;dur=1.234, permit;dur=0.000, handler;dur=50.000, \
             store;dur=49.999, serialize;dur=0.012, write;dur=0.345\r\n"
        );
    }

    #[test]
    fn untraced_requests_only_get_the_id_echo() {
        let mut out = Vec::new();
        TimingHeader {
            id: u64::MAX,
            ..TimingHeader::default()
        }
        .render(&mut out, false);
        assert_eq!(
            String::from_utf8(out).unwrap(),
            format!("X-Request-Id: {}\r\n", u64::MAX),
        );
    }

    #[test]
    fn u64_rendering_matches_display() {
        for value in [0u64, 7, 10, 999, 1000, u64::MAX] {
            let mut out = Vec::new();
            push_u64(&mut out, value);
            assert_eq!(String::from_utf8(out).unwrap(), value.to_string());
        }
    }
}
