//! A closed-loop load generator for the analysis service.
//!
//! Each connection-thread issues one request at a time
//! (connection-per-request — the server is `Connection: close`),
//! walking a weighted path mix round-robin. Closed-loop means offered
//! load adapts to service rate, so the report measures the server's
//! sustainable throughput rather than queue growth.

use crate::http::{fetch, ClientResponse};
use leakage_telemetry::json;
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// What to offer against the server.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Concurrent closed-loop connections.
    pub connections: usize,
    /// How long to run.
    pub duration: Duration,
    /// `(path, weight)` request mix; weights are relative frequencies.
    pub mix: Vec<(String, u32)>,
    /// Per-request client timeout.
    pub timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:8080".parse().expect("literal address"),
            connections: 4,
            duration: Duration::from_secs(5),
            mix: vec![
                ("/v1/table/2?scale=test".to_string(), 8),
                ("/healthz".to_string(), 1),
                ("/metrics".to_string(), 1),
            ],
            timeout: Duration::from_secs(30),
        }
    }
}

/// Aggregated results of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests that completed with any HTTP status.
    pub requests: u64,
    /// 2xx responses.
    pub status_2xx: u64,
    /// 4xx responses.
    pub status_4xx: u64,
    /// 5xx responses.
    pub status_5xx: u64,
    /// Transport errors (connect/read/write failures, timeouts).
    pub transport_errors: u64,
    /// Wall-clock seconds the run took.
    pub elapsed_secs: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
}

impl LoadReport {
    /// The report as a JSON document (the loadgen CLI's output, and
    /// what CI archives as `results/serving-baseline.json`).
    pub fn to_json(&self) -> String {
        let num_u = |v: u64| v.to_string();
        json::object([
            json::key("requests") + &num_u(self.requests),
            json::key("status_2xx") + &num_u(self.status_2xx),
            json::key("status_4xx") + &num_u(self.status_4xx),
            json::key("status_5xx") + &num_u(self.status_5xx),
            json::key("transport_errors") + &num_u(self.transport_errors),
            json::key("elapsed_secs") + &format!("{:.3}", self.elapsed_secs),
            json::key("throughput_rps") + &format!("{:.1}", self.throughput_rps),
            json::key("p50_us") + &num_u(self.p50_us),
            json::key("p95_us") + &num_u(self.p95_us),
            json::key("p99_us") + &num_u(self.p99_us),
        ])
    }
}

/// Expands the weighted mix into a deterministic request schedule.
fn schedule(mix: &[(String, u32)]) -> Vec<String> {
    let mut paths = Vec::new();
    for (path, weight) in mix {
        for _ in 0..*weight {
            paths.push(path.clone());
        }
    }
    if paths.is_empty() {
        paths.push("/healthz".to_string());
    }
    paths
}

struct ThreadStats {
    latencies_us: Vec<u64>,
    status_2xx: u64,
    status_4xx: u64,
    status_5xx: u64,
    transport_errors: u64,
}

fn drive(config: &LoadgenConfig, offset: usize, deadline: Instant) -> ThreadStats {
    let paths = schedule(&config.mix);
    let mut stats = ThreadStats {
        latencies_us: Vec::new(),
        status_2xx: 0,
        status_4xx: 0,
        status_5xx: 0,
        transport_errors: 0,
    };
    let mut cursor = offset % paths.len();
    while Instant::now() < deadline {
        let path = &paths[cursor];
        cursor = (cursor + 1) % paths.len();
        let started = Instant::now();
        match fetch(config.addr, "GET", path, None, config.timeout) {
            Ok(ClientResponse { status, .. }) => {
                let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                stats.latencies_us.push(micros);
                match status {
                    200..=299 => stats.status_2xx += 1,
                    400..=499 => stats.status_4xx += 1,
                    _ => stats.status_5xx += 1,
                }
            }
            Err(_) => stats.transport_errors += 1,
        }
    }
    stats
}

/// Sorted-latency percentile: nearest-rank over the merged sample.
fn percentile(sorted_us: &[u64], fraction: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = (fraction * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.saturating_sub(1).min(sorted_us.len() - 1)]
}

/// Runs the closed loop and aggregates the report.
///
/// # Errors
///
/// Thread-spawn failures only; per-request transport errors are
/// counted in the report instead.
pub fn run(config: &LoadgenConfig) -> io::Result<LoadReport> {
    let started = Instant::now();
    let deadline = started + config.duration;
    let mut handles = Vec::new();
    for index in 0..config.connections.max(1) {
        let config = config.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("loadgen-{index}"))
                .spawn(move || drive(&config, index, deadline))?,
        );
    }
    let mut latencies = Vec::new();
    let (mut s2, mut s4, mut s5, mut errors) = (0u64, 0u64, 0u64, 0u64);
    for handle in handles {
        if let Ok(stats) = handle.join() {
            latencies.extend(stats.latencies_us);
            s2 += stats.status_2xx;
            s4 += stats.status_4xx;
            s5 += stats.status_5xx;
            errors += stats.transport_errors;
        }
    }
    latencies.sort_unstable();
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let requests = latencies.len() as u64;
    Ok(LoadReport {
        requests,
        status_2xx: s2,
        status_4xx: s4,
        status_5xx: s5,
        transport_errors: errors,
        elapsed_secs: elapsed,
        throughput_rps: requests as f64 / elapsed,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_respects_weights() {
        let mix = vec![("/a".to_string(), 3), ("/b".to_string(), 1)];
        let paths = schedule(&mix);
        assert_eq!(paths.len(), 4);
        assert_eq!(paths.iter().filter(|p| *p == "/a").count(), 3);
        assert_eq!(schedule(&[]), vec!["/healthz".to_string()]);
    }

    #[test]
    fn percentiles_over_sorted_samples() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.95), 95);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn report_serializes_to_json() {
        let report = LoadReport {
            requests: 10,
            status_2xx: 9,
            status_4xx: 1,
            status_5xx: 0,
            transport_errors: 0,
            elapsed_secs: 2.0,
            throughput_rps: 5.0,
            p50_us: 100,
            p95_us: 200,
            p99_us: 300,
        };
        let doc = leakage_telemetry::json::parse(&report.to_json()).unwrap();
        assert_eq!(doc.get("requests").and_then(|v| v.as_f64()), Some(10.0));
        assert_eq!(doc.get("throughput_rps").and_then(|v| v.as_f64()), Some(5.0));
        assert_eq!(doc.get("p99_us").and_then(|v| v.as_f64()), Some(300.0));
    }
}
