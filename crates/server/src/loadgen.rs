//! A closed-loop load generator for the analysis service.
//!
//! Each connection-thread holds one **keep-alive** connection, walks a
//! weighted path mix round-robin, and optionally pipelines a batch of
//! requests per write. Closed-loop means offered load adapts to
//! service rate, so the report measures the server's sustainable
//! throughput rather than queue growth. `keep_alive: false` restores
//! the PR-5 connection-per-request behavior — the bench trajectory's
//! baseline configuration.
//!
//! Latency is measured per response from the moment its batch was
//! written (so under pipelining, later responses in a batch include
//! their queueing delay behind earlier ones — that is the latency a
//! pipelining client actually observes). Percentiles interpolate
//! linearly between order statistics instead of nearest-rank, so
//! small samples don't quantize.

use crate::http::{fetch, Client, ClientResponse};
use leakage_telemetry::json;
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// What to offer against the server.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Concurrent closed-loop connections.
    pub connections: usize,
    /// How long to run.
    pub duration: Duration,
    /// `(path, weight)` request mix; weights are relative frequencies.
    pub mix: Vec<(String, u32)>,
    /// Per-request client timeout.
    pub timeout: Duration,
    /// Reuse connections (HTTP/1.1 keep-alive). `false` opens a fresh
    /// connection per request.
    pub keep_alive: bool,
    /// Requests pipelined per write on a keep-alive connection
    /// (clamped to ≥ 1; meaningless without `keep_alive`).
    pub pipeline: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:8080".parse().expect("literal address"),
            connections: 4,
            duration: Duration::from_secs(5),
            mix: vec![
                ("/v1/table/2?scale=test".to_string(), 8),
                ("/healthz".to_string(), 1),
                ("/metrics".to_string(), 1),
            ],
            timeout: Duration::from_secs(30),
            keep_alive: true,
            pipeline: 1,
        }
    }
}

/// Aggregated results of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests that completed with any HTTP status.
    pub requests: u64,
    /// 2xx responses.
    pub status_2xx: u64,
    /// 4xx responses.
    pub status_4xx: u64,
    /// 5xx responses.
    pub status_5xx: u64,
    /// Transport errors (connect/read/write failures, timeouts).
    pub transport_errors: u64,
    /// Wall-clock seconds the run took.
    pub elapsed_secs: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Median latency, microseconds (interpolated).
    pub p50_us: u64,
    /// 95th-percentile latency, microseconds (interpolated).
    pub p95_us: u64,
    /// 99th-percentile latency, microseconds (interpolated).
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
    /// TCP connections opened over the whole run.
    pub connections_opened: u64,
    /// Reconnects after the first connection per thread (server-side
    /// closes, request budgets, transport errors).
    pub reconnects: u64,
}

impl LoadReport {
    /// The report as a JSON document (the loadgen CLI's output, and
    /// what CI archives under `results/`).
    pub fn to_json(&self) -> String {
        let num_u = |v: u64| v.to_string();
        json::object([
            json::key("requests") + &num_u(self.requests),
            json::key("status_2xx") + &num_u(self.status_2xx),
            json::key("status_4xx") + &num_u(self.status_4xx),
            json::key("status_5xx") + &num_u(self.status_5xx),
            json::key("transport_errors") + &num_u(self.transport_errors),
            json::key("elapsed_secs") + &format!("{:.3}", self.elapsed_secs),
            json::key("throughput_rps") + &format!("{:.1}", self.throughput_rps),
            json::key("p50_us") + &num_u(self.p50_us),
            json::key("p95_us") + &num_u(self.p95_us),
            json::key("p99_us") + &num_u(self.p99_us),
            json::key("max_us") + &num_u(self.max_us),
            json::key("connections_opened") + &num_u(self.connections_opened),
            json::key("reconnects") + &num_u(self.reconnects),
        ])
    }
}

/// Expands the weighted mix into a deterministic request schedule.
fn schedule(mix: &[(String, u32)]) -> Vec<String> {
    let mut paths = Vec::new();
    for (path, weight) in mix {
        for _ in 0..*weight {
            paths.push(path.clone());
        }
    }
    if paths.is_empty() {
        paths.push("/healthz".to_string());
    }
    paths
}

#[derive(Default)]
struct ThreadStats {
    latencies_us: Vec<u64>,
    status_2xx: u64,
    status_4xx: u64,
    status_5xx: u64,
    transport_errors: u64,
    connections_opened: u64,
    reconnects: u64,
}

impl ThreadStats {
    fn count(&mut self, status: u16, latency_us: u64) {
        self.latencies_us.push(latency_us);
        match status {
            200..=299 => self.status_2xx += 1,
            400..=499 => self.status_4xx += 1,
            _ => self.status_5xx += 1,
        }
    }
}

/// Connection-per-request driver (`keep_alive: false`).
fn drive_closing(config: &LoadgenConfig, offset: usize, deadline: Instant) -> ThreadStats {
    let paths = schedule(&config.mix);
    let mut stats = ThreadStats::default();
    let mut cursor = offset % paths.len();
    while Instant::now() < deadline {
        let path = &paths[cursor];
        cursor = (cursor + 1) % paths.len();
        let started = Instant::now();
        stats.connections_opened += 1;
        match fetch(config.addr, "GET", path, None, config.timeout) {
            Ok(ClientResponse { status, .. }) => {
                let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                stats.count(status, micros);
            }
            Err(_) => stats.transport_errors += 1,
        }
    }
    stats
}

/// Keep-alive (optionally pipelined) driver. Reconnects when the
/// server closes the connection (`Connection: close`, request budget,
/// drain) — a clean close after a complete response is a reconnect,
/// not a transport error.
fn drive_keepalive(config: &LoadgenConfig, offset: usize, deadline: Instant) -> ThreadStats {
    let paths = schedule(&config.mix);
    let batch = config.pipeline.max(1);
    let mut stats = ThreadStats::default();
    let mut cursor = offset % paths.len();
    let mut client: Option<Client> = None;

    while Instant::now() < deadline {
        if client.is_none() {
            match Client::connect(config.addr, config.timeout) {
                Ok(conn) => {
                    stats.connections_opened += 1;
                    if stats.connections_opened > 1 {
                        stats.reconnects += 1;
                    }
                    client = Some(conn);
                }
                Err(_) => {
                    stats.transport_errors += 1;
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
            }
        }
        let conn = client.as_mut().expect("connected above");

        let targets: Vec<&str> = (0..batch)
            .map(|i| paths[(cursor + i) % paths.len()].as_str())
            .collect();
        cursor = (cursor + batch) % paths.len();

        let sent = Instant::now();
        if conn.send_pipelined(&targets).is_err() {
            stats.transport_errors += 1;
            client = None;
            continue;
        }
        let mut server_closed = false;
        for answered in 0..batch {
            match conn.recv() {
                Ok(response) => {
                    let micros = u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX);
                    stats.count(response.status, micros);
                    if response
                        .header("connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                    {
                        // Clean close: any later requests in this
                        // batch were legitimately discarded.
                        server_closed = true;
                        break;
                    }
                }
                Err(err) => {
                    // EOF before the batch's first response is a
                    // server-side close that raced our send (e.g.
                    // idle timeout) — retry on a fresh connection
                    // rather than miscounting it as a failure.
                    if !(answered == 0 && err.kind() == io::ErrorKind::UnexpectedEof) {
                        stats.transport_errors += 1;
                    }
                    server_closed = true;
                    break;
                }
            }
        }
        if server_closed {
            client = None;
        }
    }
    stats
}

/// Interpolated percentile over a sorted sample: rank
/// `fraction * (n - 1)` with linear interpolation between adjacent
/// order statistics (the "exclusive..inclusive" blend NumPy calls
/// `linear`), rounded to whole microseconds.
fn percentile(sorted_us: &[u64], fraction: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = fraction.clamp(0.0, 1.0) * (sorted_us.len() - 1) as f64;
    let lower = rank.floor() as usize;
    let upper = rank.ceil() as usize;
    let weight = rank - lower as f64;
    let blended =
        sorted_us[lower] as f64 + (sorted_us[upper] as f64 - sorted_us[lower] as f64) * weight;
    blended.round() as u64
}

/// Runs the closed loop and aggregates the report.
///
/// # Errors
///
/// Thread-spawn failures only; per-request transport errors are
/// counted in the report instead.
pub fn run(config: &LoadgenConfig) -> io::Result<LoadReport> {
    let started = Instant::now();
    let deadline = started + config.duration;
    let mut handles = Vec::new();
    for index in 0..config.connections.max(1) {
        let config = config.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("loadgen-{index}"))
                .spawn(move || {
                    if config.keep_alive {
                        drive_keepalive(&config, index, deadline)
                    } else {
                        drive_closing(&config, index, deadline)
                    }
                })?,
        );
    }
    let mut latencies = Vec::new();
    let mut totals = ThreadStats::default();
    for handle in handles {
        if let Ok(stats) = handle.join() {
            latencies.extend(stats.latencies_us);
            totals.status_2xx += stats.status_2xx;
            totals.status_4xx += stats.status_4xx;
            totals.status_5xx += stats.status_5xx;
            totals.transport_errors += stats.transport_errors;
            totals.connections_opened += stats.connections_opened;
            totals.reconnects += stats.reconnects;
        }
    }
    latencies.sort_unstable();
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let requests = latencies.len() as u64;
    Ok(LoadReport {
        requests,
        status_2xx: totals.status_2xx,
        status_4xx: totals.status_4xx,
        status_5xx: totals.status_5xx,
        transport_errors: totals.transport_errors,
        elapsed_secs: elapsed,
        throughput_rps: requests as f64 / elapsed,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
        max_us: latencies.last().copied().unwrap_or(0),
        connections_opened: totals.connections_opened,
        reconnects: totals.reconnects,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_respects_weights() {
        let mix = vec![("/a".to_string(), 3), ("/b".to_string(), 1)];
        let paths = schedule(&mix);
        assert_eq!(paths.len(), 4);
        assert_eq!(paths.iter().filter(|p| *p == "/a").count(), 3);
        assert_eq!(schedule(&[]), vec!["/healthz".to_string()]);
    }

    #[test]
    fn percentiles_interpolate_between_order_statistics() {
        // 0..=100: rank = f * 100 lands exactly on the value f * 100.
        let sorted: Vec<u64> = (0..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.95), 95);
        assert_eq!(percentile(&sorted, 0.99), 99);
        // Between order statistics: p50 of [10, 20, 30, 40] is
        // rank 1.5 → halfway between 20 and 30.
        assert_eq!(percentile(&[10, 20, 30, 40], 0.50), 25);
        // p90 of [0, 100] is rank 0.9 → 90 (nearest-rank would say 100).
        assert_eq!(percentile(&[0, 100], 0.90), 90);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn percentiles_on_a_known_distribution() {
        // 1000 samples uniform over 1..=1000 µs, pre-sorted: the
        // interpolated percentile of a uniform grid must land on the
        // grid itself (p = f·(n-1)+1 exactly).
        let sorted: Vec<u64> = (1..=1000).collect();
        assert_eq!(percentile(&sorted, 0.0), 1);
        assert_eq!(percentile(&sorted, 1.0), 1000);
        assert_eq!(percentile(&sorted, 0.50), 501, "median of 1..=1000");
        assert_eq!(percentile(&sorted, 0.95), 950);
        assert_eq!(percentile(&sorted, 0.99), 990);
        // Interpolation is monotone in the fraction.
        let mut last = 0;
        for f in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let p = percentile(&sorted, f);
            assert!(p >= last, "percentile must be monotone, {p} < {last}");
            last = p;
        }
    }

    #[test]
    fn report_serializes_to_json() {
        let report = LoadReport {
            requests: 10,
            status_2xx: 9,
            status_4xx: 1,
            status_5xx: 0,
            transport_errors: 0,
            elapsed_secs: 2.0,
            throughput_rps: 5.0,
            p50_us: 100,
            p95_us: 200,
            p99_us: 300,
            max_us: 350,
            connections_opened: 4,
            reconnects: 0,
        };
        let doc = leakage_telemetry::json::parse(&report.to_json()).unwrap();
        assert_eq!(doc.get("requests").and_then(|v| v.as_f64()), Some(10.0));
        assert_eq!(doc.get("throughput_rps").and_then(|v| v.as_f64()), Some(5.0));
        assert_eq!(doc.get("p99_us").and_then(|v| v.as_f64()), Some(300.0));
        assert_eq!(doc.get("max_us").and_then(|v| v.as_f64()), Some(350.0));
        assert_eq!(
            doc.get("connections_opened").and_then(|v| v.as_f64()),
            Some(4.0)
        );
    }
}
