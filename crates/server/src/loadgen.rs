//! A closed-loop load generator for the analysis service.
//!
//! Each connection-thread holds one **keep-alive** connection, walks a
//! weighted path mix round-robin, and optionally pipelines a batch of
//! requests per write. Closed-loop means offered load adapts to
//! service rate, so the report measures the server's sustainable
//! throughput rather than queue growth. `keep_alive: false` restores
//! the PR-5 connection-per-request behavior — the bench trajectory's
//! baseline configuration.
//!
//! Latency is measured per response from the moment its batch was
//! written (so under pipelining, later responses in a batch include
//! their queueing delay behind earlier ones — that is the latency a
//! pipelining client actually observes). Percentiles interpolate
//! linearly between order statistics instead of nearest-rank, so
//! small samples don't quantize.

use crate::http::{fetch_traced, Client};
use leakage_telemetry::json;
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// What to offer against the server.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Concurrent closed-loop connections.
    pub connections: usize,
    /// How long to run.
    pub duration: Duration,
    /// `(path, weight)` request mix; weights are relative frequencies.
    pub mix: Vec<(String, u32)>,
    /// Per-request client timeout.
    pub timeout: Duration,
    /// Reuse connections (HTTP/1.1 keep-alive). `false` opens a fresh
    /// connection per request.
    pub keep_alive: bool,
    /// Requests pipelined per write on a keep-alive connection
    /// (clamped to ≥ 1; meaningless without `keep_alive`).
    pub pipeline: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:8080".parse().expect("literal address"),
            connections: 4,
            duration: Duration::from_secs(5),
            mix: vec![
                ("/v1/table/2?scale=test".to_string(), 8),
                ("/healthz".to_string(), 1),
                ("/metrics".to_string(), 1),
            ],
            timeout: Duration::from_secs(30),
            keep_alive: true,
            pipeline: 1,
        }
    }
}

/// Aggregated results of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests that completed with any HTTP status.
    pub requests: u64,
    /// 2xx responses.
    pub status_2xx: u64,
    /// 4xx responses.
    pub status_4xx: u64,
    /// 5xx responses.
    pub status_5xx: u64,
    /// Transport errors (connect/read/write failures, timeouts).
    pub transport_errors: u64,
    /// Wall-clock seconds the run took.
    pub elapsed_secs: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Median latency, microseconds (interpolated).
    pub p50_us: u64,
    /// 95th-percentile latency, microseconds (interpolated).
    pub p95_us: u64,
    /// 99th-percentile latency, microseconds (interpolated).
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
    /// TCP connections opened over the whole run.
    pub connections_opened: u64,
    /// Reconnects after the first connection per thread (server-side
    /// closes, request budgets, transport errors).
    pub reconnects: u64,
    /// Server-side latency attribution distilled from `Server-Timing`
    /// response headers, one entry per stage the server reported.
    pub server_stages: Vec<StageSummary>,
}

/// Stage labels in the server's `Server-Timing` header, in the order
/// the serving path runs them.
pub const TIMING_STAGES: [&str; 7] = [
    "parse", "queue", "permit", "handler", "store", "serialize", "write",
];

/// One stage's latency summary across every response that reported it.
#[derive(Debug, Clone)]
pub struct StageSummary {
    /// Stage label (one of [`TIMING_STAGES`]).
    pub stage: &'static str,
    /// Responses that carried this stage.
    pub count: u64,
    /// Mean stage latency, microseconds.
    pub mean_us: f64,
    /// Interpolated 99th-percentile stage latency, microseconds.
    pub p99_us: u64,
}

/// Requests between `Server-Timing` samples on each loadgen thread.
/// `Server-Timing` is opt-in per request (the server attributes
/// responses whose request carried an `X-Request-Id`), so the loadgen
/// attaches an id to every Nth request: stage statistics still see
/// thousands of samples per run, while the measured workload stays
/// representative of ordinary (untraced) clients.
const TIMING_SAMPLE_EVERY: u64 = 8;

/// `dur=` milliseconds → whole microseconds. Fast path for the
/// server's canonical `M.FFF` rendering (pure integer math — `f64`
/// parsing is measurably expensive on the closed loop); any other
/// shape falls back to a float parse.
fn dur_ms_to_us(ms: &str) -> Option<u64> {
    if let Some((whole, frac)) = ms.split_once('.') {
        if frac.len() == 3 && frac.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(whole) = whole.parse::<u64>() {
                let frac: u64 = frac
                    .bytes()
                    .fold(0, |acc, b| acc * 10 + u64::from(b - b'0'));
                return Some(whole * 1000 + frac);
            }
        }
    }
    ms.parse::<f64>().ok().map(|v| (v * 1000.0).round() as u64)
}

/// Accumulates `Server-Timing` durations (converted to µs) into the
/// per-stage sample vectors. Unknown stage names are ignored so the
/// loadgen keeps working against servers that add stages.
fn parse_server_timing(header: &str, stage_us: &mut [Vec<u64>; 7]) {
    for entry in header.split(',') {
        let mut parts = entry.trim().split(';');
        let Some(name) = parts.next() else { continue };
        let Some(index) = TIMING_STAGES.iter().position(|s| *s == name.trim()) else {
            continue;
        };
        for attr in parts {
            if let Some(ms) = attr.trim().strip_prefix("dur=") {
                if let Some(us) = dur_ms_to_us(ms) {
                    stage_us[index].push(us);
                }
            }
        }
    }
}

impl LoadReport {
    /// The report as a JSON document (the loadgen CLI's output, and
    /// what CI archives under `results/`).
    pub fn to_json(&self) -> String {
        let num_u = |v: u64| v.to_string();
        json::object([
            json::key("requests") + &num_u(self.requests),
            json::key("status_2xx") + &num_u(self.status_2xx),
            json::key("status_4xx") + &num_u(self.status_4xx),
            json::key("status_5xx") + &num_u(self.status_5xx),
            json::key("transport_errors") + &num_u(self.transport_errors),
            json::key("elapsed_secs") + &format!("{:.3}", self.elapsed_secs),
            json::key("throughput_rps") + &format!("{:.1}", self.throughput_rps),
            json::key("p50_us") + &num_u(self.p50_us),
            json::key("p95_us") + &num_u(self.p95_us),
            json::key("p99_us") + &num_u(self.p99_us),
            json::key("max_us") + &num_u(self.max_us),
            json::key("connections_opened") + &num_u(self.connections_opened),
            json::key("reconnects") + &num_u(self.reconnects),
            json::key("server_stages")
                + &json::object(self.server_stages.iter().map(|s| {
                    json::key(s.stage)
                        + &json::object([
                            json::key("count") + &num_u(s.count),
                            json::key("mean_us") + &format!("{:.1}", s.mean_us),
                            json::key("p99_us") + &num_u(s.p99_us),
                        ])
                })),
        ])
    }
}

/// Expands the weighted mix into a deterministic request schedule.
fn schedule(mix: &[(String, u32)]) -> Vec<String> {
    let mut paths = Vec::new();
    for (path, weight) in mix {
        for _ in 0..*weight {
            paths.push(path.clone());
        }
    }
    if paths.is_empty() {
        paths.push("/healthz".to_string());
    }
    paths
}

#[derive(Default)]
struct ThreadStats {
    latencies_us: Vec<u64>,
    stage_us: [Vec<u64>; 7],
    status_2xx: u64,
    status_4xx: u64,
    status_5xx: u64,
    transport_errors: u64,
    connections_opened: u64,
    reconnects: u64,
}

impl ThreadStats {
    fn count(&mut self, status: u16, latency_us: u64) {
        self.latencies_us.push(latency_us);
        match status {
            200..=299 => self.status_2xx += 1,
            400..=499 => self.status_4xx += 1,
            _ => self.status_5xx += 1,
        }
    }
}

/// Connection-per-request driver (`keep_alive: false`).
fn drive_closing(config: &LoadgenConfig, offset: usize, deadline: Instant) -> ThreadStats {
    let paths = schedule(&config.mix);
    let mut stats = ThreadStats::default();
    let mut cursor = offset % paths.len();
    let mut sent: u64 = 0;
    while Instant::now() < deadline {
        let path = &paths[cursor];
        cursor = (cursor + 1) % paths.len();
        let trace_id = sample_trace_id(offset, &mut sent);
        let started = Instant::now();
        stats.connections_opened += 1;
        match fetch_traced(config.addr, "GET", path, trace_id, None, config.timeout) {
            Ok(response) => {
                let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                stats.count(response.status, micros);
                if trace_id.is_some() {
                    if let Some(timing) = response.header("server-timing") {
                        parse_server_timing(timing, &mut stats.stage_us);
                    }
                }
            }
            Err(_) => stats.transport_errors += 1,
        }
    }
    stats
}

/// Yields `Some(id)` on every [`TIMING_SAMPLE_EVERY`]th request of a
/// loadgen thread (and the first, so short runs still sample),
/// deriving an id unique across threads from the thread offset.
fn sample_trace_id(offset: usize, sent: &mut u64) -> Option<u64> {
    let n = *sent;
    *sent += 1;
    if n % TIMING_SAMPLE_EVERY == 0 {
        Some(((offset as u64 + 1) << 40) | (n + 1))
    } else {
        None
    }
}

/// Keep-alive (optionally pipelined) driver. Reconnects when the
/// server closes the connection (`Connection: close`, request budget,
/// drain) — a clean close after a complete response is a reconnect,
/// not a transport error.
fn drive_keepalive(config: &LoadgenConfig, offset: usize, deadline: Instant) -> ThreadStats {
    let paths = schedule(&config.mix);
    let batch = config.pipeline.max(1);
    let mut stats = ThreadStats::default();
    let mut cursor = offset % paths.len();
    let mut requests_sent: u64 = 0;
    let mut client: Option<Client> = None;

    while Instant::now() < deadline {
        if client.is_none() {
            match Client::connect(config.addr, config.timeout) {
                Ok(conn) => {
                    stats.connections_opened += 1;
                    if stats.connections_opened > 1 {
                        stats.reconnects += 1;
                    }
                    client = Some(conn);
                }
                Err(_) => {
                    stats.transport_errors += 1;
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
            }
        }
        let conn = client.as_mut().expect("connected above");

        let targets: Vec<(&str, Option<u64>)> = (0..batch)
            .map(|i| {
                (
                    paths[(cursor + i) % paths.len()].as_str(),
                    sample_trace_id(offset, &mut requests_sent),
                )
            })
            .collect();
        cursor = (cursor + batch) % paths.len();

        let sent = Instant::now();
        if conn.send_pipelined_traced(&targets).is_err() {
            stats.transport_errors += 1;
            client = None;
            continue;
        }
        let mut server_closed = false;
        for answered in 0..batch {
            match conn.recv() {
                Ok(response) => {
                    let micros = u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX);
                    stats.count(response.status, micros);
                    if targets[answered].1.is_some() {
                        if let Some(timing) = response.header("server-timing") {
                            parse_server_timing(timing, &mut stats.stage_us);
                        }
                    }
                    if response
                        .header("connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                    {
                        // Clean close: any later requests in this
                        // batch were legitimately discarded.
                        server_closed = true;
                        break;
                    }
                }
                Err(err) => {
                    // EOF before the batch's first response is a
                    // server-side close that raced our send (e.g.
                    // idle timeout) — retry on a fresh connection
                    // rather than miscounting it as a failure.
                    if !(answered == 0 && err.kind() == io::ErrorKind::UnexpectedEof) {
                        stats.transport_errors += 1;
                    }
                    server_closed = true;
                    break;
                }
            }
        }
        if server_closed {
            client = None;
        }
    }
    stats
}

/// Interpolated percentile over a sorted sample: rank
/// `fraction * (n - 1)` with linear interpolation between adjacent
/// order statistics (the "exclusive..inclusive" blend NumPy calls
/// `linear`), rounded to whole microseconds.
fn percentile(sorted_us: &[u64], fraction: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = fraction.clamp(0.0, 1.0) * (sorted_us.len() - 1) as f64;
    let lower = rank.floor() as usize;
    let upper = rank.ceil() as usize;
    let weight = rank - lower as f64;
    let blended =
        sorted_us[lower] as f64 + (sorted_us[upper] as f64 - sorted_us[lower] as f64) * weight;
    blended.round() as u64
}

/// Runs the closed loop and aggregates the report.
///
/// # Errors
///
/// Thread-spawn failures only; per-request transport errors are
/// counted in the report instead.
pub fn run(config: &LoadgenConfig) -> io::Result<LoadReport> {
    let started = Instant::now();
    let deadline = started + config.duration;
    let mut handles = Vec::new();
    for index in 0..config.connections.max(1) {
        let config = config.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("loadgen-{index}"))
                .spawn(move || {
                    if config.keep_alive {
                        drive_keepalive(&config, index, deadline)
                    } else {
                        drive_closing(&config, index, deadline)
                    }
                })?,
        );
    }
    let mut latencies = Vec::new();
    let mut totals = ThreadStats::default();
    for handle in handles {
        if let Ok(stats) = handle.join() {
            latencies.extend(stats.latencies_us);
            for (merged, thread) in totals.stage_us.iter_mut().zip(stats.stage_us) {
                merged.extend(thread);
            }
            totals.status_2xx += stats.status_2xx;
            totals.status_4xx += stats.status_4xx;
            totals.status_5xx += stats.status_5xx;
            totals.transport_errors += stats.transport_errors;
            totals.connections_opened += stats.connections_opened;
            totals.reconnects += stats.reconnects;
        }
    }
    latencies.sort_unstable();
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let requests = latencies.len() as u64;
    let server_stages = TIMING_STAGES
        .iter()
        .zip(totals.stage_us.iter_mut())
        .filter(|(_, samples)| !samples.is_empty())
        .map(|(stage, samples)| {
            samples.sort_unstable();
            let sum: u64 = samples.iter().sum();
            StageSummary {
                stage,
                count: samples.len() as u64,
                mean_us: sum as f64 / samples.len() as f64,
                p99_us: percentile(samples, 0.99),
            }
        })
        .collect();
    Ok(LoadReport {
        requests,
        status_2xx: totals.status_2xx,
        status_4xx: totals.status_4xx,
        status_5xx: totals.status_5xx,
        transport_errors: totals.transport_errors,
        elapsed_secs: elapsed,
        throughput_rps: requests as f64 / elapsed,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
        max_us: latencies.last().copied().unwrap_or(0),
        connections_opened: totals.connections_opened,
        reconnects: totals.reconnects,
        server_stages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_respects_weights() {
        let mix = vec![("/a".to_string(), 3), ("/b".to_string(), 1)];
        let paths = schedule(&mix);
        assert_eq!(paths.len(), 4);
        assert_eq!(paths.iter().filter(|p| *p == "/a").count(), 3);
        assert_eq!(schedule(&[]), vec!["/healthz".to_string()]);
    }

    #[test]
    fn percentiles_interpolate_between_order_statistics() {
        // 0..=100: rank = f * 100 lands exactly on the value f * 100.
        let sorted: Vec<u64> = (0..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.95), 95);
        assert_eq!(percentile(&sorted, 0.99), 99);
        // Between order statistics: p50 of [10, 20, 30, 40] is
        // rank 1.5 → halfway between 20 and 30.
        assert_eq!(percentile(&[10, 20, 30, 40], 0.50), 25);
        // p90 of [0, 100] is rank 0.9 → 90 (nearest-rank would say 100).
        assert_eq!(percentile(&[0, 100], 0.90), 90);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn percentiles_on_a_known_distribution() {
        // 1000 samples uniform over 1..=1000 µs, pre-sorted: the
        // interpolated percentile of a uniform grid must land on the
        // grid itself (p = f·(n-1)+1 exactly).
        let sorted: Vec<u64> = (1..=1000).collect();
        assert_eq!(percentile(&sorted, 0.0), 1);
        assert_eq!(percentile(&sorted, 1.0), 1000);
        assert_eq!(percentile(&sorted, 0.50), 501, "median of 1..=1000");
        assert_eq!(percentile(&sorted, 0.95), 950);
        assert_eq!(percentile(&sorted, 0.99), 990);
        // Interpolation is monotone in the fraction.
        let mut last = 0;
        for f in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let p = percentile(&sorted, f);
            assert!(p >= last, "percentile must be monotone, {p} < {last}");
            last = p;
        }
    }

    #[test]
    fn report_serializes_to_json() {
        let report = LoadReport {
            requests: 10,
            status_2xx: 9,
            status_4xx: 1,
            status_5xx: 0,
            transport_errors: 0,
            elapsed_secs: 2.0,
            throughput_rps: 5.0,
            p50_us: 100,
            p95_us: 200,
            p99_us: 300,
            max_us: 350,
            connections_opened: 4,
            reconnects: 0,
            server_stages: vec![StageSummary {
                stage: "handler",
                count: 10,
                mean_us: 42.5,
                p99_us: 80,
            }],
        };
        let doc = leakage_telemetry::json::parse(&report.to_json()).unwrap();
        assert_eq!(doc.get("requests").and_then(|v| v.as_f64()), Some(10.0));
        assert_eq!(doc.get("throughput_rps").and_then(|v| v.as_f64()), Some(5.0));
        assert_eq!(doc.get("p99_us").and_then(|v| v.as_f64()), Some(300.0));
        assert_eq!(doc.get("max_us").and_then(|v| v.as_f64()), Some(350.0));
        assert_eq!(
            doc.get("connections_opened").and_then(|v| v.as_f64()),
            Some(4.0)
        );
        let handler = doc
            .get("server_stages")
            .and_then(|v| v.get("handler"))
            .expect("handler stage");
        assert_eq!(handler.get("count").and_then(|v| v.as_f64()), Some(10.0));
        assert_eq!(handler.get("p99_us").and_then(|v| v.as_f64()), Some(80.0));
    }

    #[test]
    fn server_timing_header_parses_to_stage_micros() {
        let mut stage_us: [Vec<u64>; 7] = Default::default();
        parse_server_timing(
            "parse;dur=0.012, queue;dur=1.500, permit;dur=0.000, handler;dur=2.345, \
             store;dur=2.000, serialize;dur=0.050, write;dur=0.125",
            &mut stage_us,
        );
        assert_eq!(stage_us[0], vec![12], "parse 0.012ms -> 12us");
        assert_eq!(stage_us[1], vec![1500]);
        assert_eq!(stage_us[2], vec![0]);
        assert_eq!(stage_us[3], vec![2345]);
        assert_eq!(stage_us[6], vec![125]);
        // Unknown stages and malformed entries are skipped, known ones
        // still accumulate.
        parse_server_timing("db;dur=9.9, queue;dur=bogus, write;dur=0.001", &mut stage_us);
        assert_eq!(stage_us[1], vec![1500], "bogus duration ignored");
        assert_eq!(stage_us[6], vec![125, 1]);
    }
}
