//! A counting semaphore for per-endpoint concurrency limits.
//!
//! Simulation-backed routes (`/v1/profile`, `/v1/table`,
//! `/v1/figure`) and the sweep route each hold a permit while their
//! handler runs; a request that cannot get one within its wait budget
//! is shed with 503 + `Retry-After` instead of piling onto the
//! profile store.

use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A counting semaphore (no poisoning: a panicking holder's permit is
/// returned by the RAII guard's unwind).
pub struct Semaphore {
    permits: Mutex<usize>,
    freed: Condvar,
}

impl Semaphore {
    /// A semaphore with `permits` concurrent holders.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            permits: Mutex::new(permits),
            freed: Condvar::new(),
        }
    }

    /// Acquires a permit, waiting at most `wait`. `None` on timeout.
    pub fn acquire(&self, wait: Duration) -> Option<Permit<'_>> {
        let deadline = Instant::now() + wait;
        let mut permits = self.permits.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if *permits > 0 {
                *permits -= 1;
                return Some(Permit { semaphore: self });
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, timeout) = self
                .freed
                .wait_timeout(permits, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            permits = guard;
            if timeout.timed_out() && *permits == 0 {
                return None;
            }
        }
    }
}

/// RAII permit; releasing (including during unwind) wakes one waiter.
pub struct Permit<'a> {
    semaphore: &'a Semaphore,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut permits = self
            .semaphore
            .permits
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *permits += 1;
        self.semaphore.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustion_times_out_and_release_unblocks() {
        let sem = Semaphore::new(1);
        let held = sem.acquire(Duration::from_millis(10)).unwrap();
        assert!(sem.acquire(Duration::from_millis(20)).is_none());
        drop(held);
        assert!(sem.acquire(Duration::from_millis(10)).is_some());
    }

    #[test]
    fn permits_return_on_panic() {
        let sem = Semaphore::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _permit = sem.acquire(Duration::from_millis(10)).unwrap();
            panic!("handler died");
        }));
        assert!(result.is_err());
        assert!(
            sem.acquire(Duration::from_millis(10)).is_some(),
            "unwound permit must be released"
        );
    }
}
