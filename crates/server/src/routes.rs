//! Request routing and handlers.
//!
//! Every handler runs inside [`handle`]'s `catch_unwind`, behind its
//! route's fault-injection site `server/handler/<route>`, so an armed
//! panic (or a genuine handler bug) becomes a 500 for that one
//! request and never takes down a pool worker.
//!
//! [`handle`] returns a [`WireResponse`] — the pre-serialized form —
//! and resolves it through three tiers, cheapest first:
//!
//! 1. the **artifact catalog** (immutable pre-serialized bodies for
//!    the finite default-scale artifact space, `/healthz`, and
//!    `/v1/version`),
//! 2. the **sharded LRU response cache** (everything else under
//!    `GET /v1/*`),
//! 3. the real handler, whose successful output is then published
//!    into whichever tier it is eligible for.
//!
//! Hot-path telemetry goes through [`HotMetrics`]: striped counters
//! and histograms resolved **once** at server start, so per-request
//! accounting is a relaxed `fetch_add` on a thread-local stripe —
//! never a registry lock.

use crate::artifacts::ArtifactCatalog;
use crate::http::{Request, Response, WireResponse};
use crate::limit::Semaphore;
use crate::respcache::ResponseCache;
use crate::storefront::StoreFront;
use crate::trace::{us32, StageTrace};
use leakage_experiments::query::{self, QueryError, SweepPoint};
use leakage_experiments::{CacheProfile, ProfileStore, Table};
use leakage_faults::StoreError;
use leakage_jobs::{CancelOutcome, JobFabric, JobSpec, ResultError, SubmitError};
use leakage_telemetry::json::{self, Json};
use leakage_telemetry::prometheus_text;
use leakage_telemetry::{registry, Gauge, Histogram, StripedCounter};
use leakage_telemetry::{
    FlightRecorder, RequestRecord, FLAG_CACHE_HIT, FLAG_CATALOG_HIT, FLAG_PANIC, FLAG_SHED,
};
use leakage_workloads::{Scale, SUITE_NAMES};
use rayon::prelude::*;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Largest accepted `Scale::Custom` cycle count — a served query must
/// not be able to commission an unbounded simulation.
pub const MAX_CUSTOM_CYCLES: u64 = 50_000_000;

/// Largest accepted `/v1/sweep` batch.
pub const MAX_SWEEP_POINTS: usize = 512;

/// Latency histogram bounds in microseconds (100µs .. 10s).
pub const LATENCY_BOUNDS_US: [u64; 9] = [
    100, 1_000, 5_000, 20_000, 100_000, 500_000, 1_000_000, 5_000_000, 10_000_000,
];

/// Every route label [`route_name`] can produce. The index of a label
/// is its [`route_code`] — the u8 stored in flight-recorder records.
pub const ROUTES: [&str; 11] = [
    "healthz", "metrics", "version", "profile", "table", "figure", "sweep", "trace", "jobs",
    "debug", "not_found",
];

/// The recorder's compact route code for a label (index in
/// [`ROUTES`]; unknown labels map to `not_found`).
pub fn route_code(route: &str) -> u8 {
    ROUTES
        .iter()
        .position(|r| *r == route)
        .unwrap_or(ROUTES.len() - 1) as u8
}

/// The label for a recorder route code.
pub fn route_label(code: u8) -> &'static str {
    ROUTES.get(usize::from(code)).copied().unwrap_or("unknown")
}

/// Hot-path metric handles, resolved once at server start. Striped
/// counters scale across worker threads; pre-resolution means the
/// per-request cost is one `HashMap` probe on a `&'static str` key
/// (requests, latency) or a direct field read — no registry mutex.
pub struct HotMetrics {
    requests: HashMap<&'static str, Arc<StripedCounter>>,
    latency: HashMap<&'static str, Arc<Histogram>>,
    cache_hits: Arc<StripedCounter>,
    cache_misses: Arc<StripedCounter>,
    catalog_hits: Arc<StripedCounter>,
    /// 2xx responses written.
    pub responses_2xx: Arc<StripedCounter>,
    /// 4xx responses written.
    pub responses_4xx: Arc<StripedCounter>,
    /// 5xx responses written.
    pub responses_5xx: Arc<StripedCounter>,
    /// Requests answered (any status), across all connections.
    pub requests_total: Arc<StripedCounter>,
    /// Read/write failures on client connections.
    pub transport_errors: Arc<StripedCounter>,
    /// Connections currently between parse and response write.
    pub inflight: Arc<Gauge>,
}

impl HotMetrics {
    /// Resolves every handle from the global registry. Metric names
    /// are identical to the pre-sharding implementation (striped
    /// counters merge into the plain counter list in snapshots), so
    /// `/metrics` output and dashboards are unchanged.
    pub fn resolve() -> Self {
        let reg = registry();
        let mut requests = HashMap::new();
        let mut latency = HashMap::new();
        for route in ROUTES {
            requests.insert(
                route,
                reg.striped_counter(&format!("server_requests_{route}_total")),
            );
            // Label form: every route renders under one
            // `server_latency_us` Prometheus family.
            latency.insert(
                route,
                reg.histogram(
                    &format!("server_latency_us{{route=\"{route}\"}}"),
                    &LATENCY_BOUNDS_US,
                ),
            );
        }
        HotMetrics {
            requests,
            latency,
            cache_hits: reg.striped_counter("server_response_cache_hits_total"),
            cache_misses: reg.striped_counter("server_response_cache_misses_total"),
            catalog_hits: reg.striped_counter("server_catalog_hits_total"),
            responses_2xx: reg.striped_counter("server_responses_2xx_total"),
            responses_4xx: reg.striped_counter("server_responses_4xx_total"),
            responses_5xx: reg.striped_counter("server_responses_5xx_total"),
            requests_total: reg.striped_counter("server_requests_total"),
            transport_errors: reg.striped_counter("server_transport_errors_total"),
            inflight: reg.gauge("server_inflight_requests"),
        }
    }

    /// Bumps the per-route request counter.
    pub fn count_route(&self, route: &str) {
        if let Some(counter) = self.requests.get(route) {
            counter.inc();
        }
    }

    /// Records one served request's latency on its route's histogram.
    pub fn record_latency(&self, route: &str, micros: u64) {
        if let Some(histogram) = self.latency.get(route) {
            histogram.record(micros);
        }
    }

    /// Bumps the status-class counter for one written response.
    pub fn count_status(&self, status: u16) {
        match status {
            400..=499 => self.responses_4xx.inc(),
            500..=599 => self.responses_5xx.inc(),
            _ => self.responses_2xx.inc(),
        }
    }
}

/// Everything a handler needs, shared across pool workers.
pub struct RouteContext {
    /// The memoized profile store backing every simulation query.
    pub store: &'static ProfileStore,
    /// Lock-striped read front over the store (profile + sweep hot
    /// path).
    pub front: Arc<StoreFront>,
    /// Sharded LRU response cache.
    pub cache: Arc<ResponseCache>,
    /// Pre-serialized artifact catalog.
    pub catalog: Arc<ArtifactCatalog>,
    /// Concurrency limit for simulation-backed GETs.
    pub sim_limit: Arc<Semaphore>,
    /// Concurrency limit for sweep batches.
    pub sweep_limit: Arc<Semaphore>,
    /// Scale used when the query string does not name one.
    pub default_scale: Scale,
    /// How long a request waits for a concurrency permit before being
    /// shed.
    pub limit_wait: Duration,
    /// `Retry-After` seconds on shed responses.
    pub retry_after_secs: u64,
    /// Pre-resolved hot-path metric handles.
    pub metrics: HotMetrics,
    /// The durable sweep-job fabric behind `/v1/jobs`.
    pub jobs: Arc<JobFabric>,
    /// Minimum connected remote job workers before `/healthz` flips
    /// `degraded: true` (0 disables the check).
    pub job_worker_quorum: usize,
    /// Flight recorder behind `/debug/*`; `None` when disabled
    /// (`--no-recorder`).
    pub recorder: Option<Arc<FlightRecorder>>,
    /// Static + live server facts surfaced by `/healthz`.
    pub info: ServerInfo,
}

/// Server-level facts for `/healthz`: fixed at startup (transport,
/// worker count) or read live through an injected probe (queue
/// depth — the transports own their queues, so they install the probe
/// after construction).
pub struct ServerInfo {
    started: Instant,
    transport: &'static str,
    workers: usize,
    queue_len: OnceLock<Box<dyn Fn() -> usize + Send + Sync>>,
}

impl ServerInfo {
    /// Facts known at construction; the queue probe arrives later via
    /// [`ServerInfo::set_queue_len`].
    pub fn new(transport: &'static str, workers: usize) -> Self {
        ServerInfo {
            started: Instant::now(),
            transport,
            workers,
            queue_len: OnceLock::new(),
        }
    }

    /// Installs the live queue-depth probe (first caller wins).
    pub fn set_queue_len(&self, probe: Box<dyn Fn() -> usize + Send + Sync>) {
        let _ = self.queue_len.set(probe);
    }

    /// Current admission-queue depth; 0 before the probe is installed.
    pub fn queue_len(&self) -> usize {
        self.queue_len.get().map_or(0, |probe| probe())
    }

    /// Whole seconds since server start.
    pub fn uptime_s(&self) -> u64 {
        self.started.elapsed().as_secs()
    }
}

/// The route label used for fault sites and per-route metrics.
pub fn route_name(request: &Request) -> &'static str {
    let path = request.path.as_str();
    match () {
        _ if path == "/healthz" => "healthz",
        _ if path == "/metrics" => "metrics",
        _ if path == "/v1/version" => "version",
        _ if path.starts_with("/v1/profile/") => "profile",
        _ if path.starts_with("/v1/table/") => "table",
        _ if path.starts_with("/v1/figure/") => "figure",
        _ if path == "/v1/sweep" => "sweep",
        _ if path == "/v1/trace/intervals" => "trace",
        _ if path == "/v1/jobs" || path.starts_with("/v1/jobs/") => "jobs",
        _ if path.starts_with("/debug/") => "debug",
        _ => "not_found",
    }
}

/// Whether this request resolves inside the catalog's finite
/// pre-serialized space: constant bodies, or a default-scale artifact
/// in a known format.
fn catalog_eligible(request: &Request, ctx: &RouteContext) -> bool {
    if !ctx.catalog.enabled() || request.method != "GET" {
        return false;
    }
    match request.path.as_str() {
        // `/healthz` left the catalog when it became a live snapshot
        // (uptime, queue depth); `/v1/version` is still constant.
        "/v1/version" => request.query.is_empty(),
        "/v1/table/1" | "/v1/table/2" | "/v1/table/3" | "/v1/figure/7" | "/v1/figure/8"
        | "/v1/figure/9" => request.query.iter().all(|(k, v)| match k.as_str() {
            // Compare by cycles: `scale=test` and `scale=200000` are
            // the same artifact.
            "scale" => {
                Scale::parse_arg(v).map(Scale::cycles)
                    == Some(ctx.catalog.default_scale().cycles())
            }
            "format" => v == "json" || v == "csv",
            _ => false,
        }),
        _ => false,
    }
}

/// Routes one request to its handler with catalog/cache lookup and
/// panic isolation. Always returns a response — a panicking handler
/// yields a 500. `stage` accumulates latency attribution (permit
/// wait, store time, hit/panic flags) for the flight recorder; pass
/// `&StageTrace::default()` when the breakdown is not needed.
pub fn handle(request: &Request, ctx: &RouteContext, stage: &StageTrace) -> WireResponse {
    let route = route_name(request);
    ctx.metrics.count_route(route);

    let key = request.canonical_key();
    let in_catalog_space = catalog_eligible(request, ctx);
    if in_catalog_space {
        if let Some(hit) = ctx.catalog.get(&key) {
            ctx.metrics.catalog_hits.inc();
            stage.catalog_hit.set(true);
            return hit;
        }
    } else if ResponseCache::cacheable(request, 200) {
        if let Some(hit) = ctx.cache.get(&key) {
            ctx.metrics.cache_hits.inc();
            stage.cache_hit.set(true);
            return hit;
        }
        ctx.metrics.cache_misses.inc();
    }

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        leakage_faults::panic_point(&format!("server/handler/{route}"));
        dispatch(request, ctx, route, stage)
    }));
    let response = match outcome {
        Ok(response) => response,
        Err(_) => {
            registry().counter("server_handler_panics_total").inc();
            stage.panicked.set(true);
            Response::error(500, "handler panicked; see server logs")
        }
    };
    let status = response.status;
    let wire = response.into_wire();
    if in_catalog_space && status == 200 {
        ctx.catalog.insert(&key, wire.clone());
    } else if ResponseCache::cacheable(request, status) {
        ctx.cache.put(&key, wire.clone());
    }
    wire
}

/// Fills the catalog by pushing every artifact in its finite space
/// through the normal [`handle`] path — the bytes in the catalog are
/// by construction the handler's (and hence the batch pipeline's)
/// bytes. Called from a background thread at server start; safe to
/// race with live traffic (first insert wins, all inserts identical).
pub fn warm_catalog(ctx: &RouteContext) {
    if !ctx.catalog.enabled() {
        return;
    }
    let mut targets = vec![Request::get("/v1/version")];
    let scale_arg = match ctx.catalog.default_scale() {
        Scale::Test => "test".to_string(),
        Scale::Small => "small".to_string(),
        Scale::Paper => "paper".to_string(),
        Scale::Custom(cycles) => cycles.to_string(),
    };
    let paths: Vec<String> = query::TABLE_IDS
        .iter()
        .map(|id| format!("/v1/table/{id}"))
        .chain(query::FIGURE_IDS.iter().map(|id| format!("/v1/figure/{id}")))
        .collect();
    for path in &paths {
        for query in [
            vec![],
            vec![("format".to_string(), "csv".to_string())],
            vec![("scale".to_string(), scale_arg.clone())],
        ] {
            let mut request = Request::get(path);
            request.query = query;
            targets.push(request);
        }
    }
    for request in targets {
        let _ = handle(&request, ctx, &StageTrace::default());
    }
}

/// Serves health/debug GETs inline when the admission queue is full:
/// these routes never take a simulation permit or run a simulation,
/// so answering them on the transport thread is cheap and keeps the
/// observability plane reachable exactly when it matters most (during
/// overload). Returns `None` for every sheddable route.
pub fn exempt_response(request: &Request, ctx: &RouteContext) -> Option<WireResponse> {
    if request.method != "GET" {
        return None;
    }
    let path = request.path.as_str();
    if path != "/healthz" && !path.starts_with("/debug/") {
        return None;
    }
    let wire = handle(request, ctx, &StageTrace::default());
    ctx.metrics.requests_total.inc();
    ctx.metrics.count_status(wire.status());
    Some(wire)
}

/// Runs `f`, accumulating its wall time into the stage's store bucket.
fn timed_store<T>(stage: &StageTrace, f: impl FnOnce() -> T) -> T {
    let started = Instant::now();
    let result = f();
    stage
        .store_us
        .set(stage.store_us.get().saturating_add(us32(started.elapsed())));
    result
}

fn dispatch(request: &Request, ctx: &RouteContext, route: &str, stage: &StageTrace) -> Response {
    match (request.method.as_str(), route) {
        ("GET", "healthz") => healthz(ctx),
        ("GET", "metrics") => Response::text(200, prometheus_text()),
        ("GET", "version") => version(),
        ("GET", "debug") => debug_route(request, ctx),
        ("GET", "profile" | "table" | "figure") => {
            // Validate the scale before burning a permit on a
            // malformed query.
            let scale = match parse_scale(request, ctx.default_scale) {
                Ok(scale) => scale,
                Err(response) => return response,
            };
            let permit_started = Instant::now();
            let permit = ctx.sim_limit.acquire(ctx.limit_wait);
            stage.permit_us.set(us32(permit_started.elapsed()));
            let Some(_permit) = permit else {
                return shed(ctx, stage, "simulation concurrency limit reached");
            };
            match route {
                "profile" => profile(request, ctx, scale, stage),
                "table" => table(request, ctx, scale, stage),
                _ => figure(request, ctx, scale, stage),
            }
        }
        ("POST", "sweep") => {
            let permit_started = Instant::now();
            let permit = ctx.sweep_limit.acquire(ctx.limit_wait);
            stage.permit_us.set(us32(permit_started.elapsed()));
            let Some(_permit) = permit else {
                return shed(ctx, stage, "sweep concurrency limit reached");
            };
            sweep(request, ctx, stage)
        }
        ("POST", "trace") => {
            // Buffered (Content-Length) uploads land here; chunked
            // uploads never reach dispatch — the worker streams them
            // through `crate::streaming::serve_upload`. A sweep permit
            // bounds concurrent extractions the same way it bounds
            // sweep batches.
            let permit_started = Instant::now();
            let permit = ctx.sweep_limit.acquire(ctx.limit_wait);
            stage.permit_us.set(us32(permit_started.elapsed()));
            let Some(_permit) = permit else {
                return shed(ctx, stage, "trace extraction concurrency limit reached");
            };
            timed_store(stage, || crate::streaming::intervals_from_bytes(request))
        }
        (_, "jobs") => jobs_route(request, ctx),
        (_, "not_found") => Response::error(404, &format!("no such route: {}", request.path)),
        _ => Response::error(405, &format!("{} not allowed here", request.method)),
    }
}

/// 503 + `Retry-After` — the shared shed/backpressure response.
fn shed(ctx: &RouteContext, stage: &StageTrace, reason: &str) -> Response {
    registry().counter("server_shed_total").inc();
    stage.shed.set(true);
    Response::error(503, reason).with_header("Retry-After", ctx.retry_after_secs.to_string())
}

fn healthz(ctx: &RouteContext) -> Response {
    let (recorder_cap, recorded_total) = match ctx.recorder.as_deref() {
        Some(recorder) => (recorder.capacity() as u64, recorder.recorded_total()),
        None => (0, 0),
    };
    // Degraded, not down: the server still serves and jobs still queue
    // when the remote worker pool is below quorum, so this stays 200 —
    // it is a signal for operators and load balancers that throughput
    // is compromised, not an invitation to kill the coordinator.
    let connected = ctx.jobs.remote_connected();
    let degraded = match connected {
        Some(connected) if ctx.job_worker_quorum > 0 => connected < ctx.job_worker_quorum,
        _ => false,
    };
    leakage_telemetry::gauge!("jobs_remote_workers_connected")
        .set(connected.unwrap_or(0) as u64);
    Response::json(
        200,
        json::object([
            json::key("status") + &json::string("ok"),
            json::key("degraded") + bool_str(degraded),
            json::key("job_workers_connected") + &num_u64(connected.unwrap_or(0) as u64),
            json::key("job_worker_quorum") + &num_u64(ctx.job_worker_quorum as u64),
            json::key("uptime_s") + &num_u64(ctx.info.uptime_s()),
            json::key("transport") + &json::string(ctx.info.transport),
            json::key("workers") + &num_u64(ctx.info.workers as u64),
            json::key("queue_depth") + &num_u64(ctx.info.queue_len() as u64),
            json::key("inflight") + &num_u64(ctx.metrics.inflight.get()),
            json::key("recorder_capacity") + &num_u64(recorder_cap),
            json::key("recorder_recorded") + &num_u64(recorded_total),
            json::key("suite") + &json::array(SUITE_NAMES.iter().map(|n| json::string(n))),
            json::key("isa_suite")
                + &json::array(
                    leakage_workloads::ISA_SUITE_NAMES.iter().map(|n| json::string(n)),
                ),
        ]),
    )
}

/// One recorder record as a JSON object. `trace_id` is a decimal
/// string (u64 ids do not survive an f64 round-trip).
fn record_json(rec: &RequestRecord) -> String {
    json::object([
        json::key("trace_id") + &json::string(&rec.trace_id.to_string()),
        json::key("route") + &json::string(route_label(rec.route)),
        json::key("status") + &num_u64(u64::from(rec.status)),
        json::key("end_us") + &num_u64(rec.end_us),
        json::key("total_us") + &num_u64(u64::from(rec.total_us)),
        json::key("parse_us") + &num_u64(u64::from(rec.parse_us)),
        json::key("queue_us") + &num_u64(u64::from(rec.queue_us)),
        json::key("permit_us") + &num_u64(u64::from(rec.permit_us)),
        json::key("handler_us") + &num_u64(u64::from(rec.handler_us)),
        json::key("store_us") + &num_u64(u64::from(rec.store_us)),
        json::key("serialize_us") + &num_u64(u64::from(rec.serialize_us)),
        json::key("write_us") + &num_u64(u64::from(rec.write_us)),
        json::key("req_bytes") + &num_u64(u64::from(rec.req_bytes)),
        json::key("resp_bytes") + &num_u64(u64::from(rec.resp_bytes)),
        json::key("shed") + bool_str(rec.flags & FLAG_SHED != 0),
        json::key("panicked") + bool_str(rec.flags & FLAG_PANIC != 0),
        json::key("cache_hit") + bool_str(rec.flags & FLAG_CACHE_HIT != 0),
        json::key("catalog_hit") + bool_str(rec.flags & FLAG_CATALOG_HIT != 0),
    ])
}

fn bool_str(b: bool) -> &'static str {
    if b {
        "true"
    } else {
        "false"
    }
}

fn debug_route(request: &Request, ctx: &RouteContext) -> Response {
    let Some(recorder) = ctx.recorder.as_deref() else {
        return Response::error(503, "flight recorder disabled (--no-recorder)");
    };
    match request.path.as_str() {
        "/debug/requests" => debug_requests(request, recorder),
        "/debug/slow" => debug_slow(recorder),
        "/debug/stats" => debug_stats(recorder),
        other => Response::error(
            404,
            &format!("no such debug endpoint: {other} (try /debug/requests, /debug/slow, /debug/stats)"),
        ),
    }
}

/// `GET /debug/requests?n=&route=&min_us=` — newest recorded requests
/// with their per-stage latency attribution.
fn debug_requests(request: &Request, recorder: &FlightRecorder) -> Response {
    let n = request
        .query_param("n")
        .and_then(|raw| raw.parse::<usize>().ok())
        .unwrap_or(64)
        .clamp(1, recorder.capacity());
    let route_filter = request.query_param("route").map(route_code);
    let min_us = request
        .query_param("min_us")
        .and_then(|raw| raw.parse::<u32>().ok())
        .unwrap_or(0);
    let records: Vec<RequestRecord> = recorder
        .recent(recorder.capacity())
        .into_iter()
        .filter(|rec| route_filter.map_or(true, |code| rec.route == code))
        .filter(|rec| rec.total_us >= min_us)
        .take(n)
        .collect();
    Response::json(
        200,
        json::object([
            json::key("count") + &num_u64(records.len() as u64),
            json::key("capacity") + &num_u64(recorder.capacity() as u64),
            json::key("recorded_total") + &num_u64(recorder.recorded_total()),
            json::key("records") + &json::array(records.iter().map(record_json)),
        ]),
    )
}

/// `GET /debug/slow` — the always-retained reservoir: top-K slowest
/// requests ever, plus the most recent errors/sheds/panics. Survives
/// ring wraparound.
fn debug_slow(recorder: &FlightRecorder) -> Response {
    let (slowest, errors) = recorder.slow();
    Response::json(
        200,
        json::object([
            json::key("slowest") + &json::array(slowest.iter().map(record_json)),
            json::key("errors") + &json::array(errors.iter().map(record_json)),
        ]),
    )
}

/// Rolling stats window over the recorder, in microseconds.
const STATS_WINDOW_US: u64 = 10_000_000;

/// `GET /debug/stats` — per-route rate/error/latency over the last
/// 10 s, computed from recorded requests (not cumulative counters, so
/// it reflects *current* behaviour).
fn debug_stats(recorder: &FlightRecorder) -> Response {
    let now_us = recorder.now_us();
    let since = now_us.saturating_sub(STATS_WINDOW_US);
    let window = recorder.window(since);
    let mut by_route: HashMap<u8, Vec<&RequestRecord>> = HashMap::new();
    for rec in &window {
        by_route.entry(rec.route).or_default().push(rec);
    }
    let mut codes: Vec<u8> = by_route.keys().copied().collect();
    codes.sort_unstable();
    let window_s = STATS_WINDOW_US as f64 / 1e6;
    let routes = codes.iter().map(|code| {
        let recs = &by_route[code];
        let mut totals: Vec<u32> = recs.iter().map(|r| r.total_us).collect();
        totals.sort_unstable();
        let count = totals.len();
        let errors = recs.iter().filter(|r| r.is_error()).count();
        let sum: u64 = totals.iter().map(|&t| u64::from(t)).sum();
        let pct = |p: f64| -> u64 {
            let idx = ((count as f64 - 1.0) * p).round() as usize;
            u64::from(totals[idx.min(count - 1)])
        };
        json::object([
            json::key("route") + &json::string(route_label(*code)),
            json::key("count") + &num_u64(count as u64),
            json::key("rps") + &num_f64(count as f64 / window_s),
            json::key("errors") + &num_u64(errors as u64),
            json::key("mean_us") + &num_f64(sum as f64 / count as f64),
            json::key("p50_us") + &num_u64(pct(0.50)),
            json::key("p99_us") + &num_u64(pct(0.99)),
        ])
    });
    Response::json(
        200,
        json::object([
            json::key("window_s") + &num_f64(window_s),
            json::key("count") + &num_u64(window.len() as u64),
            json::key("routes") + &json::array(routes),
        ]),
    )
}

/// `git describe --always --dirty` at first use; `"unknown"` when git
/// or the work tree is unavailable (e.g. a deployed binary).
fn git_describe() -> &'static str {
    static GIT: OnceLock<String> = OnceLock::new();
    GIT.get_or_init(|| {
        std::process::Command::new("git")
            .args(["describe", "--always", "--dirty"])
            .output()
            .ok()
            .filter(|out| out.status.success())
            .and_then(|out| String::from_utf8(out.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string())
    })
}

fn version() -> Response {
    Response::json(
        200,
        json::object([
            json::key("generator_version")
                + &num_u64(u64::from(leakage_workloads::GENERATOR_VERSION)),
            json::key("isa_generator_version")
                + &num_u64(u64::from(leakage_workloads::ISA_GENERATOR_VERSION)),
            json::key("format_version")
                + &num_u64(u64::from(leakage_experiments::codec::FORMAT_VERSION)),
            json::key("git") + &json::string(git_describe()),
        ]),
    )
}

/// Parses `scale=` (preset name or cycle count) with the custom-cycle
/// cap.
fn parse_scale(request: &Request, default_scale: Scale) -> Result<Scale, Response> {
    let Some(arg) = request.query_param("scale") else {
        return Ok(default_scale);
    };
    match Scale::parse_arg(arg) {
        Some(scale) if scale.cycles() <= MAX_CUSTOM_CYCLES => Ok(scale),
        Some(_) => Err(Response::error(
            400,
            &format!("scale above the serving cap of {MAX_CUSTOM_CYCLES} cycles"),
        )),
        None => Err(Response::error(
            400,
            &format!("bad scale {arg:?}: expected test|small|paper or a cycle count"),
        )),
    }
}

fn num_u64(v: u64) -> String {
    v.to_string()
}

fn num_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn side_json(profile: &CacheProfile) -> String {
    json::object([
        json::key("num_frames") + &num_u64(u64::from(profile.num_frames)),
        json::key("total_cycles") + &num_u64(profile.total_cycles),
        json::key("accesses") + &num_u64(profile.cache.accesses),
        json::key("hits") + &num_u64(profile.cache.hits),
        json::key("misses") + &num_u64(profile.cache.misses),
        json::key("hit_rate") + &num_f64(profile.cache.hit_rate()),
        json::key("interval_classes") + &num_u64(profile.dist.num_classes() as u64),
        json::key("total_intervals") + &num_u64(profile.dist.total_intervals()),
        json::key("interval_cycles") + &num_u64(profile.dist.total_cycles()),
        json::key("covers_timeline")
            + if profile.covers_timeline() { "true" } else { "false" },
        json::key("next_line_triggers") + &num_u64(profile.prefetch.next_line_triggers),
        json::key("stride_triggers") + &num_u64(profile.prefetch.stride_triggers),
    ])
}

fn profile(request: &Request, ctx: &RouteContext, scale: Scale, stage: &StageTrace) -> Response {
    let benchmark = request.path.trim_start_matches("/v1/profile/");
    if benchmark.is_empty() || benchmark.contains('/') {
        return Response::error(404, "expected /v1/profile/<benchmark>");
    }
    // The Alpha-like hierarchy is the only servable geometry; the
    // parameter exists so clients state their assumption explicitly.
    match request.query_param("hierarchy") {
        None | Some("alpha") | Some("alpha-like") => {}
        Some(other) => {
            return Response::error(400, &format!("unknown hierarchy {other:?}: only \"alpha\""))
        }
    }
    match timed_store(stage, || ctx.front.fetch(benchmark, scale)) {
        Ok(profile) => Response::json(
            200,
            json::object([
                json::key("benchmark") + &json::string(&profile.name),
                json::key("scale_cycles") + &num_u64(scale.cycles()),
                json::key("hierarchy") + &json::string("alpha"),
                json::key("icache") + &side_json(&profile.icache),
                json::key("dcache") + &side_json(&profile.dcache),
            ]),
        ),
        Err(err) => store_error_response(&err),
    }
}

fn store_error_response(err: &StoreError) -> Response {
    match err {
        StoreError::UnknownBenchmark { .. } => Response::error(404, &err.to_string()),
        _ => Response::error(500, &err.to_string()),
    }
}

fn query_error_response(err: &QueryError) -> Response {
    match err {
        QueryError::UnknownArtifact { .. } => Response::error(404, &err.to_string()),
        QueryError::Store(store) => store_error_response(store),
        QueryError::Degraded { .. } => Response::error(503, &err.to_string()),
    }
}

/// `format=` negotiation: canonical JSON by default, CSV on request.
fn artifact_format(request: &Request) -> Result<&str, Response> {
    match request.query_param("format") {
        None => Ok("json"),
        Some(fmt @ ("json" | "csv")) => Ok(fmt),
        Some(other) => Err(Response::error(
            400,
            &format!("bad format {other:?}: expected json or csv"),
        )),
    }
}

fn parse_artifact_id(request: &Request, prefix: &str) -> Result<u8, Response> {
    request
        .path
        .strip_prefix(prefix)
        .and_then(|raw| raw.parse::<u8>().ok())
        .ok_or_else(|| Response::error(404, &format!("expected {prefix}<number>")))
}

fn table(request: &Request, ctx: &RouteContext, scale: Scale, stage: &StageTrace) -> Response {
    let id = match parse_artifact_id(request, "/v1/table/") {
        Ok(id) => id,
        Err(response) => return response,
    };
    let format = match artifact_format(request) {
        Ok(format) => format,
        Err(response) => return response,
    };
    match timed_store(stage, || query::table(ctx.store, id, scale)) {
        Ok(table) if format == "csv" => Response::csv(table.to_csv()),
        Ok(table) => Response::json(200, table.to_json()),
        Err(err) => query_error_response(&err),
    }
}

fn figure_json(id: u8, scale: Scale, icache: &Table, dcache: &Table) -> String {
    json::object([
        json::key("figure") + &num_u64(u64::from(id)),
        json::key("scale_cycles") + &num_u64(scale.cycles()),
        json::key("icache") + &icache.to_json(),
        json::key("dcache") + &dcache.to_json(),
    ])
}

fn figure(request: &Request, ctx: &RouteContext, scale: Scale, stage: &StageTrace) -> Response {
    let id = match parse_artifact_id(request, "/v1/figure/") {
        Ok(id) => id,
        Err(response) => return response,
    };
    let format = match artifact_format(request) {
        Ok(format) => format,
        Err(response) => return response,
    };
    match timed_store(stage, || query::figure(ctx.store, id, scale)) {
        Ok((icache, dcache)) if format == "csv" => {
            Response::csv(format!("{}\n{}", icache.to_csv(), dcache.to_csv()))
        }
        Ok((icache, dcache)) => Response::json(200, figure_json(id, scale, &icache, &dcache)),
        Err(err) => query_error_response(&err),
    }
}

/// `/v1/jobs` and everything under it: the durable sweep-job fabric.
///
/// - `POST /v1/jobs` — validate a spec, persist it, start the runner.
/// - `GET /v1/jobs` — summary of every registered job.
/// - `GET /v1/jobs/<id>` — full status (progress, worker liveness).
/// - `GET /v1/jobs/<id>/result?page=&per_page=` — paginated rows of a
///   `done` job, stable point-index order.
/// - `DELETE /v1/jobs/<id>` — durable cancel.
///
/// Never cached (see [`ResponseCache::cacheable`]): job state is
/// mutable.
fn jobs_route(request: &Request, ctx: &RouteContext) -> Response {
    let rest = request
        .path
        .strip_prefix("/v1/jobs")
        .unwrap_or("")
        .trim_start_matches('/');
    match (request.method.as_str(), rest) {
        ("POST", "") => jobs_submit(request, ctx),
        ("GET", "") => Response::json(200, ctx.jobs.list_json()),
        ("GET", id) if !id.contains('/') => match ctx.jobs.status_json(id) {
            Some(body) => Response::json(200, body),
            None => Response::error(404, &format!("no such job: {id}")),
        },
        ("GET", tail) => match tail.strip_suffix("/result") {
            Some(id) if !id.is_empty() && !id.contains('/') => jobs_result(request, ctx, id),
            _ => Response::error(404, &format!("no such jobs endpoint: {}", request.path)),
        },
        ("DELETE", id) if !id.is_empty() && !id.contains('/') => match ctx.jobs.cancel(id) {
            CancelOutcome::Canceled => Response::json(
                200,
                json::object([
                    json::key("id") + &json::string(id),
                    json::key("state") + &json::string("canceled"),
                ]),
            ),
            CancelOutcome::AlreadyDone => {
                Response::error(409, &format!("job {id} already completed"))
            }
            CancelOutcome::NotFound => Response::error(404, &format!("no such job: {id}")),
        },
        ("POST" | "DELETE", _) => {
            Response::error(404, &format!("no such jobs endpoint: {}", request.path))
        }
        _ => Response::error(405, &format!("{} not allowed here", request.method)),
    }
}

fn jobs_submit(request: &Request, ctx: &RouteContext) -> Response {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return Response::error(400, "job body is not UTF-8"),
    };
    let spec = match JobSpec::parse(text) {
        Ok(spec) => spec,
        Err(err) => return Response::error(400, &err.to_string()),
    };
    if spec.scale.cycles() > MAX_CUSTOM_CYCLES {
        return Response::error(
            400,
            &format!("scale above the serving cap of {MAX_CUSTOM_CYCLES} cycles"),
        );
    }
    match ctx.jobs.submit(spec) {
        Ok(submitted) => Response::json(
            if submitted.created { 201 } else { 200 },
            json::object([
                json::key("id") + &json::string(&submitted.id),
                json::key("created") + if submitted.created { "true" } else { "false" },
            ]),
        ),
        Err(SubmitError::Invalid(err)) => Response::error(400, &err.to_string()),
        Err(SubmitError::Conflict(msg)) => Response::error(409, &msg),
        Err(SubmitError::Busy) => Response::error(503, "job fabric at capacity")
            .with_header("Retry-After", ctx.retry_after_secs.to_string()),
        Err(SubmitError::Io(err)) => Response::error(500, &format!("persisting job: {err}")),
    }
}

fn jobs_result(request: &Request, ctx: &RouteContext, id: &str) -> Response {
    let int_param = |name: &str, default: u64| -> Result<u64, Response> {
        match request.query_param(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<u64>()
                .map_err(|_| Response::error(400, &format!("bad {name} {raw:?}"))),
        }
    };
    let page = match int_param("page", 0) {
        Ok(page) => page,
        Err(response) => return response,
    };
    let per_page = match int_param("per_page", 1000) {
        Ok(per_page) => per_page,
        Err(response) => return response,
    };
    match ctx.jobs.result_page(id, page, per_page) {
        Ok(body) => Response::json(200, body),
        Err(ResultError::NotFound) => Response::error(404, &format!("no such job: {id}")),
        Err(ResultError::NotReady(state)) => {
            Response::error(409, &format!("job {id} is {state}, not done"))
        }
        Err(ResultError::BadRequest(msg)) => Response::error(400, &msg),
        Err(ResultError::Corrupt(msg)) => Response::error(503, &msg)
            .with_header("Retry-After", ctx.retry_after_secs.to_string()),
    }
}

/// One validated sweep request: a scale plus Fig. 6 model points.
struct SweepRequest {
    scale: Scale,
    points: Vec<SweepPoint>,
}

fn parse_sweep_body(request: &Request, ctx: &RouteContext) -> Result<SweepRequest, Response> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| Response::error(400, "sweep body is not UTF-8"))?;
    let doc = json::parse(text).map_err(|err| Response::error(400, &err.to_string()))?;
    let scale = match doc.get("scale").and_then(Json::as_str) {
        None => ctx.default_scale,
        Some(arg) => match Scale::parse_arg(arg) {
            Some(scale) if scale.cycles() <= MAX_CUSTOM_CYCLES => scale,
            _ => return Err(Response::error(400, &format!("bad sweep scale {arg:?}"))),
        },
    };
    let raw_points = doc
        .get("points")
        .and_then(Json::as_array)
        .ok_or_else(|| Response::error(400, "sweep body needs a \"points\" array"))?;
    if raw_points.is_empty() {
        return Err(Response::error(400, "sweep needs at least one point"));
    }
    if raw_points.len() > MAX_SWEEP_POINTS {
        return Err(Response::error(
            413,
            &format!("sweep capped at {MAX_SWEEP_POINTS} points"),
        ));
    }
    let mut points = Vec::with_capacity(raw_points.len());
    for (index, raw) in raw_points.iter().enumerate() {
        let field = |name: &str| raw.get(name).and_then(Json::as_str);
        let bad = |what: &str| Response::error(400, &format!("point {index}: {what}"));
        let benchmark = field("benchmark").ok_or_else(|| bad("missing \"benchmark\""))?;
        if !leakage_workloads::is_known_benchmark(benchmark) {
            return Err(bad(&format!("unknown benchmark {benchmark:?}")));
        }
        let side = field("side")
            .and_then(query::parse_side)
            .ok_or_else(|| bad("bad \"side\": expected icache|dcache"))?;
        let node = field("node")
            .and_then(query::parse_node)
            .ok_or_else(|| bad("bad \"node\": expected 70nm|100nm|130nm|180nm"))?;
        points.push(SweepPoint {
            benchmark: benchmark.to_string(),
            side,
            node,
        });
    }
    Ok(SweepRequest { scale, points })
}

fn sweep(request: &Request, ctx: &RouteContext, stage: &StageTrace) -> Response {
    let SweepRequest { scale, points } = match parse_sweep_body(request, ctx) {
        Ok(parsed) => parsed,
        Err(response) => return response,
    };
    // All points validated; fan the batch out over the rayon pool.
    // Profiles come through the striped front (so a hot benchmark is
    // an uncontended read), and the store behind it memoizes, so the
    // per-benchmark simulation cost is paid at most once per process.
    // Rows render through `leakage_jobs::render_sweep_row` — the same
    // function the job workers use — so a sharded job's rows are
    // byte-identical to this path by construction.
    let results: Vec<Result<String, QueryError>> = timed_store(stage, || {
        points
            .par_iter()
            .map(|point| {
                let profile = ctx.front.fetch(&point.benchmark, scale)?;
                let savings = query::sweep_point_profile(&profile, point);
                Ok(leakage_jobs::render_sweep_row(
                    &point.benchmark,
                    point.side,
                    point.node,
                    &savings,
                ))
            })
            .collect()
    });
    let mut rows = Vec::with_capacity(results.len());
    for result in results {
        match result {
            Ok(row) => rows.push(row),
            Err(err) => return query_error_response(&err),
        }
    }
    Response::json(
        200,
        json::object([
            json::key("scale_cycles") + &num_u64(scale.cycles()),
            json::key("results") + &json::array(rows),
        ]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_fabric() -> Arc<JobFabric> {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "leakage-routes-jobs-{}-{seq}",
            std::process::id()
        ));
        JobFabric::start(leakage_jobs::FabricConfig {
            jobs_dir: dir,
            workers: 1,
            ..leakage_jobs::FabricConfig::default()
        })
        .expect("start test fabric")
    }

    fn ctx_with_catalog(preserialize: bool) -> RouteContext {
        RouteContext {
            store: ProfileStore::global(),
            front: Arc::new(StoreFront::new(ProfileStore::global(), 8)),
            cache: Arc::new(ResponseCache::new(16, 1)),
            catalog: Arc::new(ArtifactCatalog::new(preserialize, Scale::Test)),
            sim_limit: Arc::new(Semaphore::new(4)),
            sweep_limit: Arc::new(Semaphore::new(2)),
            default_scale: Scale::Test,
            limit_wait: Duration::from_millis(200),
            retry_after_secs: 1,
            metrics: HotMetrics::resolve(),
            jobs: test_fabric(),
            job_worker_quorum: 0,
            recorder: Some(Arc::new(FlightRecorder::new(64))),
            info: ServerInfo::new("test", 0),
        }
    }

    /// `handle` with a throwaway stage trace, for tests that only
    /// care about the response.
    fn handle(request: &Request, ctx: &RouteContext) -> WireResponse {
        super::handle(request, ctx, &StageTrace::default())
    }

    /// Catalog off, so tests exercise the LRU-cache tier.
    fn ctx() -> RouteContext {
        ctx_with_catalog(false)
    }

    fn get(path: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            body: Vec::new(),
            close: false,
            chunked: false,
            trace: crate::trace::ReqTrace::default(),
        }
    }

    fn body_text(wire: &WireResponse) -> String {
        String::from_utf8_lossy(wire.body()).into_owned()
    }

    #[test]
    fn routes_resolve_names() {
        assert_eq!(route_name(&get("/healthz", &[])), "healthz");
        assert_eq!(route_name(&get("/metrics", &[])), "metrics");
        assert_eq!(route_name(&get("/v1/version", &[])), "version");
        assert_eq!(route_name(&get("/v1/profile/gzip", &[])), "profile");
        assert_eq!(route_name(&get("/v1/table/2", &[])), "table");
        assert_eq!(route_name(&get("/v1/figure/8", &[])), "figure");
        assert_eq!(route_name(&get("/v1/sweep", &[])), "sweep");
        assert_eq!(route_name(&get("/v1/jobs", &[])), "jobs");
        assert_eq!(route_name(&get("/v1/jobs/j123/result", &[])), "jobs");
        assert_eq!(route_name(&get("/debug/requests", &[])), "debug");
        assert_eq!(route_name(&get("/nope", &[])), "not_found");
        for route in ROUTES {
            assert_eq!(route_label(route_code(route)), route);
        }
    }

    #[test]
    fn debug_endpoints_serve_recorded_requests() {
        let ctx = ctx();
        // Serve a profile request and record it the way the pool does.
        let stage = StageTrace::default();
        let wire = super::handle(&get("/v1/profile/gzip", &[("scale", "test")]), &ctx, &stage);
        assert_eq!(wire.status(), 200);
        let recorder = ctx.recorder.as_deref().unwrap();
        let mut rec = RequestRecord {
            trace_id: 77,
            end_us: recorder.now_us(),
            route: route_code("profile"),
            status: wire.status(),
            total_us: 1000,
            handler_us: 900,
            ..RequestRecord::default()
        };
        rec.store_us = stage.store_us.get().min(900);
        rec.flags = stage.flags();
        recorder.record(&rec);

        let requests = handle(&get("/debug/requests", &[]), &ctx);
        assert_eq!(requests.status(), 200);
        let doc = json::parse(&body_text(&requests)).unwrap();
        let records = doc.get("records").and_then(Json::as_array).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(
            records[0].get("trace_id").and_then(Json::as_str),
            Some("77")
        );
        assert_eq!(
            records[0].get("route").and_then(Json::as_str),
            Some("profile")
        );
        assert!(records[0].get("store_us").and_then(Json::as_f64).is_some());

        // Filters: wrong route or a min_us above the total excludes it.
        let none = handle(&get("/debug/requests", &[("route", "sweep")]), &ctx);
        let doc = json::parse(&body_text(&none)).unwrap();
        assert_eq!(doc.get("count").and_then(Json::as_f64), Some(0.0));
        let none = handle(&get("/debug/requests", &[("min_us", "5000")]), &ctx);
        let doc = json::parse(&body_text(&none)).unwrap();
        assert_eq!(doc.get("count").and_then(Json::as_f64), Some(0.0));

        // Stats aggregate the same record into the 10s window.
        let stats = handle(&get("/debug/stats", &[]), &ctx);
        let doc = json::parse(&body_text(&stats)).unwrap();
        let routes = doc.get("routes").and_then(Json::as_array).unwrap();
        assert_eq!(routes.len(), 1);
        assert_eq!(
            routes[0].get("route").and_then(Json::as_str),
            Some("profile")
        );
        assert_eq!(routes[0].get("count").and_then(Json::as_f64), Some(1.0));
        assert_eq!(routes[0].get("p99_us").and_then(Json::as_f64), Some(1000.0));

        // Slow reservoir keeps it as a top-K entry.
        let slow = handle(&get("/debug/slow", &[]), &ctx);
        let doc = json::parse(&body_text(&slow)).unwrap();
        let slowest = doc.get("slowest").and_then(Json::as_array).unwrap();
        assert_eq!(slowest.len(), 1);

        assert_eq!(handle(&get("/debug/nope", &[]), &ctx).status(), 404);
    }

    #[test]
    fn debug_routes_require_the_recorder() {
        let mut ctx = ctx();
        ctx.recorder = None;
        assert_eq!(handle(&get("/debug/requests", &[]), &ctx).status(), 503);
        // healthz still answers, reporting a zero-capacity recorder.
        let health = handle(&get("/healthz", &[]), &ctx);
        assert_eq!(health.status(), 200);
        let doc = json::parse(&body_text(&health)).unwrap();
        assert_eq!(doc.get("recorder_capacity").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn exemption_covers_only_the_observability_plane() {
        let ctx = ctx();
        let health = exempt_response(&get("/healthz", &[]), &ctx).expect("healthz exempt");
        assert_eq!(health.status(), 200);
        assert!(exempt_response(&get("/debug/stats", &[]), &ctx).is_some());
        assert!(exempt_response(&get("/v1/version", &[]), &ctx).is_none());
        assert!(exempt_response(&get("/v1/profile/gzip", &[]), &ctx).is_none());
        let mut post = get("/healthz", &[]);
        post.method = "POST".into();
        assert!(exempt_response(&post, &ctx).is_none());
    }

    #[test]
    fn healthz_reports_live_server_facts() {
        let ctx = ctx();
        ctx.info.set_queue_len(Box::new(|| 7));
        let doc = json::parse(&body_text(&handle(&get("/healthz", &[]), &ctx))).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(doc.get("transport").and_then(Json::as_str), Some("test"));
        assert_eq!(doc.get("queue_depth").and_then(Json::as_f64), Some(7.0));
        assert_eq!(doc.get("recorder_capacity").and_then(Json::as_f64), Some(64.0));
        let suite = doc.get("suite").and_then(Json::as_array).unwrap();
        assert_eq!(suite.len(), SUITE_NAMES.len());
        // No remote listener: never degraded, whatever the quorum.
        assert_eq!(doc.get("degraded").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn healthz_degrades_below_worker_quorum() {
        let dir = std::env::temp_dir().join(format!(
            "leakage-routes-quorum-{}",
            std::process::id()
        ));
        let jobs = JobFabric::start(leakage_jobs::FabricConfig {
            jobs_dir: dir,
            workers: 0,
            listen: Some("127.0.0.1:0".to_string()),
            ..leakage_jobs::FabricConfig::default()
        })
        .expect("start listening fabric");
        let mut ctx = ctx();
        ctx.jobs = jobs;
        ctx.job_worker_quorum = 2;
        // Listener up, zero connected workers, quorum 2: degraded —
        // but still HTTP 200; the coordinator itself is healthy.
        let health = handle(&get("/healthz", &[]), &ctx);
        assert_eq!(health.status(), 200);
        let doc = json::parse(&body_text(&health)).unwrap();
        assert_eq!(doc.get("degraded").and_then(Json::as_bool), Some(true));
        assert_eq!(
            doc.get("job_workers_connected").and_then(Json::as_f64),
            Some(0.0)
        );
        assert_eq!(doc.get("job_worker_quorum").and_then(Json::as_f64), Some(2.0));
        // Quorum 0 disables the check even with a listener.
        ctx.job_worker_quorum = 0;
        let doc = json::parse(&body_text(&handle(&get("/healthz", &[]), &ctx))).unwrap();
        assert_eq!(doc.get("degraded").and_then(Json::as_bool), Some(false));
        ctx.jobs.stop();
    }

    #[test]
    fn healthz_and_errors() {
        let ctx = ctx();
        let ok = handle(&get("/healthz", &[]), &ctx);
        assert_eq!(ok.status(), 200);
        assert!(body_text(&ok).contains("\"ok\""));
        assert_eq!(handle(&get("/nope", &[]), &ctx).status(), 404);
        let mut post = get("/healthz", &[]);
        post.method = "POST".into();
        assert_eq!(handle(&post, &ctx).status(), 405);
    }

    #[test]
    fn version_route_serves_canonical_json() {
        let ctx = ctx();
        let ok = handle(&get("/v1/version", &[]), &ctx);
        assert_eq!(ok.status(), 200);
        let doc = json::parse(&body_text(&ok)).unwrap();
        assert_eq!(
            doc.get("generator_version").and_then(Json::as_f64),
            Some(f64::from(leakage_workloads::GENERATOR_VERSION))
        );
        assert_eq!(
            doc.get("format_version").and_then(Json::as_f64),
            Some(f64::from(leakage_experiments::codec::FORMAT_VERSION))
        );
        let git = doc.get("git").and_then(Json::as_str).expect("git field");
        assert!(!git.is_empty());
    }

    #[test]
    fn table_served_json_matches_batch_generator() {
        let ctx = ctx();
        let response = handle(&get("/v1/table/2", &[("scale", "test")]), &ctx);
        assert_eq!(response.status(), 200);
        let served = Table::from_json(&body_text(&response)).unwrap();
        let batch = query::table(ctx.store, 2, Scale::Test).unwrap();
        assert_eq!(served, batch);
    }

    #[test]
    fn table_csv_and_bad_queries() {
        let ctx = ctx();
        let csv = handle(&get("/v1/table/1", &[("format", "csv")]), &ctx);
        assert_eq!(csv.status(), 200);
        assert!(String::from_utf8_lossy(&csv.to_bytes(false)).contains("Content-Type: text/csv"));
        assert_eq!(handle(&get("/v1/table/9", &[]), &ctx).status(), 404);
        assert_eq!(
            handle(&get("/v1/table/1", &[("format", "xml")]), &ctx).status(),
            400
        );
        assert_eq!(
            handle(&get("/v1/table/1", &[("scale", "huge")]), &ctx).status(),
            400
        );
        assert_eq!(
            handle(&get("/v1/table/1", &[("scale", "99999999999")]), &ctx).status(),
            400,
            "custom scales above the cap are rejected"
        );
    }

    #[test]
    fn profile_route_serves_summary() {
        let ctx = ctx();
        let ok = handle(&get("/v1/profile/gzip", &[("scale", "test")]), &ctx);
        assert_eq!(ok.status(), 200);
        let doc = json::parse(&body_text(&ok)).unwrap();
        assert_eq!(doc.get("benchmark").and_then(Json::as_str), Some("gzip"));
        assert_eq!(
            doc.get("scale_cycles").and_then(Json::as_f64),
            Some(200_000.0)
        );
        assert_eq!(
            doc.get("icache")
                .and_then(|side| side.get("covers_timeline")),
            Some(&Json::Bool(true))
        );
        assert!(!ctx.front.is_empty(), "profile went through the store front");
        assert_eq!(handle(&get("/v1/profile/perlbmk", &[]), &ctx).status(), 404);
        assert_eq!(
            handle(&get("/v1/profile/gzip", &[("hierarchy", "mips")]), &ctx).status(),
            400
        );
    }

    #[test]
    fn sweep_validates_then_evaluates() {
        let ctx = ctx();
        let body = r#"{"scale": "test", "points": [
            {"benchmark": "gzip", "side": "icache", "node": "70nm"},
            {"benchmark": "mesa", "side": "dcache", "node": "130nm"}
        ]}"#;
        let request = Request {
            method: "POST".into(),
            path: "/v1/sweep".into(),
            query: Vec::new(),
            body: body.as_bytes().to_vec(),
            close: false,
            chunked: false,
            trace: crate::trace::ReqTrace::default(),
        };
        let response = handle(&request, &ctx);
        assert_eq!(response.status(), 200, "{}", body_text(&response));
        let doc = json::parse(&body_text(&response)).unwrap();
        let results = doc.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results.len(), 2);
        let first = &results[0];
        assert_eq!(first.get("benchmark").and_then(Json::as_str), Some("gzip"));
        let drowsy = first.get("opt_drowsy").and_then(Json::as_f64).unwrap();
        assert!(drowsy.is_finite() && drowsy > 0.0);

        // Validation failures reject the whole batch before compute.
        for bad in [
            r#"{"points": []}"#,
            r#"{"points": [{"benchmark": "nope", "side": "icache", "node": "70nm"}]}"#,
            r#"{"points": [{"benchmark": "gzip", "side": "l2", "node": "70nm"}]}"#,
            r#"{"points": [{"benchmark": "gzip", "side": "icache", "node": "90nm"}]}"#,
            "not json",
        ] {
            let mut request = request.clone();
            request.body = bad.as_bytes().to_vec();
            let status = handle(&request, &ctx).status();
            assert_eq!(status, 400, "{bad}");
        }
    }

    #[test]
    fn cache_serves_second_read() {
        let ctx = ctx();
        let request = get("/v1/table/1", &[]);
        assert_eq!(handle(&request, &ctx).status(), 200);
        assert_eq!(ctx.cache.len(), 1);
        // Second read is a cache hit: same bytes, still one entry.
        let again = handle(&request, &ctx);
        assert_eq!(again.status(), 200);
        assert_eq!(ctx.cache.len(), 1);
        assert_eq!(ctx.cache.stats().hits, 1);
    }

    #[test]
    fn catalog_preserializes_default_scale_artifacts() {
        let ctx = ctx_with_catalog(true);
        let request = get("/v1/table/1", &[]);
        let first = handle(&request, &ctx);
        assert_eq!(first.status(), 200);
        assert_eq!(ctx.catalog.len(), 1, "went to the catalog tier");
        assert!(ctx.cache.is_empty(), "catalog space bypasses the LRU");
        let again = handle(&request, &ctx);
        assert_eq!(again.body(), first.body(), "byte-identical catalog hit");
        // A non-default scale is outside the catalog space.
        let custom = get("/v1/table/1", &[("scale", "12345")]);
        assert_eq!(handle(&custom, &ctx).status(), 200);
        assert_eq!(ctx.catalog.len(), 1);
        assert_eq!(ctx.cache.len(), 1, "custom scale lands in the LRU");
    }

    #[test]
    fn warm_catalog_fills_the_finite_space() {
        let ctx = ctx_with_catalog(true);
        warm_catalog(&ctx);
        // version + 6 artifacts × 3 query variants (healthz is a live
        // snapshot now, outside the catalog space).
        assert_eq!(ctx.catalog.len(), 1 + 6 * 3);
        // The warmed entry and a fresh compute agree byte-for-byte.
        let request = get("/v1/table/2", &[]);
        let catalog_hit = handle(&request, &ctx).to_bytes(true);
        let fresh = handle(&request, &ctx_with_catalog(false)).to_bytes(true);
        assert_eq!(catalog_hit, fresh);
    }

    #[test]
    fn jobs_routes_cover_the_full_lifecycle_without_workers() {
        let ctx = ctx();
        // A present-but-empty benchmarks axis is a legal zero-point
        // job: it completes without spawning a single worker, which
        // lets this unit test drive every route tier in-process.
        let mut request = get("/v1/jobs", &[]);
        request.method = "POST".into();
        request.body = br#"{"name": "unit-empty", "benchmarks": []}"#.to_vec();
        let created = handle(&request, &ctx);
        assert_eq!(created.status(), 201, "{}", body_text(&created));
        let doc = json::parse(&body_text(&created)).unwrap();
        let id = doc.get("id").and_then(Json::as_str).unwrap().to_string();

        // Idempotent resubmission: same spec, same id, 200 not 201.
        let again = handle(&request, &ctx);
        assert_eq!(again.status(), 200);

        // Same name, different spec: refused.
        let mut conflict = request.clone();
        conflict.body = br#"{"name": "unit-empty", "benchmarks": ["gzip"]}"#.to_vec();
        assert_eq!(handle(&conflict, &ctx).status(), 409);

        // The empty job completes without workers; wait for the runner.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let status = handle(&get(&format!("/v1/jobs/{id}"), &[]), &ctx);
            assert_eq!(status.status(), 200);
            let doc = json::parse(&body_text(&status)).unwrap();
            match doc.get("state").and_then(Json::as_str) {
                Some("done") => break,
                Some(state) if Instant::now() < deadline => {
                    assert!(matches!(state, "queued" | "running"), "{state}");
                    std::thread::sleep(Duration::from_millis(10));
                }
                other => panic!("job never completed: {other:?}"),
            }
        }

        // List shows it; status responses are never cached.
        let list = handle(&get("/v1/jobs", &[]), &ctx);
        assert!(body_text(&list).contains("unit-empty"));
        assert!(ctx.cache.is_empty(), "job responses must bypass the LRU");

        // Pagination boundaries on the empty result set.
        let result = handle(&get(&format!("/v1/jobs/{id}/result"), &[]), &ctx);
        assert_eq!(result.status(), 200, "{}", body_text(&result));
        let doc = json::parse(&body_text(&result)).unwrap();
        assert_eq!(doc.get("total_points").and_then(Json::as_f64), Some(0.0));
        assert_eq!(
            doc.get("rows").and_then(Json::as_array).map(<[Json]>::len),
            Some(0)
        );
        let past_end = handle(
            &get(&format!("/v1/jobs/{id}/result"), &[("page", "99")]),
            &ctx,
        );
        assert_eq!(past_end.status(), 200);
        assert_eq!(
            handle(
                &get(&format!("/v1/jobs/{id}/result"), &[("per_page", "0")]),
                &ctx,
            )
            .status(),
            400
        );
        assert_eq!(
            handle(
                &get(&format!("/v1/jobs/{id}/result"), &[("per_page", "abc")]),
                &ctx,
            )
            .status(),
            400
        );

        // Unknown ids and bad bodies.
        assert_eq!(handle(&get("/v1/jobs/jdeadbeef", &[]), &ctx).status(), 404);
        let mut bad = request.clone();
        bad.body = b"not json".to_vec();
        assert_eq!(handle(&bad, &ctx).status(), 400);
        let mut bad_spec = request.clone();
        bad_spec.body = br#"{"name": "x", "nodes": ["90nm"]}"#.to_vec();
        assert_eq!(handle(&bad_spec, &ctx).status(), 400);

        // Canceling a finished job is a conflict.
        let mut delete = get(&format!("/v1/jobs/{id}"), &[]);
        delete.method = "DELETE".into();
        assert_eq!(handle(&delete, &ctx).status(), 409);
        ctx.jobs.stop();
    }

    #[test]
    fn armed_handler_panic_becomes_500() {
        let ctx = ctx();
        // The figure handler is touched by no other unit test in this
        // crate, so arming its site cannot perturb parallel tests.
        let previous = leakage_faults::set_plane(
            leakage_faults::Plane::parse("server/handler/figure=panic").unwrap(),
        );
        let response = handle(&get("/v1/figure/7", &[]), &ctx);
        let plane = std::sync::Arc::try_unwrap(previous).unwrap_or_default();
        leakage_faults::set_plane(plane);
        assert_eq!(response.status(), 500);
        assert!(body_text(&response).contains("panicked"));
        assert!(ctx.cache.is_empty(), "500s are never cached");
        // With the plane restored, the same route serves normally.
        assert_eq!(handle(&get("/v1/figure/7", &[]), &ctx).status(), 200);
    }
}
