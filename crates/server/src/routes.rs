//! Request routing and handlers.
//!
//! Every handler runs inside [`handle`]'s `catch_unwind`, behind its
//! route's fault-injection site `server/handler/<route>`, so an armed
//! panic (or a genuine handler bug) becomes a 500 for that one
//! connection and never takes down a pool worker.

use crate::http::{Request, Response};
use crate::limit::Semaphore;
use crate::respcache::ResponseCache;
use leakage_cachesim::Level1;
use leakage_experiments::query::{self, QueryError, SweepPoint};
use leakage_experiments::{CacheProfile, ProfileStore, Table};
use leakage_faults::StoreError;
use leakage_telemetry::json::{self, Json};
use leakage_telemetry::prometheus_text;
use leakage_telemetry::registry;
use leakage_workloads::{Scale, SUITE_NAMES};
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Largest accepted `Scale::Custom` cycle count — a served query must
/// not be able to commission an unbounded simulation.
pub const MAX_CUSTOM_CYCLES: u64 = 50_000_000;

/// Largest accepted `/v1/sweep` batch.
pub const MAX_SWEEP_POINTS: usize = 512;

/// Everything a handler needs, shared across pool workers.
pub struct RouteContext {
    /// The memoized profile store backing every simulation query.
    pub store: &'static ProfileStore,
    /// LRU response cache.
    pub cache: Arc<ResponseCache>,
    /// Concurrency limit for simulation-backed GETs.
    pub sim_limit: Arc<Semaphore>,
    /// Concurrency limit for sweep batches.
    pub sweep_limit: Arc<Semaphore>,
    /// Scale used when the query string does not name one.
    pub default_scale: Scale,
    /// How long a request waits for a concurrency permit before being
    /// shed.
    pub limit_wait: Duration,
    /// `Retry-After` seconds on shed responses.
    pub retry_after_secs: u64,
}

/// The route label used for fault sites and per-route metrics.
pub fn route_name(request: &Request) -> &'static str {
    let path = request.path.as_str();
    match () {
        _ if path == "/healthz" => "healthz",
        _ if path == "/metrics" => "metrics",
        _ if path.starts_with("/v1/profile/") => "profile",
        _ if path.starts_with("/v1/table/") => "table",
        _ if path.starts_with("/v1/figure/") => "figure",
        _ if path == "/v1/sweep" => "sweep",
        _ => "not_found",
    }
}

/// Routes one request to its handler with response caching and panic
/// isolation. Always returns a response — a panicking handler yields
/// a 500.
pub fn handle(request: &Request, ctx: &RouteContext) -> Response {
    let route = route_name(request);
    registry()
        .counter(&format!("server_requests_{route}_total"))
        .inc();

    let key = request.canonical_key();
    let cache_eligible = request.method == "GET" && request.path.starts_with("/v1/");
    if cache_eligible {
        if let Some(hit) = ctx.cache.get(&key) {
            registry().counter("server_response_cache_hits_total").inc();
            return hit;
        }
        registry().counter("server_response_cache_misses_total").inc();
    }

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        leakage_faults::panic_point(&format!("server/handler/{route}"));
        dispatch(request, ctx, route)
    }));
    let response = match outcome {
        Ok(response) => response,
        Err(_) => {
            registry().counter("server_handler_panics_total").inc();
            Response::error(500, "handler panicked; see server logs")
        }
    };
    if ResponseCache::cacheable(request, &response) {
        ctx.cache.put(&key, &response);
    }
    response
}

fn dispatch(request: &Request, ctx: &RouteContext, route: &str) -> Response {
    match (request.method.as_str(), route) {
        ("GET", "healthz") => healthz(),
        ("GET", "metrics") => Response::text(200, prometheus_text()),
        ("GET", "profile" | "table" | "figure") => {
            // Validate the scale before burning a permit on a
            // malformed query.
            let scale = match parse_scale(request, ctx.default_scale) {
                Ok(scale) => scale,
                Err(response) => return response,
            };
            let Some(_permit) = ctx.sim_limit.acquire(ctx.limit_wait) else {
                return shed(ctx, "simulation concurrency limit reached");
            };
            match route {
                "profile" => profile(request, ctx, scale),
                "table" => table(request, ctx, scale),
                _ => figure(request, ctx, scale),
            }
        }
        ("POST", "sweep") => {
            let Some(_permit) = ctx.sweep_limit.acquire(ctx.limit_wait) else {
                return shed(ctx, "sweep concurrency limit reached");
            };
            sweep(request, ctx)
        }
        (_, "not_found") => Response::error(404, &format!("no such route: {}", request.path)),
        _ => Response::error(405, &format!("{} not allowed here", request.method)),
    }
}

/// 503 + `Retry-After` — the shared shed/backpressure response.
fn shed(ctx: &RouteContext, reason: &str) -> Response {
    registry().counter("server_shed_total").inc();
    Response::error(503, reason).with_header("Retry-After", ctx.retry_after_secs.to_string())
}

fn healthz() -> Response {
    Response::json(
        200,
        json::object([
            json::key("status") + &json::string("ok"),
            json::key("suite") + &json::array(SUITE_NAMES.iter().map(|n| json::string(n))),
        ]),
    )
}

/// Parses `scale=` (preset name or cycle count) with the custom-cycle
/// cap.
fn parse_scale(request: &Request, default_scale: Scale) -> Result<Scale, Response> {
    let Some(arg) = request.query_param("scale") else {
        return Ok(default_scale);
    };
    match Scale::parse_arg(arg) {
        Some(scale) if scale.cycles() <= MAX_CUSTOM_CYCLES => Ok(scale),
        Some(_) => Err(Response::error(
            400,
            &format!("scale above the serving cap of {MAX_CUSTOM_CYCLES} cycles"),
        )),
        None => Err(Response::error(
            400,
            &format!("bad scale {arg:?}: expected test|small|paper or a cycle count"),
        )),
    }
}

fn num_u64(v: u64) -> String {
    v.to_string()
}

fn num_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn side_json(profile: &CacheProfile) -> String {
    json::object([
        json::key("num_frames") + &num_u64(u64::from(profile.num_frames)),
        json::key("total_cycles") + &num_u64(profile.total_cycles),
        json::key("accesses") + &num_u64(profile.cache.accesses),
        json::key("hits") + &num_u64(profile.cache.hits),
        json::key("misses") + &num_u64(profile.cache.misses),
        json::key("hit_rate") + &num_f64(profile.cache.hit_rate()),
        json::key("interval_classes") + &num_u64(profile.dist.num_classes() as u64),
        json::key("total_intervals") + &num_u64(profile.dist.total_intervals()),
        json::key("interval_cycles") + &num_u64(profile.dist.total_cycles()),
        json::key("covers_timeline")
            + if profile.covers_timeline() { "true" } else { "false" },
        json::key("next_line_triggers") + &num_u64(profile.prefetch.next_line_triggers),
        json::key("stride_triggers") + &num_u64(profile.prefetch.stride_triggers),
    ])
}

fn profile(request: &Request, ctx: &RouteContext, scale: Scale) -> Response {
    let benchmark = request.path.trim_start_matches("/v1/profile/");
    if benchmark.is_empty() || benchmark.contains('/') {
        return Response::error(404, "expected /v1/profile/<benchmark>");
    }
    // The Alpha-like hierarchy is the only servable geometry; the
    // parameter exists so clients state their assumption explicitly.
    match request.query_param("hierarchy") {
        None | Some("alpha") | Some("alpha-like") => {}
        Some(other) => {
            return Response::error(400, &format!("unknown hierarchy {other:?}: only \"alpha\""))
        }
    }
    match ctx.store.try_fetch(benchmark, scale) {
        Ok(profile) => Response::json(
            200,
            json::object([
                json::key("benchmark") + &json::string(&profile.name),
                json::key("scale_cycles") + &num_u64(scale.cycles()),
                json::key("hierarchy") + &json::string("alpha"),
                json::key("icache") + &side_json(&profile.icache),
                json::key("dcache") + &side_json(&profile.dcache),
            ]),
        ),
        Err(err) => store_error_response(&err),
    }
}

fn store_error_response(err: &StoreError) -> Response {
    match err {
        StoreError::UnknownBenchmark { .. } => Response::error(404, &err.to_string()),
        _ => Response::error(500, &err.to_string()),
    }
}

fn query_error_response(err: &QueryError) -> Response {
    match err {
        QueryError::UnknownArtifact { .. } => Response::error(404, &err.to_string()),
        QueryError::Store(store) => store_error_response(store),
        QueryError::Degraded { .. } => Response::error(503, &err.to_string()),
    }
}

/// `format=` negotiation: canonical JSON by default, CSV on request.
fn artifact_format(request: &Request) -> Result<&str, Response> {
    match request.query_param("format") {
        None => Ok("json"),
        Some(fmt @ ("json" | "csv")) => Ok(fmt),
        Some(other) => Err(Response::error(
            400,
            &format!("bad format {other:?}: expected json or csv"),
        )),
    }
}

fn parse_artifact_id(request: &Request, prefix: &str) -> Result<u8, Response> {
    request
        .path
        .strip_prefix(prefix)
        .and_then(|raw| raw.parse::<u8>().ok())
        .ok_or_else(|| Response::error(404, &format!("expected {prefix}<number>")))
}

fn table(request: &Request, ctx: &RouteContext, scale: Scale) -> Response {
    let id = match parse_artifact_id(request, "/v1/table/") {
        Ok(id) => id,
        Err(response) => return response,
    };
    let format = match artifact_format(request) {
        Ok(format) => format,
        Err(response) => return response,
    };
    match query::table(ctx.store, id, scale) {
        Ok(table) if format == "csv" => Response::csv(table.to_csv()),
        Ok(table) => Response::json(200, table.to_json()),
        Err(err) => query_error_response(&err),
    }
}

fn figure_json(id: u8, scale: Scale, icache: &Table, dcache: &Table) -> String {
    json::object([
        json::key("figure") + &num_u64(u64::from(id)),
        json::key("scale_cycles") + &num_u64(scale.cycles()),
        json::key("icache") + &icache.to_json(),
        json::key("dcache") + &dcache.to_json(),
    ])
}

fn figure(request: &Request, ctx: &RouteContext, scale: Scale) -> Response {
    let id = match parse_artifact_id(request, "/v1/figure/") {
        Ok(id) => id,
        Err(response) => return response,
    };
    let format = match artifact_format(request) {
        Ok(format) => format,
        Err(response) => return response,
    };
    match query::figure(ctx.store, id, scale) {
        Ok((icache, dcache)) if format == "csv" => {
            Response::csv(format!("{}\n{}", icache.to_csv(), dcache.to_csv()))
        }
        Ok((icache, dcache)) => Response::json(200, figure_json(id, scale, &icache, &dcache)),
        Err(err) => query_error_response(&err),
    }
}

/// One validated sweep request: a scale plus Fig. 6 model points.
struct SweepRequest {
    scale: Scale,
    points: Vec<SweepPoint>,
}

fn parse_sweep_body(request: &Request, ctx: &RouteContext) -> Result<SweepRequest, Response> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| Response::error(400, "sweep body is not UTF-8"))?;
    let doc = json::parse(text).map_err(|err| Response::error(400, &err.to_string()))?;
    let scale = match doc.get("scale").and_then(Json::as_str) {
        None => ctx.default_scale,
        Some(arg) => match Scale::parse_arg(arg) {
            Some(scale) if scale.cycles() <= MAX_CUSTOM_CYCLES => scale,
            _ => return Err(Response::error(400, &format!("bad sweep scale {arg:?}"))),
        },
    };
    let raw_points = doc
        .get("points")
        .and_then(Json::as_array)
        .ok_or_else(|| Response::error(400, "sweep body needs a \"points\" array"))?;
    if raw_points.is_empty() {
        return Err(Response::error(400, "sweep needs at least one point"));
    }
    if raw_points.len() > MAX_SWEEP_POINTS {
        return Err(Response::error(
            413,
            &format!("sweep capped at {MAX_SWEEP_POINTS} points"),
        ));
    }
    let mut points = Vec::with_capacity(raw_points.len());
    for (index, raw) in raw_points.iter().enumerate() {
        let field = |name: &str| raw.get(name).and_then(Json::as_str);
        let bad = |what: &str| Response::error(400, &format!("point {index}: {what}"));
        let benchmark = field("benchmark").ok_or_else(|| bad("missing \"benchmark\""))?;
        if !SUITE_NAMES.contains(&benchmark) {
            return Err(bad(&format!("unknown benchmark {benchmark:?}")));
        }
        let side = field("side")
            .and_then(query::parse_side)
            .ok_or_else(|| bad("bad \"side\": expected icache|dcache"))?;
        let node = field("node")
            .and_then(query::parse_node)
            .ok_or_else(|| bad("bad \"node\": expected 70nm|100nm|130nm|180nm"))?;
        points.push(SweepPoint {
            benchmark: benchmark.to_string(),
            side,
            node,
        });
    }
    Ok(SweepRequest { scale, points })
}

fn side_token(side: Level1) -> &'static str {
    match side {
        Level1::Instruction => "icache",
        Level1::Data => "dcache",
    }
}

fn sweep(request: &Request, ctx: &RouteContext) -> Response {
    let SweepRequest { scale, points } = match parse_sweep_body(request, ctx) {
        Ok(parsed) => parsed,
        Err(response) => return response,
    };
    // All points validated; fan the batch out over the rayon pool.
    // Each point hits the memoized store, so the per-benchmark
    // simulation cost is paid at most once across the whole batch.
    let results: Vec<Result<String, QueryError>> = points
        .par_iter()
        .map(|point| {
            let savings = query::sweep_point(ctx.store, scale, point)?;
            Ok(json::object([
                json::key("benchmark") + &json::string(&point.benchmark),
                json::key("side") + &json::string(side_token(point.side)),
                json::key("node") + &json::string(&point.node.to_string()),
                json::key("opt_drowsy") + &num_f64(savings.opt_drowsy),
                json::key("opt_sleep") + &num_f64(savings.opt_sleep),
                json::key("opt_hybrid") + &num_f64(savings.opt_hybrid),
            ]))
        })
        .collect();
    let mut rows = Vec::with_capacity(results.len());
    for result in results {
        match result {
            Ok(row) => rows.push(row),
            Err(err) => return query_error_response(&err),
        }
    }
    Response::json(
        200,
        json::object([
            json::key("scale_cycles") + &num_u64(scale.cycles()),
            json::key("results") + &json::array(rows),
        ]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> RouteContext {
        RouteContext {
            store: ProfileStore::global(),
            cache: Arc::new(ResponseCache::new(16)),
            sim_limit: Arc::new(Semaphore::new(4)),
            sweep_limit: Arc::new(Semaphore::new(2)),
            default_scale: Scale::Test,
            limit_wait: Duration::from_millis(200),
            retry_after_secs: 1,
        }
    }

    fn get(path: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            body: Vec::new(),
        }
    }

    #[test]
    fn routes_resolve_names() {
        assert_eq!(route_name(&get("/healthz", &[])), "healthz");
        assert_eq!(route_name(&get("/metrics", &[])), "metrics");
        assert_eq!(route_name(&get("/v1/profile/gzip", &[])), "profile");
        assert_eq!(route_name(&get("/v1/table/2", &[])), "table");
        assert_eq!(route_name(&get("/v1/figure/8", &[])), "figure");
        assert_eq!(route_name(&get("/v1/sweep", &[])), "sweep");
        assert_eq!(route_name(&get("/nope", &[])), "not_found");
    }

    #[test]
    fn healthz_and_errors() {
        let ctx = ctx();
        let ok = handle(&get("/healthz", &[]), &ctx);
        assert_eq!(ok.status, 200);
        assert!(String::from_utf8_lossy(&ok.body).contains("\"ok\""));
        assert_eq!(handle(&get("/nope", &[]), &ctx).status, 404);
        let mut post = get("/healthz", &[]);
        post.method = "POST".into();
        assert_eq!(handle(&post, &ctx).status, 405);
    }

    #[test]
    fn table_served_json_matches_batch_generator() {
        let ctx = ctx();
        let response = handle(&get("/v1/table/2", &[("scale", "test")]), &ctx);
        assert_eq!(response.status, 200);
        let served = Table::from_json(&String::from_utf8(response.body).unwrap()).unwrap();
        let batch = query::table(ctx.store, 2, Scale::Test).unwrap();
        assert_eq!(served, batch);
    }

    #[test]
    fn table_csv_and_bad_queries() {
        let ctx = ctx();
        let csv = handle(&get("/v1/table/1", &[("format", "csv")]), &ctx);
        assert_eq!(csv.status, 200);
        assert_eq!(csv.content_type, "text/csv");
        assert_eq!(handle(&get("/v1/table/9", &[]), &ctx).status, 404);
        assert_eq!(
            handle(&get("/v1/table/1", &[("format", "xml")]), &ctx).status,
            400
        );
        assert_eq!(
            handle(&get("/v1/table/1", &[("scale", "huge")]), &ctx).status,
            400
        );
        assert_eq!(
            handle(
                &get("/v1/table/1", &[("scale", "99999999999")]),
                &ctx
            )
            .status,
            400,
            "custom scales above the cap are rejected"
        );
    }

    #[test]
    fn profile_route_serves_summary() {
        let ctx = ctx();
        let ok = handle(&get("/v1/profile/gzip", &[("scale", "test")]), &ctx);
        assert_eq!(ok.status, 200);
        let doc = json::parse(&String::from_utf8(ok.body).unwrap()).unwrap();
        assert_eq!(doc.get("benchmark").and_then(Json::as_str), Some("gzip"));
        assert_eq!(
            doc.get("scale_cycles").and_then(Json::as_f64),
            Some(200_000.0)
        );
        assert_eq!(
            doc.get("icache")
                .and_then(|side| side.get("covers_timeline")),
            Some(&Json::Bool(true))
        );
        assert_eq!(handle(&get("/v1/profile/perlbmk", &[]), &ctx).status, 404);
        assert_eq!(
            handle(&get("/v1/profile/gzip", &[("hierarchy", "mips")]), &ctx).status,
            400
        );
    }

    #[test]
    fn sweep_validates_then_evaluates() {
        let ctx = ctx();
        let body = r#"{"scale": "test", "points": [
            {"benchmark": "gzip", "side": "icache", "node": "70nm"},
            {"benchmark": "mesa", "side": "dcache", "node": "130nm"}
        ]}"#;
        let request = Request {
            method: "POST".into(),
            path: "/v1/sweep".into(),
            query: Vec::new(),
            body: body.as_bytes().to_vec(),
        };
        let response = handle(&request, &ctx);
        assert_eq!(response.status, 200, "{}", String::from_utf8_lossy(&response.body));
        let doc = json::parse(&String::from_utf8(response.body).unwrap()).unwrap();
        let results = doc.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results.len(), 2);
        let first = &results[0];
        assert_eq!(first.get("benchmark").and_then(Json::as_str), Some("gzip"));
        let drowsy = first.get("opt_drowsy").and_then(Json::as_f64).unwrap();
        assert!(drowsy.is_finite() && drowsy > 0.0);

        // Validation failures reject the whole batch before compute.
        for bad in [
            r#"{"points": []}"#,
            r#"{"points": [{"benchmark": "nope", "side": "icache", "node": "70nm"}]}"#,
            r#"{"points": [{"benchmark": "gzip", "side": "l2", "node": "70nm"}]}"#,
            r#"{"points": [{"benchmark": "gzip", "side": "icache", "node": "90nm"}]}"#,
            "not json",
        ] {
            let mut request = request.clone();
            request.body = bad.as_bytes().to_vec();
            let status = handle(&request, &ctx).status;
            assert_eq!(status, 400, "{bad}");
        }
    }

    #[test]
    fn cache_serves_second_read() {
        let ctx = ctx();
        let request = get("/v1/table/1", &[]);
        assert_eq!(handle(&request, &ctx).status, 200);
        assert_eq!(ctx.cache.len(), 1);
        // Second read is a cache hit: same bytes, still one entry.
        let again = handle(&request, &ctx);
        assert_eq!(again.status, 200);
        assert_eq!(ctx.cache.len(), 1);
    }

    #[test]
    fn armed_handler_panic_becomes_500() {
        let ctx = ctx();
        // The figure handler is touched by no other unit test in this
        // crate, so arming its site cannot perturb parallel tests.
        let previous = leakage_faults::set_plane(
            leakage_faults::Plane::parse("server/handler/figure=panic").unwrap(),
        );
        let response = handle(&get("/v1/figure/7", &[]), &ctx);
        let plane = std::sync::Arc::try_unwrap(previous).unwrap_or_default();
        leakage_faults::set_plane(plane);
        assert_eq!(response.status, 500);
        assert!(String::from_utf8_lossy(&response.body).contains("panicked"));
        assert!(ctx.cache.is_empty(), "500s are never cached");
        // With the plane restored, the same route serves normally.
        assert_eq!(handle(&get("/v1/figure/7", &[]), &ctx).status, 200);
    }
}
