//! Streaming trace ingestion: `POST /v1/trace/intervals`.
//!
//! Clients upload an LKTR trace (see [`leakage_trace::io`]) and get
//! back a per-line interval summary computed by the streaming
//! extractor ([`leakage_intervals::StreamingExtractor`]). Two body
//! framings are served:
//!
//! - `Content-Length`: the body arrives buffered through the normal
//!   parse path (bounded by the parser's body cap) and is handled in
//!   [`crate::routes`] via [`intervals_from_bytes`].
//! - `Transfer-Encoding: chunked`: the body is **never** buffered
//!   whole. The request completes at the end of its header block, the
//!   worker takes exclusive ownership of the socket (both transports
//!   guarantee a connection is owned by exactly one worker at a
//!   time), and [`serve_upload`] pumps wire bytes through a
//!   [`ChunkedDecoder`] → [`StreamDecoder`] → extractor pipeline.
//!   Peak memory is one read chunk plus the decoder's partial-record
//!   tail plus the extractor's per-resident-line state — independent
//!   of body length, which is what lets a million-event trace stream
//!   through a fixed-size worker.
//!
//! Limits: decoded chunked bodies are capped at
//! [`MAX_DECODED_BODY`] bytes (413 beyond it), `line_bits` at
//! [`MAX_LINE_BITS`]. Uploads are counted in
//! `server_trace_uploads_total` / `server_trace_upload_bytes_total`;
//! the `trace` route has the standard per-route request counter and
//! latency histogram.

use crate::conn::Connection;
use crate::http::{ChunkedDecoder, Request, Response};
use crate::pool::WorkerConfig;
use crate::routes::{self, RouteContext};
use crate::trace::us32;
use leakage_intervals::{CompactIntervalDist, StreamingExtractor};
use leakage_telemetry::json;
use leakage_telemetry::{registry, RequestRecord};
use leakage_trace::io::StreamDecoder;
use leakage_trace::TraceError;
use std::io::{self, Read, Write};
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Largest accepted decoded chunked body (wire bytes after chunk
/// deframing, before LKTR record decoding): 256 MiB ≈ 10.7M events.
pub const MAX_DECODED_BODY: u64 = 256 * 1024 * 1024;

/// Largest accepted `line_bits` query value (a 16M-line index space;
/// beyond this the per-line state stops being "cache-shaped").
pub const MAX_LINE_BITS: u32 = 24;

/// Cache-line address bits assumed when the query names none — 64-byte
/// lines, matching the paper's simulated hierarchy.
pub const DEFAULT_LINE_BITS: u32 = 6;

/// Socket read size while pumping a chunked body.
const READ_CHUNK: usize = 16 * 1024;

/// Parses the `line_bits` query parameter.
fn parse_line_bits(request: &Request) -> Result<u32, Response> {
    match request.query_param("line_bits") {
        None => Ok(DEFAULT_LINE_BITS),
        Some(raw) => match raw.parse::<u32>() {
            Ok(bits) if bits <= MAX_LINE_BITS => Ok(bits),
            _ => Err(Response::error(
                400,
                &format!("bad line_bits {raw:?}: expected 0..={MAX_LINE_BITS}"),
            )),
        },
    }
}

/// An in-flight trace upload: LKTR record decoding feeding the
/// streaming per-line extractor. Constant memory per resident line;
/// nothing retains the body.
struct TraceIngest {
    decoder: StreamDecoder,
    extractor: StreamingExtractor<CompactIntervalDist>,
    line_bits: u32,
}

impl TraceIngest {
    fn new(line_bits: u32) -> Self {
        TraceIngest {
            decoder: StreamDecoder::new(),
            extractor: StreamingExtractor::new(line_bits, CompactIntervalDist::new()),
            line_bits,
        }
    }

    fn feed(&mut self, bytes: &[u8]) -> Result<(), TraceError> {
        self.decoder.feed(bytes, &mut self.extractor)
    }

    /// Finalizes open intervals at the watermark and renders the
    /// summary document.
    fn finish(self) -> Result<Response, TraceError> {
        self.decoder.finish()?;
        let extractor = self.extractor;
        let events = extractor.events();
        let lines = extractor.resident_lines() as u64;
        let peak = extractor.peak_resident_lines() as u64;
        let end_cycle = extractor.watermark().map_or(0, |last| last.raw() + 1);
        let dist = extractor.finish();
        Ok(Response::json(
            200,
            json::object([
                json::key("events") + &events.to_string(),
                json::key("line_bits") + &self.line_bits.to_string(),
                json::key("lines") + &lines.to_string(),
                json::key("peak_resident_lines") + &peak.to_string(),
                json::key("end_cycle") + &end_cycle.to_string(),
                json::key("intervals") + &dist.total_intervals().to_string(),
                json::key("interval_classes") + &(dist.num_classes() as u64).to_string(),
                json::key("interval_cycles") + &dist.total_cycles().to_string(),
            ]),
        ))
    }
}

/// The buffered (`Content-Length`) handler behind `POST
/// /v1/trace/intervals` — same decode/extract pipeline as the chunked
/// path, so both framings produce identical summaries for identical
/// bodies.
pub fn intervals_from_bytes(request: &Request) -> Response {
    let line_bits = match parse_line_bits(request) {
        Ok(bits) => bits,
        Err(response) => return response,
    };
    count_upload(request.body.len() as u64);
    let mut ingest = TraceIngest::new(line_bits);
    if let Err(err) = ingest.feed(&request.body) {
        return Response::error(400, &format!("bad trace body: {err}"));
    }
    match ingest.finish() {
        Ok(response) => response,
        Err(err) => Response::error(400, &format!("bad trace body: {err}")),
    }
}

fn count_upload(body_bytes: u64) {
    let reg = registry();
    reg.counter("server_trace_uploads_total").inc();
    reg.counter("server_trace_upload_bytes_total")
        .add(body_bytes);
}

/// Serves one chunked-upload request on a worker-owned socket.
///
/// The caller has already flushed any batched responses; this
/// function reads the body (starting with bytes already buffered
/// behind the header block), writes its own response, and returns the
/// connection with pipelined successor bytes retained in `conn.buf`
/// and its fate in `conn.close`. Any framing or I/O failure closes:
/// once chunk framing is lost mid-body the request boundary is
/// unknowable.
pub(crate) fn serve_upload(
    mut conn: Connection,
    request: &Request,
    ctx: &RouteContext,
    worker_config: &WorkerConfig,
) -> Connection {
    let started = Instant::now();
    let route = routes::route_name(request);
    ctx.metrics.count_route(route);

    // The upload path block-reads; reactor sockets are nonblocking and
    // the threaded transport uses short read slices, so both modes are
    // saved and restored around the pump.
    let saved_timeout = conn.stream.read_timeout().ok().flatten();
    if worker_config.nonblocking {
        let _ = conn.stream.set_nonblocking(false);
    }
    let _ = conn
        .stream
        .set_read_timeout(Some(worker_config.request_timeout));

    let outcome = if request.method == "POST" && route == "trace" {
        pump_chunked_body(&mut conn, request)
    } else {
        // Any other route would have to drain an unbounded body it
        // will not use; ask the client to frame with Content-Length.
        Err(Response::error(
            411,
            "chunked bodies are only accepted on POST /v1/trace/intervals",
        ))
    };
    let (response, body_ok) = match outcome {
        Ok(response) => (response, true),
        Err(response) => (response, false),
    };

    // An error mid-stream loses chunk framing: the connection cannot
    // be reused even if the socket is healthy.
    let keep_alive = body_ok
        && !conn.close
        && !worker_config.stop.load(Ordering::Relaxed)
        && !(conn.eof && !conn.has_buffered_request());
    let wire = response.into_wire();
    let status = wire.status();
    let wrote = (&conn.stream).write_all(&wire.to_bytes(keep_alive)).is_ok();
    if !wrote {
        ctx.metrics.transport_errors.inc();
    }
    if !keep_alive || !wrote {
        conn.close = true;
    }

    ctx.metrics.requests_total.inc();
    ctx.metrics.count_status(status);
    let total = started.elapsed();
    ctx.metrics
        .record_latency(route, u64::try_from(total.as_micros()).unwrap_or(u64::MAX));
    if let Some(recorder) = ctx.recorder.as_deref() {
        recorder.record(&RequestRecord {
            trace_id: request.trace.id,
            end_us: recorder.now_us(),
            route: routes::route_code(route),
            status,
            req_bytes: request.trace.req_bytes,
            parse_us: request.trace.parse_us,
            handler_us: us32(total),
            total_us: request.trace.parse_us.saturating_add(us32(total)),
            ..RequestRecord::default()
        });
    }

    let _ = conn.stream.set_read_timeout(saved_timeout);
    if worker_config.nonblocking {
        let _ = conn.stream.set_nonblocking(true);
    }
    conn
}

/// Pumps the chunked body from `conn.buf` + the socket into the
/// extractor. On success, surplus bytes (pipelined successors) are
/// back in `conn.buf`.
fn pump_chunked_body(conn: &mut Connection, request: &Request) -> Result<Response, Response> {
    let line_bits = parse_line_bits(request)?;
    let mut chunks = ChunkedDecoder::new();
    let mut ingest = TraceIngest::new(line_bits);
    // Scratch for one round of deframed bytes; cleared every round so
    // memory stays one chunk deep.
    let mut decoded = Vec::new();
    // Body bytes that arrived pipelined behind the header block.
    let mut wire = std::mem::take(&mut conn.buf);
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        if !wire.is_empty() {
            let used = chunks
                .feed(&wire, &mut decoded)
                .map_err(|bad| Response::error(bad.status, &bad.reason))?;
            if chunks.decoded_bytes() > MAX_DECODED_BODY {
                return Err(Response::error(
                    413,
                    &format!("chunked trace body capped at {MAX_DECODED_BODY} decoded bytes"),
                ));
            }
            ingest
                .feed(&decoded)
                .map_err(|err| Response::error(400, &format!("bad trace body: {err}")))?;
            decoded.clear();
            if chunks.is_done() {
                // Surplus bytes belong to the next pipelined request.
                conn.buf = wire.split_off(used);
                break;
            }
            wire.clear();
        }
        match (&conn.stream).read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
                return Err(Response::error(400, "connection closed mid-chunked-body"));
            }
            Ok(n) => wire.extend_from_slice(&chunk[..n]),
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(Response::error(408, "timed out reading chunked body"));
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.eof = true;
                return Err(Response::error(400, "read error mid-chunked-body"));
            }
        }
    }
    count_upload(chunks.decoded_bytes());
    ingest
        .finish()
        .map_err(|err| Response::error(400, &format!("bad trace body: {err}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_telemetry::json::Json;
    use leakage_trace::{Address, Cycle, MemoryAccess, Pc, TraceSink};

    /// An LKTR body with `events` loads walking one address per cycle.
    fn lktr_body(events: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut writer = leakage_trace::io::TraceWriter::new(&mut buf).unwrap();
        for i in 0..events {
            TraceSink::accept(
                &mut writer,
                MemoryAccess::load(Cycle::new(i), Pc::new(0x2000), Address::new(i * 64)),
            );
        }
        writer.flush().unwrap();
        drop(writer);
        buf
    }

    fn post(path: &str, query: &[(&str, &str)], body: Vec<u8>) -> Request {
        let mut request = Request::get(path);
        request.method = "POST".to_string();
        request.query = query
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        request.body = body;
        request
    }

    #[test]
    fn buffered_upload_summarizes_intervals() {
        let request = post("/v1/trace/intervals", &[], lktr_body(16));
        let response = intervals_from_bytes(&request);
        assert_eq!(response.status, 200);
        let doc = json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert_eq!(doc.get("events").and_then(Json::as_f64), Some(16.0));
        assert_eq!(doc.get("lines").and_then(Json::as_f64), Some(16.0));
        assert_eq!(doc.get("line_bits").and_then(Json::as_f64), Some(6.0));
        assert_eq!(doc.get("end_cycle").and_then(Json::as_f64), Some(16.0));
        // One trailing interval per line, nothing reaccessed.
        assert_eq!(doc.get("intervals").and_then(Json::as_f64), Some(16.0));
    }

    #[test]
    fn line_bits_is_validated() {
        let request = post("/v1/trace/intervals", &[("line_bits", "99")], lktr_body(1));
        assert_eq!(intervals_from_bytes(&request).status, 400);
        let request = post("/v1/trace/intervals", &[("line_bits", "0")], lktr_body(4));
        assert_eq!(intervals_from_bytes(&request).status, 200);
    }

    #[test]
    fn garbage_body_is_a_400() {
        let request = post("/v1/trace/intervals", &[], b"not an LKTR stream".to_vec());
        assert_eq!(intervals_from_bytes(&request).status, 400);
    }

    #[test]
    fn empty_trace_summarizes_to_zeros() {
        let request = post("/v1/trace/intervals", &[], lktr_body(0));
        let response = intervals_from_bytes(&request);
        assert_eq!(response.status, 200);
        let doc = json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert_eq!(doc.get("events").and_then(Json::as_f64), Some(0.0));
        assert_eq!(doc.get("intervals").and_then(Json::as_f64), Some(0.0));
    }
}
