//! A lock-striped read front over the global [`ProfileStore`].
//!
//! The store itself memoizes profiles, but every fetch — hit or miss
//! — goes through its internal synchronization, so under a pipelined
//! keep-alive load all workers serialize on the same lock for what is
//! almost always a pure read of an already-computed `Arc`. This front
//! stripes `(benchmark, scale)` keys across independent mutexes that
//! each guard a plain `HashMap` of `Arc` clones: a hot-path hit takes
//! one uncontended stripe lock and bumps a refcount.
//!
//! Misses fall through to the store **outside** the stripe lock (a
//! first-touch simulation must not block unrelated fetches on the
//! same stripe); the store's own memoization dedups concurrent
//! first-touches of the same benchmark.

use leakage_experiments::{BenchmarkProfile, ProfileStore};
use leakage_faults::StoreError;
use leakage_workloads::Scale;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Striped read-through cache of `(benchmark, scale)` → profile.
///
/// Each stripe maps benchmark name → a short `(cycles, profile)`
/// list (a handful of scales per benchmark at most), so a hit looks
/// up by `&str` — no key allocation on the hot path.
pub struct StoreFront {
    store: &'static ProfileStore,
    stripes: Vec<Mutex<HashMap<String, Vec<(u64, Arc<BenchmarkProfile>)>>>>,
}

fn stripe_of(benchmark: &str, cycles: u64, stripes: usize) -> usize {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in benchmark.bytes().chain(cycles.to_le_bytes()) {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % stripes as u64) as usize
}

impl StoreFront {
    /// A front of `stripes` independent shards (clamped to ≥ 1) over
    /// `store`.
    pub fn new(store: &'static ProfileStore, stripes: usize) -> Self {
        StoreFront {
            store,
            stripes: (0..stripes.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// The backing store (for paths that need its full API).
    pub fn store(&self) -> &'static ProfileStore {
        self.store
    }

    /// Fetches a profile: stripe hit → `Arc` clone; miss → the
    /// memoized store, then publish into the stripe.
    ///
    /// # Errors
    ///
    /// Store errors (unknown benchmark, simulation failure) — which
    /// are **not** negatively cached, so a transient failure retries
    /// the real path.
    pub fn fetch(&self, benchmark: &str, scale: Scale) -> Result<Arc<BenchmarkProfile>, StoreError> {
        let cycles = scale.cycles();
        let stripe = &self.stripes[stripe_of(benchmark, cycles, self.stripes.len())];
        {
            let map = stripe.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(scales) = map.get(benchmark) {
                if let Some((_, profile)) = scales.iter().find(|(c, _)| *c == cycles) {
                    return Ok(Arc::clone(profile));
                }
            }
        }
        let profile = self.store.try_fetch(benchmark, scale)?;
        let mut map = stripe.lock().unwrap_or_else(PoisonError::into_inner);
        let scales = map.entry(benchmark.to_string()).or_default();
        if !scales.iter().any(|(c, _)| *c == cycles) {
            scales.push((cycles, Arc::clone(&profile)));
        }
        Ok(profile)
    }

    /// Total profiles held across all stripes.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Whether no profile has been fronted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn front_returns_same_profile_as_store() {
        let front = StoreFront::new(ProfileStore::global(), 8);
        let direct = ProfileStore::global().fetch("gzip", Scale::Test);
        let fronted = front.fetch("gzip", Scale::Test).unwrap();
        assert!(Arc::ptr_eq(&direct, &fronted), "same memoized Arc");
        assert_eq!(front.len(), 1);
        // Second fetch is a stripe hit, still the same Arc.
        let again = front.fetch("gzip", Scale::Test).unwrap();
        assert!(Arc::ptr_eq(&fronted, &again));
        assert_eq!(front.len(), 1);
    }

    #[test]
    fn errors_pass_through_and_are_not_cached() {
        let front = StoreFront::new(ProfileStore::global(), 2);
        assert!(matches!(
            front.fetch("perlbmk", Scale::Test),
            Err(StoreError::UnknownBenchmark { .. })
        ));
        assert!(front.is_empty(), "failures are not negatively cached");
    }
}
