//! SIGINT/SIGTERM → a process-wide shutdown flag, with no libc crate.
//!
//! The C runtime is already linked through `std`, so `signal(2)` is
//! declared directly. The handler only stores into a static atomic —
//! the one operation that is unconditionally async-signal-safe — and
//! the serving loop polls [`shutdown_requested`].

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal has arrived (or [`request_shutdown`] was
/// called).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Raises the shutdown flag from ordinary code (tests, admin paths).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal` is the POSIX C function; the handler is an
        // `extern "C"` fn that performs a single atomic store.
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {
        // No signal wiring off Unix; ctrl-c still terminates the
        // process, just without the drain.
    }
}

/// Installs the SIGINT/SIGTERM handlers (idempotent).
pub fn install_shutdown_handler() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_reflects_requests() {
        install_shutdown_handler();
        assert!(!shutdown_requested() || true, "flag readable");
        request_shutdown();
        assert!(shutdown_requested());
    }
}
