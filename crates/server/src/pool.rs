//! The server core: acceptor, bounded admission queue, worker pool,
//! graceful shutdown.
//!
//! ```text
//!            ┌───────────┐   bounded    ┌──────────┐
//!  accept ──►│ admission │─────────────►│ worker 0 │──► handler
//!            │   queue   │   (depth N)  │ worker 1 │──► handler
//!            └───────────┘              │   ...    │
//!                 │ full                └──────────┘
//!                 ▼
//!         503 + Retry-After
//! ```
//!
//! Backpressure is explicit: when the queue is full the acceptor
//! itself writes a 503 with `Retry-After` and closes — the client
//! learns immediately instead of queueing into a timeout. Shutdown is
//! draining: the acceptor stops, queued connections are still served,
//! then the workers exit.

use crate::http::{read_request, Response};
use crate::limit::Semaphore;
use crate::respcache::ResponseCache;
use crate::routes::{self, RouteContext};
use leakage_experiments::ProfileStore;
use leakage_telemetry::registry;
use leakage_workloads::Scale;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Latency histogram bounds in microseconds (1ms .. 10s).
const LATENCY_BOUNDS_US: [u64; 8] = [
    1_000, 5_000, 20_000, 100_000, 500_000, 1_000_000, 5_000_000, 10_000_000,
];

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads serving requests.
    pub workers: usize,
    /// Admission queue depth; connections beyond it are shed.
    pub queue_depth: usize,
    /// Per-connection socket read/write timeout.
    pub request_timeout: Duration,
    /// LRU response-cache capacity (entries).
    pub cache_entries: usize,
    /// Scale used when a query names none.
    pub default_scale: Scale,
    /// Concurrent simulation-backed GETs.
    pub sim_concurrency: usize,
    /// Concurrent sweep batches.
    pub sweep_concurrency: usize,
    /// How long a request waits for a concurrency permit.
    pub limit_wait: Duration,
    /// `Retry-After` seconds on shed responses.
    pub retry_after_secs: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            request_timeout: Duration::from_secs(30),
            cache_entries: 128,
            default_scale: Scale::Test,
            sim_concurrency: 4,
            sweep_concurrency: 2,
            limit_wait: Duration::from_secs(10),
            retry_after_secs: 1,
        }
    }
}

/// The bounded admission queue between acceptor and workers.
struct Queue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    depth: usize,
}

struct QueueInner {
    connections: VecDeque<TcpStream>,
    open: bool,
}

impl Queue {
    fn new(depth: usize) -> Self {
        Queue {
            inner: Mutex::new(QueueInner {
                connections: VecDeque::new(),
                open: true,
            }),
            ready: Condvar::new(),
            depth,
        }
    }

    /// Admits a connection, or returns it when the queue is full.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.connections.len() >= self.depth {
            return Err(stream);
        }
        inner.connections.push_back(stream);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Takes the next connection; `None` once closed **and** drained,
    /// so queued work is always served through shutdown.
    fn pop(&self) -> Option<TcpStream> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(stream) = inner.connections.pop_front() {
                return Some(stream);
            }
            if !inner.open {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops admissions and wakes every worker to drain and exit.
    fn close(&self) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .open = false;
        self.ready.notify_all();
    }

    fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .connections
            .len()
    }
}

/// A running analysis service. Dropping without
/// [`shutdown`](Server::shutdown) aborts ungracefully (threads are
/// detached); call `shutdown` to drain.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<Queue>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor and worker pool, and returns
    /// immediately.
    ///
    /// # Errors
    ///
    /// Bind/configuration I/O errors.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        // Nonblocking so the acceptor can poll the stop flag; under
        // load accepts still happen back-to-back.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let ctx = Arc::new(RouteContext {
            store: ProfileStore::global(),
            cache: Arc::new(ResponseCache::new(config.cache_entries)),
            sim_limit: Arc::new(Semaphore::new(config.sim_concurrency.max(1))),
            sweep_limit: Arc::new(Semaphore::new(config.sweep_concurrency.max(1))),
            default_scale: config.default_scale,
            limit_wait: config.limit_wait,
            retry_after_secs: config.retry_after_secs,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(Queue::new(config.queue_depth.max(1)));

        let acceptor = {
            let stop = Arc::clone(&stop);
            let queue = Arc::clone(&queue);
            let retry_after = config.retry_after_secs;
            let timeout = config.request_timeout;
            std::thread::Builder::new()
                .name("leakage-server-accept".to_string())
                .spawn(move || accept_loop(&listener, &stop, &queue, retry_after, timeout))?
        };

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for index in 0..config.workers.max(1) {
            let queue = Arc::clone(&queue);
            let ctx = Arc::clone(&ctx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("leakage-server-worker-{index}"))
                    .spawn(move || worker_loop(&queue, &ctx))?,
            );
        }

        Ok(Server {
            addr,
            stop,
            queue,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (with the real port when `addr` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current admission-queue depth (observability for tests and the
    /// health endpoint).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Graceful shutdown: stop accepting, serve everything already
    /// admitted, join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Acceptor is gone: nothing new can be admitted. Closing the
        // queue lets workers drain the backlog and exit.
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    queue: &Queue,
    retry_after_secs: u64,
    timeout: Duration,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // A panic here (the injection site below, or a queue
                // bug) must cost one connection, not the acceptor.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    leakage_faults::panic_point("server/accept");
                    admit(stream, queue, retry_after_secs, timeout);
                }));
                if result.is_err() {
                    registry().counter("server_accept_panics_total").inc();
                }
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                // Transient accept errors (EMFILE, aborted handshake):
                // count and keep serving.
                registry().counter("server_accept_errors_total").inc();
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

fn admit(stream: TcpStream, queue: &Queue, retry_after_secs: u64, timeout: Duration) {
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    if let Err(mut rejected) = queue.push(stream) {
        registry().counter("server_admission_rejected_total").inc();
        // Drain the request first (briefly — the acceptor must not be
        // hostage to a slow sender): dropping a socket with unread
        // bytes RSTs the connection and the client never sees the 503.
        let _ = rejected.set_read_timeout(Some(Duration::from_millis(250)));
        let _ = read_request(&mut rejected);
        let _ = Response::error(503, "admission queue full")
            .with_header("Retry-After", retry_after_secs.to_string())
            .write_to(&mut rejected);
        let _ = rejected.shutdown(std::net::Shutdown::Write);
    }
}

fn worker_loop(queue: &Queue, ctx: &RouteContext) {
    while let Some(stream) = queue.pop() {
        // Isolation belt-and-braces: `routes::handle` already catches
        // handler panics; this outer catch covers the protocol layer
        // so no panic whatsoever can kill a worker.
        let result = catch_unwind(AssertUnwindSafe(|| serve_connection(stream, ctx)));
        if result.is_err() {
            registry().counter("server_worker_panics_total").inc();
        }
    }
}

fn serve_connection(mut stream: TcpStream, ctx: &RouteContext) {
    registry().counter("server_requests_total").inc();
    let inflight = registry().gauge("server_inflight_requests");
    inflight.add(1);
    let started = Instant::now();

    let (route, response) = match read_request(&mut stream) {
        Ok(Ok(request)) => {
            let route = routes::route_name(&request);
            (route, routes::handle(&request, ctx))
        }
        Ok(Err(bad)) => ("bad_request", Response::error(bad.status, &bad.reason)),
        Err(_) => {
            // Transport failure before a request existed; nothing to
            // answer.
            registry().counter("server_transport_errors_total").inc();
            inflight.sub(1);
            return;
        }
    };

    match response.status {
        400..=499 => registry().counter("server_responses_4xx_total").inc(),
        500..=599 => registry().counter("server_responses_5xx_total").inc(),
        _ => registry().counter("server_responses_2xx_total").inc(),
    }
    if response.write_to(&mut stream).is_err() {
        registry().counter("server_transport_errors_total").inc();
    }

    let elapsed_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    registry()
        .histogram(&format!("server_latency_us_{route}"), &LATENCY_BOUNDS_US)
        .record(elapsed_us);
    inflight.sub(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_sheds_above_depth_and_drains_after_close() {
        let queue = Queue::new(2);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let connect = || TcpStream::connect(addr).unwrap();
        let accept = |_: &TcpStream| listener.accept().unwrap().0;

        let c1 = connect();
        let c2 = connect();
        let c3 = connect();
        assert!(queue.push(accept(&c1)).is_ok());
        assert!(queue.push(accept(&c2)).is_ok());
        assert!(queue.push(accept(&c3)).is_err(), "third admit exceeds depth 2");
        assert_eq!(queue.len(), 2);

        queue.close();
        assert!(queue.pop().is_some(), "drain continues after close");
        assert!(queue.pop().is_some());
        assert!(queue.pop().is_none(), "then workers are released");
    }

    #[test]
    fn default_config_is_sane() {
        let config = ServerConfig::default();
        assert!(config.workers >= 1);
        assert!(config.queue_depth >= config.workers);
        assert_eq!(config.default_scale, Scale::Test);
    }
}
